"""Global switch for the simulator's performance fast paths.

Every optimization that has a semantically-equivalent naive twin checks
``ENABLED`` at the point of divergence:

* word-folded vs byte-loop ones-complement checksums,
* cached vs recomputed header wire bytes,
* eager (horizon-based) vs dispatch-chain :class:`~repro.sim.WorkQueue`
  completion on queues marked ``eager``.

The contract is that the fast paths must be *invisible* in simulation
results: same simulated timestamps, same completion streams, same wire
bytes.  ``tests/test_fastpath_determinism.py`` enforces this by running
workloads with the switch on and off and diffing the outputs.

Disable with ``REPRO_FASTPATH=0`` in the environment, or at runtime::

    from repro import fastpath
    with fastpath.disabled():
        ...

Structural changes that are order-preserving by construction (lazy timer
cancellation with heap compaction) are not gated — they cannot change
the pop order of live heap entries.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

ENABLED: bool = os.environ.get("REPRO_FASTPATH", "1") not in ("0", "false", "no")


def enabled() -> bool:
    return ENABLED


def set_enabled(flag: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(flag)
    return previous


@contextmanager
def disabled():
    """Run a block on the naive reference paths."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def forced(flag: bool):
    """Run a block with the switch pinned to ``flag``."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
