"""QPIP core: the Queue Pair abstraction over offloaded inter-network
protocols — the paper's contribution."""

from .cq import CQE_BYTES, CompletionQueue
from .firmware import (MgmtCommand, QpipFirmware, QpipListener,
                       default_qpip_tcp_config)
from .interop import MessageReassembler, frame_message
from .qp import QPState, QPTransport, QueuePair
from .rdma import RDMA_HDR_LEN, RdmaHeader, RdmaOpcode
from .verbs import QpipBuffer, QpipInterface
from .wr import Completion, WorkRequest, WROpcode, WRStatus

__all__ = [
    "CQE_BYTES", "CompletionQueue", "MgmtCommand", "QpipFirmware",
    "QpipListener", "default_qpip_tcp_config", "MessageReassembler",
    "frame_message", "QPState", "QPTransport", "QueuePair", "QpipBuffer",
    "RDMA_HDR_LEN", "RdmaHeader", "RdmaOpcode",
    "QpipInterface", "Completion", "WorkRequest", "WROpcode", "WRStatus",
]
