"""The QPIP network-interface firmware: four FSMs on one RISC core.

Paper §3.1 / Figure 1: the doorbell FSM watches the notification FIFO,
the management FSM executes privileged driver commands, and the
transmit (scheduler) and receive FSMs form the communication core,
running the full TCP/UDP/IPv6 stack *inside the interface*.  Every stage
charges occupancy on the NIC processor using the Table 2/3 cost model,
so interface saturation (the 1500-byte-MTU shortfall of Figure 4) falls
out naturally.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .. import fastpath as _fastpath
from .. import obs
from ..errors import (ConnectionReset, DmaError, QPStateError,
                      ResourceExhausted, VerbsError)
from ..hw.lanai import ProgrammableNic
from ..mem import Access, TranslationTable
from ..net import InetStack
from ..net.addresses import Endpoint, IPv6Address, MacAddress
from ..net.headers.transport import TCPHeader
from ..net.packet import (EMPTY as EMPTY_PAYLOAD, BytesPayload,
                          Packet, Payload, ZeroPayload)
from ..net.tcp import TcpConfig, TcpConnection, classify
from ..net.udp import Datagram
from ..sim import Event, Simulator
from .rdma import RDMA_HDR_LEN, RdmaHeader, RdmaOpcode, frame, unframe
from .cq import CQE_BYTES
from .qp import QPState, QPTransport, QueuePair
from .wr import Completion, WorkRequest, WROpcode, WRStatus


def default_qpip_tcp_config(mtu: int) -> TcpConfig:
    """The prototype's on-NIC TCP: message-per-segment, RFC 1323 on,
    no out-of-order reassembly."""
    return TcpConfig(
        mss=mtu - 40 - 20,            # IPv6 + TCP base header
        message_mode=True,
        use_timestamps=True,
        use_window_scaling=True,
        nodelay=True,
        reassembly=False,
        max_window=1 << 20,
        min_rto=5_000.0,              # SAN-scale retransmission floor
        delack_segments=2,
        delack_timeout=500.0,         # µs-scale ACKs: WRs complete on ACK (§3)
        msl=100_000.0)


@dataclass
class MgmtCommand:
    """A privileged command from the kernel driver (management FSM input)."""

    kind: str
    args: tuple
    done: Event


# Sentinel: the command's `done` event fires later (connect/accept).
DEFERRED = object()

# Extension: RDMA traffic bypasses receive WRs, so rdma-enabled QPs get a
# standing window allowance on top of their posted receive credit.
RDMA_WINDOW_CREDIT = 256 * 1024


class FwEndpoint:
    """Firmware-side state for one connection (maybe bound to a QP)."""

    def __init__(self, fw: "QpipFirmware", qp: Optional[QueuePair]):
        self.fw = fw
        self.qp = qp
        self.conn: Optional[TcpConnection] = None
        self.queued = False              # in the transmit ring
        self.msg_map: Dict[int, WorkRequest] = {}
        self._msg_ids = itertools.count()
        self.established_event: Optional[Event] = None
        self.listener: Optional["QpipListener"] = None
        self.coll_unit = None            # set on collective-ring endpoints
        self.udp_endpoint = None
        self.close_pending = False     # disconnect waits for queued sends
        # RDMA extension state.
        self.outstanding_reads: Dict[int, list] = {}   # sink_addr -> [wr, left]
        self.read_responses: Deque[RdmaHeader] = deque()

    def on_conn_created(self, conn) -> None:
        """Listener path: adopt the connection; window = posted WR credit
        (zero until a QP is mated, which is exactly QPIP's semantics).
        Collective-ring endpoints consume in SRAM instead, so they open
        a standing window immediately."""
        self.conn = conn
        conn.enable_credit_window(
            RDMA_WINDOW_CREDIT if self.coll_unit is not None else 0)

    # --- TcpConnection context protocol (synchronous; we only queue work) --

    def output_ready(self, conn) -> None:
        self.fw._queue_tx(self)

    def deliver(self, conn, payload, psh) -> None:
        self.fw._push_action(("deliver", self, payload))

    def on_established(self, conn) -> None:
        self.fw._push_action(("established", self))

    def on_remote_fin(self, conn) -> None:
        self.fw._push_action(("remote_fin", self))

    def on_closed(self, conn) -> None:
        self.fw._push_action(("closed", self, None))

    def on_reset(self, conn, exc) -> None:
        self.fw._push_action(("closed", self, exc))

    def on_send_complete(self, conn, msg_id) -> None:
        wr = self.msg_map.pop(msg_id, None)
        self.fw._actions.append(("send_done", self, wr))

    def on_send_buffer_space(self, conn) -> None:
        pass    # message mode: completions carry this information


class QpipListener:
    """Firmware-side passive open: mates connections to idle QPs (§3)."""

    def __init__(self, fw: "QpipFirmware", listener_id: int, port: int):
        self.fw = fw
        self.listener_id = listener_id
        self.port = port
        self.idle_qps: Deque[Tuple[QueuePair, Event]] = deque()
        self.unbound: Deque[FwEndpoint] = deque()
        self.tcp_listener = None

    def offer_qp(self, qp: QueuePair, done: Event) -> None:
        if self.unbound:
            ep = self.unbound.popleft()
            self.fw._bind_endpoint(ep, qp, done)
        else:
            self.idle_qps.append((qp, done))

    def mate(self, ep: FwEndpoint) -> None:
        if self.idle_qps:
            qp, done = self.idle_qps.popleft()
            self.fw._bind_endpoint(ep, qp, done)
        else:
            self.unbound.append(ep)


class QpipFirmware:
    """The firmware program: owns the NIC-resident stack and all QP state."""

    def __init__(self, nic: ProgrammableNic, addr: IPv6Address,
                 tcp_config: Optional[TcpConfig] = None, isn_seed: int = 0):
        self.sim: Simulator = nic.sim
        self.nic = nic
        self.addr = addr
        self.tcp_config = tcp_config or default_qpip_tcp_config(nic.mtu)
        self.stack = InetStack(self.sim, name=f"{nic.name}.stack",
                               isn_seed=isn_seed)
        self.stack.ip.add_local(addr)
        self.translation = TranslationTable(name=f"{nic.name}.tpt")
        self.endpoints: Dict[int, FwEndpoint] = {}       # qp_num -> endpoint
        self.listeners: Dict[int, QpipListener] = {}
        self.collectives: Dict[int, object] = {}         # group -> CollectiveUnit
        self._listener_ids = itertools.count(1)
        self._tx_ring: Deque[FwEndpoint] = deque()
        self._actions: List[tuple] = []
        self._idle: Optional[Event] = None
        self._rx_turn = True
        self._current_done = None
        self.udp_drops_no_wr = 0
        # Finite interface resources (None = unlimited).  When exhausted,
        # mgmt commands fail with ResourceExhausted — an error reply to
        # the driver, never a firmware crash.
        self.max_qps: Optional[int] = None
        self.max_regions: Optional[int] = None
        self.mgmt_rejections = 0
        self.dma_wr_errors = 0
        self.watchdog_aborts = 0
        self.qp_error_transitions = 0
        nic.wake = self._wake
        self._iface = _FwIface(nic)
        self.sim.process(self._main_loop())

    # -- wiring ------------------------------------------------------------

    def add_route(self, dst, source_route: Optional[List[int]] = None,
                  next_mac: Optional[MacAddress] = None) -> None:
        from ..net import RouteEntry
        self.stack.ip.add_route(dst, RouteEntry(
            iface=self._iface, next_mac=next_mac,
            source_route=source_route or []))

    # -- main dispatch loop -----------------------------------------------------

    def _wake(self) -> None:
        if self._idle is not None and not self._idle.triggered:
            self._idle.succeed()
            self._idle = None

    def _push_action(self, action: tuple) -> None:
        """Queue a connection event and make sure the loop services it.

        Not every action is born inside packet processing: RTO give-up
        and keepalive failures arrive from timers, aborts can arrive
        from the driver.  Those must still reach :meth:`_drain_actions`
        (QP flush, error CQEs) even if no further packet ever arrives.
        """
        self._actions.append(action)
        self._wake()

    def _has_work(self) -> bool:
        return bool(self.nic.doorbell_fifo or self.nic.mgmt_queue
                    or self.nic.rx_queue or self._tx_ring
                    or self.nic.doorbell_overflow or self._actions)

    def _main_loop(self):
        t = self.nic.timing
        while True:
            if self.nic.doorbell_fifo:
                if _fastpath.ENABLED and len(self.nic.doorbell_fifo) > 1:
                    walk = self._doorbell_burst()
                    if walk is not None:
                        yield walk
                        continue
                token = self.nic.doorbell_fifo.popleft()
                yield self.nic.stage("doorbell", t.doorbell_process)
                self._doorbell(token)
            elif self.nic.doorbell_overflow:
                # The doorbell FIFO overflowed and posted writes were
                # lost.  Clear the sticky bit and rescan every QP: any
                # send queue with work gets scheduled, any receive queue
                # refreshes its credit — no WR is left behind.
                self.nic.doorbell_overflow = False
                yield self.nic.stage("doorbell_rescan", t.mgmt_command)
                self._doorbell_rescan()
            elif self.nic.mgmt_queue:
                cmd = self.nic.mgmt_queue.popleft()
                yield self.nic.stage("mgmt", t.mgmt_command)
                self._mgmt(cmd)
            elif self.nic.rx_queue and (self._rx_turn or not self._tx_ring):
                self._rx_turn = False
                yield from self._receive_one()
            elif self._tx_ring:
                self._rx_turn = True
                yield from self._transmit_one()
            elif self._actions:
                # Timer/driver-originated events (RTO give-up, abort)
                # queued outside packet processing.
                yield from self._drain_actions()
            else:
                self._idle = Event(self.sim)
                yield self._idle

    # -- doorbell FSM -----------------------------------------------------------

    def _doorbell_burst(self):
        """Drain the whole doorbell FIFO as one burst walker.

        Each doorbell's core span is charged up front — legal because
        the firmware process is the core's only submitter, so the busy
        horizon advances exactly as the one-per-wake loop would advance
        it — and each token is processed at the precise boundary time
        its own span would have completed, with per-span cycle/obs
        records made at the span's start time.  Doorbells that arrive
        while the burst is in flight queue behind it in FIFO order and
        are serviced when the loop resumes, exactly like the unbatched
        path.  Returns a walker for the loop to yield, or ``None`` when
        the fast path does not apply (nothing charged or recorded).
        """
        nic = self.nic
        if nic.processor._busy:
            return None
        cost = nic.timing.doorbell_process
        fifo = nic.doorbell_fifo
        steps = []
        first = True
        while fifo:
            token = fifo.popleft()
            if first:
                nic.record_stage("doorbell", cost)
                first = False
            delay = nic.processor.try_charge(cost, category="doorbell")
            if delay is None:  # pragma: no cover - guarded by _busy above
                fifo.appendleft(token)
                break
            if fifo:
                def fire(tok=token, c=cost, n=nic):
                    self._doorbell(tok)
                    n.record_stage("doorbell", c)
            else:
                def fire(tok=token):
                    self._doorbell(tok)
            steps.append((delay, fire))
        if not steps:
            return None
        return self.sim.burst(steps)

    def _doorbell(self, token: Tuple[int, str]) -> None:
        qp_num, which = token
        if which == "coll":
            # Collective doorbell: the token names a group, not a QP.
            unit = self.collectives.get(qp_num)
            if unit is not None:
                self._push_action(("coll_start", unit))
            return
        ep = self.endpoints.get(qp_num)
        if ep is None:
            return
        if which == "send":
            self._queue_tx(ep)
        elif which == "recv" and ep.conn is not None and ep.qp is not None:
            ep.conn.set_receive_credit(self._qp_credit(ep.qp))
        self._drain_actions_sync()

    def _doorbell_rescan(self) -> None:
        """Recover from doorbell-FIFO overflow: treat every QP as if its
        doorbell had rung (the driver's overflow ISR does the same)."""
        for ep in list(self.endpoints.values()):
            if ep.qp is None:
                continue
            if ep.qp.send_queue:
                self._queue_tx(ep)
            if ep.conn is not None:
                ep.conn.set_receive_credit(self._qp_credit(ep.qp))
        self._drain_actions_sync()

    def _qp_credit(self, qp: QueuePair) -> int:
        credit = qp.posted_recv_bytes
        if qp.rdma:
            credit += RDMA_WINDOW_CREDIT
        return credit

    def _queue_tx(self, ep: FwEndpoint) -> None:
        if not ep.queued:
            ep.queued = True
            self._tx_ring.append(ep)
            self._wake()

    # -- management FSM -----------------------------------------------------------

    def _mgmt(self, cmd: MgmtCommand) -> None:
        handler = getattr(self, f"_mgmt_{cmd.kind}", None)
        if handler is None:
            cmd.done.fail(VerbsError(f"unknown mgmt command {cmd.kind}"))
            return
        self._current_done = cmd.done
        try:
            result = handler(*cmd.args)
        except Exception as exc:      # surfaced to the driver
            cmd.done.fail(exc)
            return
        finally:
            self._current_done = None
        if result is not DEFERRED and not cmd.done.triggered:
            cmd.done.succeed(result)
        self._drain_actions_sync()

    def _mgmt_create_qp(self, qp: QueuePair) -> QueuePair:
        if qp.qp_num in self.endpoints:
            raise VerbsError(f"QP{qp.qp_num} already exists")
        if self.max_qps is not None and len(self.endpoints) >= self.max_qps:
            self.mgmt_rejections += 1
            raise ResourceExhausted(
                f"{self.nic.name}: out of QP slots ({self.max_qps})")
        self.endpoints[qp.qp_num] = FwEndpoint(self, qp)
        return qp

    def _mgmt_destroy_qp(self, qp: QueuePair) -> None:
        ep = self.endpoints.pop(qp.qp_num, None)
        if ep is not None and ep.conn is not None:
            ep.conn.abort()
        if ep is not None:
            self._flush_endpoint(ep, WRStatus.FLUSHED)
        else:
            self._flush_qp(qp, WRStatus.FLUSHED)
        qp.state = QPState.DISCONNECTED

    def _mgmt_register(self, aspace, addr, length, access) -> object:
        if (self.max_regions is not None
                and len(self.translation) >= self.max_regions):
            self.mgmt_rejections += 1
            raise ResourceExhausted(
                f"{self.nic.name}: out of translation entries "
                f"({self.max_regions})")
        return self.translation.register(aspace, addr, length, access)

    def _mgmt_deregister(self, lkey) -> None:
        self.translation.deregister(lkey)

    def _mgmt_connect(self, qp: QueuePair, remote: Endpoint,
                      local_port: Optional[int]):
        done = self._current_done
        ep = self._endpoint_of(qp)
        if ep.conn is not None:
            raise QPStateError(f"QP{qp.qp_num} already connected")
        port = local_port or self.stack.tcp.ephemeral_port()
        local = Endpoint(self.addr, port)
        qp.local_port = port
        qp.remote = remote
        qp.state = QPState.CONNECTING
        ep.established_event = done
        ep.conn = self.stack.tcp.connect(local, remote, self._conn_config(), ep)
        ep.conn.enable_credit_window(self._qp_credit(qp))
        return DEFERRED

    def _mgmt_listen(self, port: int) -> int:
        listener_id = next(self._listener_ids)
        qlistener = QpipListener(self, listener_id, port)

        def ctx_factory():
            ep = FwEndpoint(self, qp=None)
            ep.listener = qlistener
            return ep

        qlistener.tcp_listener = self.stack.tcp.listen(
            Endpoint(self.addr, port), self._conn_config(), ctx_factory)
        self.listeners[listener_id] = qlistener
        return listener_id

    def _mgmt_accept(self, listener_id: int, qp: QueuePair):
        done = self._current_done
        listener = self.listeners.get(listener_id)
        if listener is None:
            raise VerbsError(f"no listener {listener_id}")
        self._endpoint_of(qp)     # must exist
        listener.offer_qp(qp, done)
        return DEFERRED           # `done` fires when a connection is mated

    def _mgmt_coll_create(self, config):
        """Install a firmware-resident collective group (repro.collectives).

        The unit owns its ring connections; the command's ``done`` event
        fires once both neighbor links are established.
        """
        from ..collectives.nicoffload import CollectiveUnit
        if config.group in self.collectives:
            raise VerbsError(f"collective group {config.group} already exists")
        self.collectives[config.group] = CollectiveUnit(
            self, config, self._current_done)
        return DEFERRED

    def _mgmt_bind_udp(self, qp: QueuePair, port: Optional[int]) -> int:
        ep = self._endpoint_of(qp)
        udp_ep = self.stack.udp.bind(port)
        udp_ep.on_datagram = lambda dg, _ep=ep: self._actions.append(
            ("udp_deliver", _ep, dg))
        ep.udp_endpoint = udp_ep
        qp.local_port = udp_ep.port
        qp.state = QPState.BOUND
        self._drain_actions_sync()
        return udp_ep.port

    def _mgmt_disconnect(self, qp: QueuePair) -> None:
        ep = self._endpoint_of(qp)
        if ep.conn is None:
            return
        if qp.send_queue or ep.read_responses:
            # Posted work drains first; the FIN follows the data (the
            # same ordering close() gives queued stream data).
            ep.close_pending = True
            self._queue_tx(ep)
        else:
            ep.conn.close()

    def abort_qp(self, qp: QueuePair, reason: Optional[Exception] = None) -> None:
        """Driver- or watchdog-initiated teardown of a QP's connection.

        Callable from bare timer callbacks (no packet in flight): the
        teardown rides the firmware action queue, which wakes the main
        loop, so the ERROR transition and full WR flush happen even on a
        perfectly idle wire.  A half-open connection — the peer died
        mid-transfer and will never send another segment — is exactly
        the case this exists for.
        """
        ep = self.endpoints.get(qp.qp_num)
        if ep is None or qp.state in (QPState.ERROR, QPState.DISCONNECTED):
            return
        self.watchdog_aborts += 1
        exc = reason or ConnectionReset(
            f"QP{qp.qp_num}: local abort (watchdog/driver)")
        if ep.conn is not None:
            # abort(exc) emits the RST and fires on_reset, which pushes a
            # "closed" action and wakes the dispatch loop (_push_action).
            ep.conn.abort(exc)
        else:
            self._push_action(("closed", ep, exc))

    def _endpoint_of(self, qp: QueuePair) -> FwEndpoint:
        ep = self.endpoints.get(qp.qp_num)
        if ep is None:
            raise VerbsError(f"QP{qp.qp_num} unknown to the interface")
        return ep

    def _conn_config(self) -> TcpConfig:
        return self.tcp_config

    def _bind_endpoint(self, ep: FwEndpoint, qp: QueuePair, done: Event) -> None:
        ep.qp = qp
        self.endpoints[qp.qp_num] = ep
        qp.state = QPState.CONNECTED
        qp.remote = ep.conn.tuple.remote
        qp.local_port = ep.conn.tuple.local.port
        # Opening the credit window here emits the window update that lets
        # the peer start sending (its SYN saw zero posted buffers).
        if ep.conn._credit_mode:
            ep.conn.set_receive_credit(self._qp_credit(qp))
        else:
            ep.conn.enable_credit_window(self._qp_credit(qp))
        self._notify_host(done, qp)

    # -- receive FSM --------------------------------------------------------------

    def _receive_one(self):
        # The parse stages run back-to-back with nothing observable in
        # between, so they occupy the core as one merged submission
        # (same start/finish times, one kernel event instead of four).
        t = self.nic.timing
        pkt = self.nic.rx_queue.popleft()
        stages = [("media_recv", t.media_recv)]
        if t.rx_checksum_per_byte is not None:
            covered = pkt.payload.length + 20    # transport header + payload
            stages.append(("rx_checksum", t.rx_checksum_per_byte * covered))
        stages.append(("ip_parse", t.ip_parse))
        tcp_hdr = pkt.find(TCPHeader)
        if tcp_hdr is not None:
            kind = classify(tcp_hdr, pkt.payload.length)
            if kind == "ack":
                stages.append(("tcp_parse_ack", t.tcp_parse_ack))
            else:
                stages.append(("tcp_parse_data", t.tcp_parse_data))
        else:
            stages.append(("udp_parse", t.udp_parse))
        yield self.nic.stages(stages)
        self.stack.packet_in(pkt)
        yield from self._drain_actions()

    def _drain_actions(self):
        t = self.nic.timing
        actions, self._actions = list(self._actions), []
        first_ack_update = True
        for action in actions:
            kind = action[0]
            if kind == "deliver":
                _k, ep, payload = action
                yield from self._deliver_tcp(ep, payload)
            elif kind == "udp_deliver":
                _k, ep, datagram = action
                yield from self._deliver_udp(ep, datagram)
            elif kind == "send_done":
                _k, ep, wr = action
                if first_ack_update:
                    yield self.nic.stage("rx_update_ack", t.rx_update_ack)
                    first_ack_update = False
                else:
                    yield self.nic.stage("rx_update_extra", t.rx_update_data)
                if wr is not None and ep.qp is not None:
                    ep.qp.sends_completed += 1
                    self._post_cqe(ep.qp.send_cq, Completion(
                        wr.wr_id, ep.qp.qp_num, wr.opcode,
                        byte_len=wr.length))
            elif kind == "coll_start":
                yield from action[1].start_next()
            elif kind == "established":
                self._on_established(action[1])
            elif kind == "remote_fin":
                self._on_remote_fin(action[1])
            elif kind == "closed":
                self._on_closed(action[1], action[2])

    def _drain_actions_sync(self) -> None:
        """Drain control-path actions that need no timed stages."""
        actions, self._actions = list(self._actions), []
        for action in actions:
            if action[0] == "established":
                self._on_established(action[1])
            elif action[0] == "closed":
                self._on_closed(action[1], action[2])
            else:
                # Data actions can appear here only via pathological reentry.
                self._actions.append(action)

    def _deliver_tcp(self, ep: FwEndpoint, payload: Payload):
        if ep.coll_unit is not None:
            yield from ep.coll_unit.on_deliver(ep, payload)
            return
        if ep.qp is not None and ep.qp.rdma:
            yield from self._deliver_rdma(ep, payload)
            return
        t = self.nic.timing
        qp = ep.qp
        if qp is None or not qp.recv_queue:
            # Credit flow control should make this impossible; treat as fatal.
            self._fail_endpoint(ep, WRStatus.REMOTE_ABORTED)
            return
        yield self.nic.stage("get_wr", t.get_wr)
        wr = qp.take_recv()
        qp.wr_dequeued("recv")
        rec = obs.RECORDER
        if rec is not None:
            rec.event("fw", "fw.deliver", track=f"{self.nic.attachment.name}.fw",
                      qp=qp.qp_num, wr_id=wr.wr_id, bytes=payload.length)
            rec.metrics.counter("fw.recv_delivered").add()
        if payload.length > wr.length:
            qp.untake_recv(wr)
            self._fail_endpoint(ep, WRStatus.LOCAL_LENGTH_ERROR)
            return
        yield self.nic.stage("put_data", t.put_data)
        try:
            dma = self.nic.dma_to_host(payload.length)
        except DmaError:
            self._dma_wr_error(ep, wr)
            return
        if not t.overlap_dma:
            yield dma
        self._write_wr_data(wr, payload)
        yield self.nic.stage("rx_update_data", t.rx_update_data)
        qp.recvs_completed += 1
        self._post_cqe(qp.recv_cq, Completion(
            wr.wr_id, qp.qp_num, WROpcode.RECV, byte_len=payload.length))
        ep.conn.set_receive_credit(self._qp_credit(qp))

    def _deliver_udp(self, ep: FwEndpoint, datagram: Datagram):
        t = self.nic.timing
        qp = ep.qp
        payload = datagram.payload
        if qp is None or not qp.recv_queue:
            self.udp_drops_no_wr += 1       # best effort: drop
            return
        if payload.length > qp.recv_queue[0].length:
            self.udp_drops_no_wr += 1
            return
        yield self.nic.stage("get_wr", t.get_wr)
        wr = qp.take_recv()
        qp.wr_dequeued("recv")
        rec = obs.RECORDER
        if rec is not None:
            rec.event("fw", "fw.deliver", track=f"{self.nic.attachment.name}.fw",
                      qp=qp.qp_num, wr_id=wr.wr_id, bytes=payload.length)
            rec.metrics.counter("fw.recv_delivered").add()
        yield self.nic.stage("put_data", t.put_data)
        try:
            dma = self.nic.dma_to_host(payload.length)
        except DmaError:
            self._dma_wr_error(ep, wr)
            return
        if not t.overlap_dma:
            yield dma
        self._write_wr_data(wr, payload)
        yield self.nic.stage("rx_update_data", t.rx_update_data)
        qp.recvs_completed += 1
        self._post_cqe(qp.recv_cq, Completion(
            wr.wr_id, qp.qp_num, WROpcode.RECV, byte_len=payload.length,
            src=datagram.src))

    def _write_wr_data(self, wr: WorkRequest, payload: Payload) -> None:
        """Direct data placement into the registered receive buffers."""
        if isinstance(payload, ZeroPayload):
            return    # implicit zeros: nothing observable to place
        data = payload.to_bytes()
        offset = 0
        for sge in wr.sges:
            if offset >= len(data):
                break
            chunk = data[offset:offset + sge.length]
            region = self.translation.check(sge.lkey, sge.addr, len(chunk),
                                            Access.LOCAL_WRITE)
            region.aspace.write(sge.addr, chunk)
            offset += len(chunk)

    # -- transmit (scheduler) FSM -----------------------------------------------

    def _transmit_one(self):
        t = self.nic.timing
        ep = self._tx_ring.popleft()
        ep.queued = False
        yield self.nic.stage("schedule", t.schedule)
        if ep.read_responses and self._can_fetch(ep):
            yield from self._emit_read_response(ep)
        elif ep.qp is not None and ep.qp.send_queue and self._can_fetch(ep):
            yield from self._fetch_send_wr(ep)
        elif ep.coll_unit is not None and self._coll_can_fetch(ep):
            yield from ep.coll_unit.fetch_next(ep)
        if ep.conn is not None:
            yield from self._emit_one_segment(ep)
        if ep.close_pending and ep.qp is not None and not ep.qp.send_queue \
                and not ep.read_responses and ep.conn is not None:
            ep.close_pending = False
            ep.conn.close()
        if (ep.conn is not None and ep.conn.has_output()) or ep.read_responses \
                or (ep.qp is not None and ep.qp.send_queue and self._can_fetch(ep)) \
                or (ep.coll_unit is not None and self._coll_can_fetch(ep)):
            self._queue_tx(ep)

    def _coll_can_fetch(self, ep: FwEndpoint) -> bool:
        return (ep.conn is not None and ep.coll_unit.has_pending(ep)
                and len(ep.conn._unsent) < 4)     # bounded SRAM staging

    def _can_fetch(self, ep: FwEndpoint) -> bool:
        if ep.qp.transport is QPTransport.UDP:
            return True
        return (ep.conn is not None
                and len(ep.conn._unsent) < 4)     # bounded SRAM staging

    def _fetch_send_wr(self, ep: FwEndpoint):
        t = self.nic.timing
        qp = ep.qp
        yield self.nic.stage("get_wr", t.get_wr)
        if not qp.send_queue:
            return
        wr = qp.send_queue.popleft()
        qp.wr_dequeued("send")
        rec = obs.RECORDER
        if rec is not None:
            rec.event("fw", "fw.fetch_wr", track=f"{self.nic.attachment.name}.fw",
                      qp=qp.qp_num, wr_id=wr.wr_id, bytes=wr.length)
            rec.metrics.counter("fw.send_fetched").add()
        try:
            payload = self._read_wr_data(wr)
        except Exception:
            self._local_wr_error(ep, wr, WRStatus.LOCAL_PROTECTION_ERROR)
            return
        yield self.nic.stage("get_data", t.get_data)
        try:
            dma = self.nic.dma_from_host(payload.length)
        except DmaError:
            self._local_wr_error(ep, wr, WRStatus.LOCAL_DMA_ERROR)
            return
        if not t.overlap_dma:
            yield dma
        if qp.transport is QPTransport.UDP:
            yield from self._send_udp(ep, wr, payload)
        elif qp.rdma:
            self._send_rdma(ep, wr, payload)
        else:
            msg_id = next(ep._msg_ids)
            try:
                ep.conn.send_message(payload, msg_id=msg_id)
            except ConnectionReset:
                # The connection died between the doorbell and this fetch
                # (peer RST, RTO give-up): fail the WR like a remote abort.
                self._local_wr_error(ep, wr, WRStatus.REMOTE_ABORTED)
                return
            ep.msg_map[msg_id] = wr

    def _read_wr_data(self, wr: WorkRequest) -> Payload:
        parts: List[Payload] = []
        all_zero = True
        for sge in wr.sges:
            region = self.translation.check(sge.lkey, sge.addr, sge.length,
                                            Access.LOCAL_READ)
            if region.aspace.is_all_zero(sge.addr, sge.length):
                parts.append(ZeroPayload(sge.length))
            else:
                parts.append(BytesPayload(region.aspace.read(sge.addr, sge.length)))
                all_zero = False
        if all_zero:
            return ZeroPayload(sum(p.length for p in parts))
        from ..net.packet import concat
        return concat(parts)

    def _send_udp(self, ep: FwEndpoint, wr: WorkRequest, payload: Payload):
        t = self.nic.timing
        from ..net.headers.transport import UDPHeader
        hdr = UDPHeader(ep.qp.local_port or 0, wr.dest.port,
                        length=8 + payload.length)
        pkt = self.stack.ip.build(self.addr, wr.dest.addr, hdr, payload)
        pre = [("build_udp_hdr", t.build_udp_hdr),
               ("build_ip_hdr", t.build_ip_hdr),
               ("media_send", t.media_send)]
        if not t.overlap_dma:
            # The prototype's firmware babysits the send engine until the
            # packet has left SRAM; IB-class hardware overlaps.
            post = [("media_send_drain", self.nic.wire_time(pkt)),
                    ("tx_update", t.tx_update)]
        else:
            post = [("tx_update", t.tx_update)]
        walk = self.nic.stages_burst(
            pre, lambda: self.nic.wire_transmit(pkt), post)
        if walk is not None:
            yield walk
        else:
            yield self.nic.stages(pre)
            self.nic.wire_transmit(pkt)
            if len(post) > 1:
                yield self.nic.stages(post)
            else:
                yield self.nic.stage("tx_update", t.tx_update)
        # UDP send WRs complete as soon as the datagram is on the wire (§3).
        ep.qp.sends_completed += 1
        self._post_cqe(ep.qp.send_cq, Completion(
            wr.wr_id, ep.qp.qp_num, WROpcode.SEND, byte_len=payload.length))

    def _emit_one_segment(self, ep: FwEndpoint):
        t = self.nic.timing
        conn = ep.conn
        desc = conn.next_descriptor()
        if desc is None:
            return
        if desc.kind == "data" and desc.retransmit and ep.coll_unit is None:
            # Retransmission: the data must be fetched from host memory
            # again.  Collective frames originate in NIC SRAM (the unit's
            # accumulator), so they skip the host refetch.
            yield self.nic.stage("get_data", t.get_data)
            try:
                dma = self.nic.dma_from_host(
                    desc.chunk.payload.length if desc.chunk else 0)
            except DmaError:
                self.dma_wr_errors += 1
                self._fail_endpoint(ep, WRStatus.LOCAL_DMA_ERROR)
                return
            if not t.overlap_dma:
                yield dma
        built = conn.build_segment(desc)
        if built is None:
            return
        hdr, payload = built
        # Header building and send-engine setup are pure back-to-back
        # stages: one merged core occupancy, the packet hits the wire at
        # the same simulated time.  On the fast path the whole emit —
        # build stages, wire handoff at the boundary, drain/update — is
        # one burst walker and a single suspension of this process.
        pkt = self.stack.build_segment_packet(conn, hdr, payload)
        pre = [("build_tcp_hdr", t.build_tcp_hdr),
               ("build_ip_hdr", t.build_ip_hdr),
               ("media_send", t.media_send)]
        if not t.overlap_dma and payload.length:
            post = [("media_send_drain", self.nic.wire_time(pkt)),
                    ("tx_update", t.tx_update)]
        else:
            post = [("tx_update", t.tx_update)]
        walk = self.nic.stages_burst(
            pre, lambda: self.nic.wire_transmit(pkt), post)
        if walk is not None:
            yield walk
            return
        yield self.nic.stages(pre)
        self.nic.wire_transmit(pkt)
        if len(post) > 1:
            yield self.nic.stages(post)
        else:
            yield self.nic.stage("tx_update", t.tx_update)

    # -- RDMA extension (one-sided operations; see core/rdma.py) -----------

    def _rdma_chunk(self, ep: FwEndpoint) -> int:
        return ep.conn.max_message - RDMA_HDR_LEN

    def _send_rdma(self, ep: FwEndpoint, wr: WorkRequest, payload: Payload) -> None:
        """Queue a framed message stream for a SEND/WRITE/READ_REQ WR."""
        try:
            self._send_rdma_framed(ep, wr, payload)
        except ConnectionReset:
            # The connection died between the doorbell and this fetch
            # (peer RST, local abort): drop any partial framing state
            # and fail the WR like a remote abort.
            for msg_id, mapped in list(ep.msg_map.items()):
                if mapped is wr:
                    del ep.msg_map[msg_id]
            if wr.opcode is WROpcode.RDMA_READ and wr.sges:
                ep.outstanding_reads.pop(wr.sges[0].addr, None)
            self._local_wr_error(ep, wr, WRStatus.REMOTE_ABORTED)

    def _send_rdma_framed(self, ep: FwEndpoint, wr: WorkRequest,
                          payload: Payload) -> None:
        chunk = self._rdma_chunk(ep)
        if wr.opcode is WROpcode.SEND:
            if payload.length > chunk:
                self._local_wr_error(ep, wr, WRStatus.LOCAL_LENGTH_ERROR)
                return
            hdr = RdmaHeader(RdmaOpcode.SEND, length=payload.length)
            msg_id = next(ep._msg_ids)
            ep.msg_map[msg_id] = wr
            ep.conn.send_message(frame(hdr, payload), msg_id=msg_id)
            return
        if wr.opcode is WROpcode.RDMA_WRITE:
            offset = 0
            while True:
                n = min(chunk, payload.length - offset)
                hdr = RdmaHeader(RdmaOpcode.WRITE, rkey=wr.rkey,
                                 remote_addr=wr.remote_addr + offset, length=n)
                body = payload.slice(offset, n)
                offset += n
                msg_id = next(ep._msg_ids)
                if offset >= payload.length:
                    ep.msg_map[msg_id] = wr     # completion on the last chunk
                ep.conn.send_message(frame(hdr, body), msg_id=msg_id)
                if offset >= payload.length:
                    break
            return
        # RDMA_READ: a header-only request; the WR completes when the
        # response stream has been placed in the sink buffer.
        sink = wr.sges[0]
        hdr = RdmaHeader(RdmaOpcode.READ_REQ, rkey=wr.rkey,
                         remote_addr=wr.remote_addr, length=sink.length,
                         sink_key=sink.lkey, sink_addr=sink.addr)
        ep.outstanding_reads[sink.addr] = [wr, sink.length]
        ep.conn.send_message(frame(hdr, EMPTY_PAYLOAD), msg_id=next(ep._msg_ids))

    def _local_wr_error(self, ep: FwEndpoint, wr: WorkRequest,
                        status: WRStatus) -> None:
        """A WR failed locally (protection, length, DMA): complete it
        with its specific error, move the QP to ERROR, terminate the
        connection, and flush everything else still outstanding."""
        if status is WRStatus.LOCAL_DMA_ERROR:
            self.dma_wr_errors += 1
        self._mark_error(ep.qp)
        self._post_cqe(ep.qp.send_cq, Completion(
            wr.wr_id, ep.qp.qp_num, wr.opcode, status=status))
        if ep.conn is not None:
            ep.conn.abort()
        self._flush_endpoint(ep, WRStatus.FLUSHED)

    def _dma_wr_error(self, ep: FwEndpoint, wr: WorkRequest) -> None:
        """A receive-side DMA fault: the popped WR dies with a DMA error
        and the endpoint fails (data was lost after TCP ACKed it, so the
        stream cannot be resynchronized)."""
        self.dma_wr_errors += 1
        qp = ep.qp
        self._post_cqe(qp.recv_cq, Completion(
            wr.wr_id, qp.qp_num, wr.opcode, status=WRStatus.LOCAL_DMA_ERROR))
        self._fail_endpoint(ep, WRStatus.FLUSHED)

    def _deliver_rdma(self, ep: FwEndpoint, payload: Payload):
        """Receive path for framed (rdma-enabled) QPs."""
        t = self.nic.timing
        qp = ep.qp
        try:
            hdr, body = unframe(payload)
        except Exception:
            self._fail_endpoint(ep, WRStatus.REMOTE_ABORTED)
            return
        # RDMA bypasses receive WRs: open the stream window back up.
        ep.conn.app_consumed(payload.length) if not ep.conn._credit_mode \
            else None
        if hdr.opcode is RdmaOpcode.SEND:
            yield from self._rdma_untagged(ep, body)
        elif hdr.opcode is RdmaOpcode.WRITE:
            yield from self._rdma_place(ep, hdr, body, notify=None)
        elif hdr.opcode is RdmaOpcode.READ_REQ:
            yield self.nic.stage("rdma_read_req", t.get_wr)
            ep.read_responses.append(hdr)
            self._queue_tx(ep)
        elif hdr.opcode is RdmaOpcode.READ_RESP:
            yield from self._rdma_place(ep, hdr, body, notify="read")

    def _rdma_untagged(self, ep: FwEndpoint, body: Payload):
        t = self.nic.timing
        qp = ep.qp
        if not qp.recv_queue:
            self._fail_endpoint(ep, WRStatus.REMOTE_ABORTED)
            return
        yield self.nic.stage("get_wr", t.get_wr)
        wr = qp.take_recv()
        qp.wr_dequeued("recv")
        if body.length > wr.length:
            qp.untake_recv(wr)
            self._fail_endpoint(ep, WRStatus.LOCAL_LENGTH_ERROR)
            return
        yield self.nic.stage("put_data", t.put_data)
        try:
            dma = self.nic.dma_to_host(body.length)
        except DmaError:
            self._dma_wr_error(ep, wr)
            return
        if not t.overlap_dma:
            yield dma
        self._write_wr_data(wr, body)
        yield self.nic.stage("rx_update_data", t.rx_update_data)
        qp.recvs_completed += 1
        self._post_cqe(qp.recv_cq, Completion(
            wr.wr_id, qp.qp_num, WROpcode.RECV, byte_len=body.length))
        ep.conn.set_receive_credit(self._qp_credit(qp))

    def _rdma_place(self, ep: FwEndpoint, hdr: RdmaHeader, body: Payload,
                    notify: Optional[str]):
        """Direct placement of a tagged message (WRITE or READ_RESP)."""
        t = self.nic.timing
        key = hdr.sink_key if notify == "read" else hdr.rkey
        addr = hdr.sink_addr if notify == "read" else hdr.remote_addr
        try:
            region = self.translation.check(key, addr, body.length,
                                            Access.REMOTE_WRITE
                                            if notify is None
                                            else Access.LOCAL_WRITE)
        except Exception:
            # iWARP-style: a remote access violation terminates the stream.
            self._fail_endpoint(ep, WRStatus.REMOTE_ACCESS_ERROR)
            ep.conn.abort() if ep.conn else None
            return
        yield self.nic.stage("put_data", t.put_data)
        try:
            dma = self.nic.dma_to_host(body.length)
        except DmaError:
            self.dma_wr_errors += 1
            self._fail_endpoint(ep, WRStatus.LOCAL_DMA_ERROR)
            return
        if not t.overlap_dma:
            yield dma
        if not isinstance(body, ZeroPayload):
            region.aspace.write(addr, body.to_bytes())
        yield self.nic.stage("rx_update_data", t.rx_update_data)
        if notify == "read":
            yield from self._rdma_read_progress(ep, hdr, body.length)

    def _rdma_read_progress(self, ep: FwEndpoint, hdr: RdmaHeader,
                            placed: int):
        # The request recorded the sink base address; responses advance
        # through the sink, so locate the tracking entry by range.
        t = self.nic.timing
        for base, entry in list(ep.outstanding_reads.items()):
            wr, left = entry
            sink = wr.sges[0]
            if sink.addr <= hdr.sink_addr < sink.addr + sink.length:
                entry[1] = left - placed
                if entry[1] <= 0:
                    del ep.outstanding_reads[base]
                    yield self.nic.stage("rx_update_ack", t.rx_update_ack)
                    ep.qp.sends_completed += 1
                    self._post_cqe(ep.qp.send_cq, Completion(
                        wr.wr_id, ep.qp.qp_num, WROpcode.RDMA_READ,
                        byte_len=sink.length))
                return

    def _emit_read_response(self, ep: FwEndpoint):
        """Responder side of RDMA READ: stream one chunk per service."""
        t = self.nic.timing
        req = ep.read_responses[0]
        served = getattr(req, "_served", 0)
        chunk = self._rdma_chunk(ep)
        n = min(chunk, req.length - served)
        try:
            region = self.translation.check(req.rkey, req.remote_addr + served,
                                            n, Access.REMOTE_READ)
        except Exception:
            ep.read_responses.popleft()
            self._fail_endpoint(ep, WRStatus.REMOTE_ACCESS_ERROR)
            return
        yield self.nic.stage("get_data", t.get_data)
        try:
            dma = self.nic.dma_from_host(n)
        except DmaError:
            ep.read_responses.popleft()
            self.dma_wr_errors += 1
            self._fail_endpoint(ep, WRStatus.LOCAL_DMA_ERROR)
            return
        if not t.overlap_dma:
            yield dma
        if region.aspace.is_all_zero(req.remote_addr + served, n):
            body = ZeroPayload(n)
        else:
            body = BytesPayload(region.aspace.read(req.remote_addr + served, n))
        hdr = RdmaHeader(RdmaOpcode.READ_RESP, length=n,
                         sink_key=req.sink_key,
                         sink_addr=req.sink_addr + served)
        ep.conn.send_message(frame(hdr, body), msg_id=next(ep._msg_ids))
        served += n
        if served >= req.length:
            ep.read_responses.popleft()
        else:
            object.__setattr__(req, "_served", served)
            # (frozen dataclass: progress rides on the queued instance)

    # -- endpoint lifecycle ------------------------------------------------------

    def _on_established(self, ep: FwEndpoint) -> None:
        if ep.coll_unit is not None:
            ep.coll_unit.on_established(ep)
            return
        if ep.qp is not None:
            ep.qp.state = QPState.CONNECTED
            rec = obs.RECORDER
            if rec is not None:
                rec.event("qp", "qp.established",
                          track=f"{self.nic.attachment.name}.fw", qp=ep.qp.qp_num)
                rec.metrics.counter("qp.established").add()
            if ep.established_event is not None:
                ev, ep.established_event = ep.established_event, None
                self._notify_host(ev, ep.qp)
            ep.conn.set_receive_credit(self._qp_credit(ep.qp))
        else:
            # Listener-spawned: mate with an idle QP (paper §3).
            ep.listener.mate(ep)

    def _on_remote_fin(self, ep: FwEndpoint) -> None:
        """Orderly shutdown from the peer: flush the now-unusable receive
        WRs so the application observes EOF (FLUSHED recv completions)."""
        if ep.qp is None:
            return
        ep.qp.remote_closed = True
        qp = ep.qp
        while qp.recv_queue:
            wr = qp.take_recv()
            self._post_cqe(qp.recv_cq, Completion(
                wr.wr_id, qp.qp_num, WROpcode.RECV, status=WRStatus.FLUSHED))
        qp.wr_dequeued("recv")

    def _on_closed(self, ep: FwEndpoint, exc: Optional[Exception]) -> None:
        if ep.coll_unit is not None:
            ep.coll_unit.on_closed(ep, exc)
            return
        if ep.qp is None:
            return
        qp = ep.qp
        if exc is not None:
            qp.error = exc
            self._mark_error(qp)
            self._flush_endpoint(ep, WRStatus.REMOTE_ABORTED)
        else:
            # ERROR is sticky: an orderly-close action queued behind an
            # abort must not downgrade the QP back to DISCONNECTED.
            if qp.state is not QPState.ERROR:
                qp.state = QPState.DISCONNECTED
            self._flush_endpoint(ep, WRStatus.FLUSHED)
        if ep.established_event is not None and not ep.established_event.triggered:
            ev, ep.established_event = ep.established_event, None
            ev.fail(exc or QPStateError(f"QP{qp.qp_num} closed"))

    def _mark_error(self, qp: QueuePair) -> None:
        """Move a QP to (sticky) ERROR, counting each distinct transition."""
        if qp.state is not QPState.ERROR:
            qp.state = QPState.ERROR
            self.qp_error_transitions += 1
            rec = obs.RECORDER
            if rec is not None:
                rec.event("qp", "qp.error", track=f"{self.nic.attachment.name}.fw",
                          qp=qp.qp_num, error=repr(qp.error))
                rec.metrics.counter("qp.error_transitions").add()

    def _fail_endpoint(self, ep: FwEndpoint, status: WRStatus) -> None:
        if ep.conn is not None:
            ep.conn.abort()
        if ep.qp is not None:
            self._mark_error(ep.qp)
            self._flush_endpoint(ep, status)

    def _flush_endpoint(self, ep: FwEndpoint, status: WRStatus) -> None:
        """Error-complete every WR the endpoint still owes a CQE for:
        in-flight sends awaiting ACK (msg_map), outstanding RDMA READs,
        and everything still queued on the QP.  After this the
        application can account for 100% of its posted WRs."""
        qp = ep.qp
        if qp is None:
            return
        rec = obs.RECORDER
        if rec is not None:
            rec.event("qp", "qp.flush", track=f"{self.nic.attachment.name}.fw",
                      qp=qp.qp_num, status=status.name)
            rec.metrics.counter("qp.flushes").add()
        for msg_id in list(ep.msg_map):
            wr = ep.msg_map.pop(msg_id)
            self._post_cqe(qp.send_cq, Completion(
                wr.wr_id, qp.qp_num, wr.opcode, status=status))
        for base in list(ep.outstanding_reads):
            wr, _left = ep.outstanding_reads.pop(base)
            self._post_cqe(qp.send_cq, Completion(
                wr.wr_id, qp.qp_num, wr.opcode, status=status))
        ep.read_responses.clear()
        self._flush_qp(qp, status)

    def _flush_qp(self, qp: QueuePair, status: WRStatus) -> None:
        while qp.recv_queue:
            wr = qp.take_recv()
            self._post_cqe(qp.recv_cq, Completion(
                wr.wr_id, qp.qp_num, WROpcode.RECV, status=status))
        while qp.send_queue:
            wr = qp.send_queue.popleft()
            self._post_cqe(qp.send_cq, Completion(
                wr.wr_id, qp.qp_num, wr.opcode, status=status))
        # Posters blocked on backpressure must observe the teardown, not
        # wait forever for space that will never free.
        qp.fail_waiters(qp.error)

    # -- host notification ---------------------------------------------------------

    def _post_cqe(self, cq, cqe: Completion) -> None:
        """DMA the CQE into the host-memory ring (posted; firmware moves on).

        Completion writes use the "cqe" DMA class: fault injectors leave
        them alone, so applications never lose a completion — the flush
        guarantee depends on it.

        Delivery is a deferred call: on the fast path each CQE costs one
        burst-walker heap item instead of a timer handle plus an Event,
        so flush storms posting dozens of back-to-back completions stay
        cheap while serializing on the DMA engine exactly as before.
        """
        self.nic.dma_to_host_call(CQE_BYTES, lambda: cq.push(cqe), kind="cqe")

    def _notify_host(self, event: Event, value) -> None:
        def fire() -> None:
            if not event.triggered:
                event.succeed(value)
        self.nic.dma_to_host_call(CQE_BYTES, fire, kind="cqe")


class _FwIface:
    """IP-layer interface adapter for the NIC's own stack.

    Normal segment transmission goes through the timed transmit FSM; this
    direct path is used only for stack-generated control packets (RSTs).
    """

    def __init__(self, nic: ProgrammableNic):
        self.nic = nic
        self.mtu = nic.mtu
        self.mac = None

    def enqueue_tx(self, pkt: Packet) -> None:
        self.nic.wire_transmit(pkt)
