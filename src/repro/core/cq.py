"""Completion queues.

Paper §2.1: "When a WR completes, a token is added to the completion
queue and can be detected by the application through polling or an
event.  The binding of multiple queues to a CQ permits applications to
group related QPs into a single monitoring point."

The CQ ring lives in host memory; the NIC DMAs entries in.  Polling
spins in the processor cache (cheap, §5.1); waiting arms an interrupt.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional

from .. import obs
from ..errors import VerbsError
from ..sim import Event, Simulator
from .wr import Completion, WROpcode

CQE_BYTES = 32


class CompletionQueue:
    """One completion ring."""

    def __init__(self, sim: Simulator, cq_num: int, capacity: int = 1024,
                 span_scope: str = ""):
        if capacity <= 0:
            raise VerbsError("CQ capacity must be positive")
        self.sim = sim
        self.cq_num = cq_num
        # Disambiguates WR span keys across hosts: qp_num and wr_id are
        # per-firmware counters, so a shared recorder watching several
        # hosts would otherwise collide identical (qp, wr, dir) tuples.
        self.span_scope = span_scope
        self.capacity = capacity
        self._ring: Deque[Completion] = deque()
        self._waiters: Deque[Event] = deque()
        self.overruns = 0
        self.total_completions = 0
        self.error_completions = 0
        # Armed by the driver when a consumer blocks: the NIC raises an
        # interrupt on the next CQE instead of relying on polling.
        self.interrupt_hook = None
        # Passive taps called on every pushed CQE (after ring insert).
        # The recovery layer uses one as its failure detector / liveness
        # feed without stealing entries from the polling application.
        self.observers: List = []

    def __len__(self) -> int:
        return len(self._ring)

    # -- NIC side -----------------------------------------------------------

    def push(self, cqe: Completion) -> None:
        """Called (post-DMA) by the NIC firmware."""
        if len(self._ring) >= self.capacity:
            self.overruns += 1      # catastrophic in IB; we count and drop
            return
        self._ring.append(cqe)
        self.total_completions += 1
        if not cqe.ok:
            self.error_completions += 1
        rec = obs.RECORDER
        if rec is not None:
            which = "recv" if cqe.opcode is WROpcode.RECV else "send"
            elapsed = rec.end(("wr", self.span_scope, cqe.qp_num,
                               cqe.wr_id, which),
                              status=cqe.status.name, bytes=cqe.byte_len)
            rec.event("verbs", "cqe", track=f"qp{cqe.qp_num}.host",
                      wr_id=cqe.wr_id, qp=cqe.qp_num,
                      opcode=cqe.opcode.name, status=cqe.status.name,
                      bytes=cqe.byte_len)
            rec.metrics.counter("cq.cqe").add()
            rec.metrics.counter(f"cq.cqe.{cqe.status.name}").add()
            if elapsed is not None and cqe.ok:
                rec.metrics.histogram(f"wr.{which}.latency_us").add(elapsed)
        if self.observers:
            # Copy: a tap may deregister (or add) observers mid-delivery.
            for observer in list(self.observers):
                observer(cqe)
        waiters = self._waiters
        while waiters:
            waiter = waiters.popleft()
            if not waiter.triggered:
                if self.interrupt_hook is not None:
                    self.interrupt_hook(waiter)
                else:
                    waiter.succeed()
                break

    def push_many(self, cqes: List[Completion]) -> None:
        """Post a burst of completions arriving at the same instant.

        Each CQE goes through :meth:`push` in order — capacity checks,
        obs records, observer taps, and waiter wakes all happen per CQE,
        so a burst is indistinguishable from back-to-back pushes."""
        for cqe in cqes:
            self.push(cqe)

    # -- host side -----------------------------------------------------------

    def pop(self) -> Optional[Completion]:
        return self._ring.popleft() if self._ring else None

    def pop_many(self, limit: int) -> List[Completion]:
        out = []
        while self._ring and len(out) < limit:
            out.append(self._ring.popleft())
        return out

    def wait_event(self) -> Event:
        """Event fired when the CQ becomes non-empty."""
        ev = Event(self.sim)
        if self._ring:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev
