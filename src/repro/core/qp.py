"""Queue pairs.

Paper §2.1: "The QP is a memory-based abstraction where communication is
achieved through direct memory-to-memory transfers between applications
and devices.  It consists of a send and a receive queue of work
requests."  The queues live in host memory; the firmware reads WRs by
DMA (the Get WR stage of Table 2/3).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

from ..errors import QpTornDown, QueueFull, VerbsError
from ..net.addresses import Endpoint
from ..sim import Event
from .cq import CompletionQueue
from .wr import WorkRequest, WROpcode


class QPTransport(enum.Enum):
    TCP = "TCP"       # reliable connection (paper §3, reliable mode)
    UDP = "UDP"       # unreliable datagram


class QPState(enum.Enum):
    RESET = "RESET"
    BOUND = "BOUND"             # UDP: bound to a port
    CONNECTING = "CONNECTING"   # TCP: SYN in progress (in the NIC)
    CONNECTED = "CONNECTED"
    DISCONNECTED = "DISCONNECTED"
    ERROR = "ERROR"


class QueuePair:
    """Host-memory QP state (the library's view)."""

    def __init__(self, qp_num: int, transport: QPTransport,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue,
                 max_send_wr: int = 256, max_recv_wr: int = 256,
                 rdma: bool = False):
        self.qp_num = qp_num
        self.transport = transport
        self.rdma = rdma            # extension: framed messages, one-sided ops
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        # Backpressure watermark: a blocked poster is resumed once the
        # queue has drained below this level (hysteresis, not one-in-
        # one-out, so a saturated queue admits a burst per wakeup).
        self.sq_low_watermark = max(1, max_send_wr // 2)
        self.rq_low_watermark = max(1, max_recv_wr // 2)
        self._sq_waiters: List[Event] = []
        self._rq_waiters: List[Event] = []
        self.state = QPState.RESET
        self.send_queue: Deque[WorkRequest] = deque()
        self.recv_queue: Deque[WorkRequest] = deque()
        # Running total of posted receive capacity, kept in sync with
        # recv_queue so posted_recv_bytes (read per received packet to
        # advertise the TCP window) is O(1) instead of a sum.
        self._recv_bytes = 0
        self.local_port: Optional[int] = None
        self.remote: Optional[Endpoint] = None
        self.remote_closed = False
        self.error: Optional[Exception] = None
        # statistics
        self.sends_posted = 0
        self.recvs_posted = 0
        self.sends_completed = 0
        self.recvs_completed = 0

    # -- host-side queue operations (costs charged by the verbs layer) ------

    SEND_OPCODES = (WROpcode.SEND, WROpcode.RDMA_WRITE, WROpcode.RDMA_READ)

    def enqueue_send(self, wr: WorkRequest) -> None:
        if wr.opcode not in self.SEND_OPCODES:
            raise VerbsError("post_send requires a SEND/RDMA work request")
        if wr.opcode is not WROpcode.SEND and not self.rdma:
            raise VerbsError(
                f"QP{self.qp_num}: RDMA requires a QP created with rdma=True")
        if wr.opcode is not WROpcode.SEND and self.transport is QPTransport.UDP:
            raise VerbsError("RDMA needs the reliable (TCP) transport")
        if self.state in (QPState.ERROR, QPState.DISCONNECTED) \
                or self.error is not None:
            raise QpTornDown(self)
        if len(self.send_queue) >= self.max_send_wr:
            raise QueueFull(f"QP{self.qp_num} send queue full")
        if self.transport is QPTransport.UDP and wr.dest is None:
            raise VerbsError("UDP send WR needs a destination endpoint")
        self.send_queue.append(wr)
        self.sends_posted += 1

    def enqueue_recv(self, wr: WorkRequest) -> None:
        if wr.opcode is not WROpcode.RECV:
            raise VerbsError("post_recv requires a RECV work request")
        if self.state in (QPState.ERROR, QPState.DISCONNECTED) \
                or self.error is not None:
            # A WR accepted here could never complete: the flush already
            # ran.  Reject so the application keeps its WR accounting.
            raise QpTornDown(self)
        if len(self.recv_queue) >= self.max_recv_wr:
            raise QueueFull(f"QP{self.qp_num} receive queue full")
        self.recv_queue.append(wr)
        self._recv_bytes += wr.length
        self.recvs_posted += 1

    def take_recv(self) -> WorkRequest:
        """Firmware consumes the head receive WR (keeps the byte count)."""
        wr = self.recv_queue.popleft()
        self._recv_bytes -= wr.length
        return wr

    def untake_recv(self, wr: WorkRequest) -> None:
        """Firmware returns a WR to the head of the queue (partial fill)."""
        self.recv_queue.appendleft(wr)
        self._recv_bytes += wr.length

    # -- backpressure plumbing ----------------------------------------------

    def space_event(self, sim, which: str) -> Event:
        """An event fired when the named work queue drains below its low
        watermark (or failed with :class:`QpTornDown` if the QP dies)."""
        ev = Event(sim)
        waiters = self._sq_waiters if which == "send" else self._rq_waiters
        waiters.append(ev)
        return ev

    def wr_dequeued(self, which: str) -> None:
        """Firmware notification: a WR left the named queue.  Wakes
        blocked posters once the queue is below the low watermark."""
        if which == "send":
            waiters, queue, low = (self._sq_waiters, self.send_queue,
                                   self.sq_low_watermark)
        else:
            waiters, queue, low = (self._rq_waiters, self.recv_queue,
                                   self.rq_low_watermark)
        if waiters and len(queue) < low:
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()
            waiters.clear()

    def fail_waiters(self, cause: Optional[Exception] = None) -> None:
        """QP teardown: blocked posters must not hang on a dead queue."""
        for ev in self._sq_waiters + self._rq_waiters:
            if not ev.triggered:
                ev.fail(QpTornDown(self, cause=cause))
        self._sq_waiters.clear()
        self._rq_waiters.clear()

    @property
    def posted_recv_bytes(self) -> int:
        """Total capacity of posted receive WRs: this *is* the TCP receive
        window in QPIP (paper §5.1)."""
        return self._recv_bytes

    def __repr__(self):
        return (f"<QP{self.qp_num} {self.transport.value} {self.state.value} "
                f"sq={len(self.send_queue)} rq={len(self.recv_queue)}>")
