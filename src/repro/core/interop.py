"""QP ↔ socket interoperation helpers.

Paper §3: "Communication can occur between QPIP applications or QPIP and
traditional (socket) systems ... the QP end is aware of the remote
limitations and may have to re-assemble incoming data into a complete
unit.  This reassembly could be done by an optional library."

This module is that optional library.  A socket peer emits a byte
stream; each TCP segment consumes one receive WR at the QP end, so a
logical message may arrive split across several WRs (or several
messages packed into one).  :class:`MessageReassembler` restores
boundaries using a 4-byte length prefix.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..errors import NetworkError


def frame_message(data: bytes) -> bytes:
    """Length-prefix a message for stream transport."""
    return struct.pack("!I", len(data)) + data


class MessageReassembler:
    """Rebuilds length-prefixed messages from per-WR byte fragments."""

    MAX_MESSAGE = 1 << 24

    def __init__(self):
        self._buffer = bytearray()
        self.messages_out: List[bytes] = []
        self.bytes_in = 0

    def push(self, fragment: bytes) -> List[bytes]:
        """Feed one received fragment; returns completed messages."""
        self._buffer.extend(fragment)
        self.bytes_in += len(fragment)
        done: List[bytes] = []
        while True:
            if len(self._buffer) < 4:
                break
            (length,) = struct.unpack_from("!I", self._buffer, 0)
            if length > self.MAX_MESSAGE:
                raise NetworkError(f"reassembly: absurd message length {length}")
            if len(self._buffer) < 4 + length:
                break
            done.append(bytes(self._buffer[4:4 + length]))
            del self._buffer[:4 + length]
        self.messages_out.extend(done)
        return done

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
