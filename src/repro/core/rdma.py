"""RDMA extension: one-sided WRITE and READ over the QPIP transport.

The QP model the paper adopts (§2.1) includes "remote DMA (RDMA)"
message transactions — "data can be directly written to or read from a
remote address space without involving the target process" — but the
prototype implements only send-receive.  This module is that future
work, done the way the lineage actually went (iWARP/DDP): a small
framing header on every QP message distinguishes tagged (RDMA) from
untagged (send) messages and carries the remote buffer coordinates.

RDMA framing is per-QP opt-in (``rdma=True`` at ``create_qp``), because
it *is* an additional protocol layer — exactly what the 2002 prototype
chose to avoid, and exactly what RFC 5040/5041 later standardized.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..errors import NetworkError

RDMA_HDR_LEN = 32


class RdmaOpcode(enum.Enum):
    SEND = 0          # untagged: consumes a receive WR
    WRITE = 1         # tagged: placed at (rkey, remote_addr)
    READ_REQ = 2      # ask the peer to stream data back
    READ_RESP = 3     # tagged response segment of a READ


@dataclass(frozen=True)
class RdmaHeader:
    """Per-message framing header (DDP-flavoured), 32 bytes on the wire.

    * SEND — only ``length`` matters.
    * WRITE / READ_RESP — (``rkey``, ``remote_addr``) locate the buffer
      for direct placement.
    * READ_REQ — (``rkey``, ``remote_addr``, ``length``) name the source
      at the responder; (``sink_key``, ``sink_addr``) name the
      requester's landing buffer, echoed back in each READ_RESP.
    """

    opcode: RdmaOpcode
    rkey: int = 0
    remote_addr: int = 0
    length: int = 0
    sink_key: int = 0
    sink_addr: int = 0

    _FMT = "!BxxxIQIIQ"

    def encode(self) -> bytes:
        return struct.pack(self._FMT, self.opcode.value, self.rkey,
                           self.remote_addr, self.length, self.sink_key,
                           self.sink_addr)

    @classmethod
    def decode(cls, data: bytes) -> "RdmaHeader":
        if len(data) < RDMA_HDR_LEN:
            raise NetworkError(f"short RDMA header: {len(data)} bytes")
        (opcode_val, rkey, addr, length, sink_key,
         sink_addr) = struct.unpack_from(cls._FMT, data, 0)
        try:
            opcode = RdmaOpcode(opcode_val)
        except ValueError as exc:
            raise NetworkError(f"bad RDMA opcode {opcode_val}") from exc
        return cls(opcode, rkey, addr, length, sink_key, sink_addr)


def frame(header: RdmaHeader, payload) -> object:
    """Prepend the framing header to a message payload."""
    from ..net.packet import BytesPayload, concat
    return concat([BytesPayload(header.encode()), payload])


def unframe(payload) -> tuple:
    """Split a framed message into (header, body)."""
    raw = payload.slice(0, RDMA_HDR_LEN).to_bytes()
    header = RdmaHeader.decode(raw)
    body = payload.slice(RDMA_HDR_LEN, payload.length - RDMA_HDR_LEN)
    return header, body
