"""The verbs library: PostSend / PostRecv / Poll / Wait plus connection
and memory management (paper §4.1's "application software library" and
"kernel driver" rolled into one per-process handle).

Host-side costs follow Table 1: posting a send and reaping its
completion costs ~2.5 µs of host CPU, against ~30 µs through the
host-based stack.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Optional

from .. import obs
from ..errors import (PostDeadlineExceeded, QPStateError, QueueFull,
                      VerbsError)
from ..hw.host import Host
from ..hw.timing import QpipHostTiming
from ..mem import Access, AddressSpace, MemoryRegion, SGE
from ..net.addresses import Endpoint
from ..sim import Event
from .cq import CompletionQueue
from .firmware import MgmtCommand, QpipFirmware
from .qp import QPState, QPTransport, QueuePair
from .wr import Completion, WorkRequest, WROpcode


class QpipBuffer:
    """A registered, page-backed message buffer."""

    def __init__(self, aspace: AddressSpace, region: MemoryRegion):
        self.aspace = aspace
        self.region = region

    @property
    def addr(self) -> int:
        return self.region.addr

    @property
    def length(self) -> int:
        return self.region.length

    @property
    def lkey(self) -> int:
        return self.region.lkey

    def sge(self, offset: int = 0, length: Optional[int] = None) -> SGE:
        if length is None:
            length = self.length - offset
        if offset < 0 or offset + length > self.length:
            raise VerbsError("SGE outside registered buffer")
        return SGE(self.addr + offset, length, self.lkey)

    def write(self, data: bytes, offset: int = 0) -> None:
        if offset + len(data) > self.length:
            raise VerbsError("write beyond buffer end")
        self.aspace.write(self.addr + offset, data)

    def read(self, length: Optional[int] = None, offset: int = 0) -> bytes:
        if length is None:
            length = self.length - offset
        return self.aspace.read(self.addr + offset, length)


class QpipInterface:
    """One process's handle onto a QPIP adapter."""

    DRIVER_CALL = 4.0     # host µs per privileged mgmt command

    # Default ceiling on how long a backpressured post may yield waiting
    # for queue space before failing with PostDeadlineExceeded (µs).
    POST_DEADLINE = 1_000_000.0

    def __init__(self, firmware: QpipFirmware, host: Host,
                 process_name: str = "app",
                 timing: Optional[QpipHostTiming] = None):
        self.fw = firmware
        self.host = host
        self.sim = host.sim
        self.timing = timing or QpipHostTiming()
        self.aspace = host.new_address_space(process_name)
        self.post_timeout: Optional[float] = self.POST_DEADLINE
        self._qp_nums = itertools.count(1)
        self._cq_nums = itertools.count(1)
        self._wr_ids = itertools.count(1)

    def alloc_wr_id(self) -> int:
        """Reserve a WR id up front (lets callers key completion state
        before the post's CPU charge yields control)."""
        return next(self._wr_ids)

    # -- control path (kernel driver: mgmt commands) -------------------------

    def _mgmt(self, kind: str, *args) -> Generator:
        yield self.host.cpu.submit_wait(self.DRIVER_CALL, category="qpip-driver")
        done = Event(self.sim)
        self.fw.nic.post_mgmt(MgmtCommand(kind, args, done))
        result = yield done
        return result

    def register_memory(self, nbytes: int,
                        access: Access = Access.local()) -> Generator:
        """Allocate and register a buffer; returns a :class:`QpipBuffer`."""
        rng = self.aspace.alloc(nbytes)
        region = yield from self._mgmt("register", self.aspace, rng.addr,
                                       nbytes, access)
        return QpipBuffer(self.aspace, region)

    def create_cq(self, capacity: int = 1024) -> Generator:
        cq = CompletionQueue(self.sim, next(self._cq_nums), capacity,
                             span_scope=str(self.fw.addr))
        # Blocking waiters are woken through the driver's "lightweight
        # interrupt service routine" (paper §4.1) — far cheaper than the
        # full network ISR + softirq path.
        cq.interrupt_hook = lambda waiter: self.host.cpu.submit(
            2.0, category="qpip-intr", fn=waiter.succeed, priority=-10)
        yield self.host.cpu.submit_wait(self.DRIVER_CALL, category="qpip-driver")
        return cq

    def create_qp(self, transport: QPTransport, send_cq: CompletionQueue,
                  recv_cq: Optional[CompletionQueue] = None,
                  max_send_wr: int = 256, max_recv_wr: int = 256,
                  rdma: bool = False) -> Generator:
        """``rdma=True`` enables the framed one-sided extension
        (RDMA WRITE/READ, see ``repro.core.rdma``)."""
        qp = QueuePair(next(self._qp_nums), transport, send_cq,
                       recv_cq or send_cq, max_send_wr, max_recv_wr,
                       rdma=rdma)
        result = yield from self._mgmt("create_qp", qp)
        return result

    def connect(self, qp: QueuePair, remote: Endpoint,
                local_port: Optional[int] = None) -> Generator:
        """TCP active open; returns when the connection is ESTABLISHED.

        The SYN handshake runs entirely in the interface (paper §3); the
        host blocks here until notified.
        """
        yield from self._mgmt("connect", qp, remote, local_port)

    def listen(self, port: int) -> Generator:
        """Start monitoring a TCP port; returns a listener id."""
        listener_id = yield from self._mgmt("listen", port)
        return listener_id

    def accept(self, listener_id: int, qp: QueuePair) -> Generator:
        """Offer an idle QP to the listener; returns when mated."""
        yield from self._mgmt("accept", listener_id, qp)
        return qp

    def bind_udp(self, qp: QueuePair, port: Optional[int] = None) -> Generator:
        bound = yield from self._mgmt("bind_udp", qp, port)
        return bound

    def disconnect(self, qp: QueuePair) -> Generator:
        yield from self._mgmt("disconnect", qp)

    def coll_create(self, group: int, rank: int, world: int,
                    right_addr, port: int, cq: CompletionQueue,
                    eager_threshold: int = 4096,
                    connect_delay_us: Optional[float] = None) -> Generator:
        """Install a NIC-resident collective group (repro.collectives).

        Returns once the firmware's ring connections to both neighbors
        are established; completions for posted ops land on ``cq``.
        """
        from ..collectives.nicoffload import CONNECT_DELAY_US, CollGroupConfig
        config = CollGroupConfig(
            group=group, rank=rank, world=world, right_addr=right_addr,
            port=port, eager_threshold=eager_threshold, cq=cq,
            connect_delay_us=(CONNECT_DELAY_US if connect_delay_us is None
                              else connect_delay_us))
        result = yield from self._mgmt("coll_create", config)
        return result

    def destroy_qp(self, qp: QueuePair) -> Generator:
        yield from self._mgmt("destroy_qp", qp)

    # -- data path (pure user level: no kernel involvement) --------------------

    def _enqueue(self, qp: QueuePair, wr: WorkRequest, which: str,
                 timeout: Optional[float]) -> Generator:
        """Enqueue with watermark backpressure.

        A full work queue no longer rejects the post: the poster yields
        until the firmware drains the queue below its low watermark, up
        to ``timeout`` µs (``None``: the interface default,
        ``0``: non-blocking, raise :class:`QueueFull` immediately).
        A QP that dies while we wait fails the post with
        :class:`QpTornDown` — never silence."""
        budget = self.post_timeout if timeout is None else timeout
        deadline = None if budget is None else self.sim.now + budget
        enqueue = qp.enqueue_send if which == "send" else qp.enqueue_recv
        while True:
            try:
                enqueue(wr)
                return
            except QueueFull:
                if budget == 0:
                    raise
                if deadline is not None and self.sim.now >= deadline:
                    raise PostDeadlineExceeded(
                        f"QP{qp.qp_num} {which} queue still full after "
                        f"{budget:g}us")
                space = qp.space_event(self.sim, which)
                if deadline is not None:
                    handle = self.sim.call_later(
                        deadline - self.sim.now,
                        lambda ev=space: ev.succeed() if not ev.triggered
                        else None)
                    yield space
                    handle.cancel()
                else:
                    yield space

    def _post(self, qp: QueuePair, wr: WorkRequest, which: str,
              timeout: Optional[float]) -> Generator:
        yield from self._enqueue(qp, wr, which, timeout)
        rec = obs.RECORDER
        if rec is not None:
            scope_cq = qp.recv_cq if which == "recv" else qp.send_cq
            rec.begin("verbs", f"wr.{which}",
                      ("wr", scope_cq.span_scope, qp.qp_num,
                       wr.wr_id, which),
                      track=f"qp{qp.qp_num}.host",
                      wr_id=wr.wr_id, qp=qp.qp_num,
                      opcode=wr.opcode.name, bytes=wr.length)
            rec.metrics.counter(f"verbs.{which}_posted").add()
        cost = self.timing.post_descriptor + self.timing.doorbell
        yield self.host.cpu.submit(
            cost, category="qpip-post",
            fn=lambda: self.fw.nic.ring_doorbell((qp.qp_num, which)))
        return wr.wr_id

    def coll_post(self, group: int, algo: str, nelems: int = 0,
                  sge: Optional[SGE] = None, root: int = 0,
                  wr_id: Optional[int] = None) -> Generator:
        """Post one collective op: a single doorbell, a single CQE.

        This is the entire host-side cost of a NIC-offloaded collective —
        the per-step forwarding and combining happens in firmware.
        """
        from ..collectives.nicoffload import CollOp
        unit = self.fw.collectives.get(group)
        if unit is None:
            raise VerbsError(f"no collective group {group} on this interface")
        if wr_id is None:
            wr_id = next(self._wr_ids)
        op = CollOp(wr_id, algo, unit.alloc_seq(), root, nelems, sge)
        unit.host_ring.append(op)
        rec = obs.RECORDER
        if rec is not None:
            rec.event("verbs", "coll.post", track=f"coll{group}.host",
                      group=group, wr_id=wr_id, algo=algo, nelems=nelems)
            rec.metrics.counter("verbs.coll_posted").add()
        cost = self.timing.post_descriptor + self.timing.doorbell
        yield self.host.cpu.submit(
            cost, category="qpip-post",
            fn=lambda: self.fw.nic.ring_doorbell((group, "coll")))
        return wr_id

    def post_send(self, qp: QueuePair, sges: List[SGE],
                  dest: Optional[Endpoint] = None,
                  wr_id: Optional[int] = None,
                  timeout: Optional[float] = None) -> Generator:
        """Post one send WR; returns its wr_id immediately after the doorbell."""
        wr = WorkRequest(wr_id if wr_id is not None else next(self._wr_ids),
                         WROpcode.SEND, list(sges), dest=dest)
        result = yield from self._post(qp, wr, "send", timeout)
        return result

    def post_recv(self, qp: QueuePair, sges: List[SGE],
                  wr_id: Optional[int] = None,
                  timeout: Optional[float] = None) -> Generator:
        wr = WorkRequest(wr_id if wr_id is not None else next(self._wr_ids),
                         WROpcode.RECV, list(sges))
        result = yield from self._post(qp, wr, "recv", timeout)
        return result

    def post_rdma_write(self, qp: QueuePair, sges: List[SGE],
                        remote_addr: int, rkey: int,
                        wr_id: Optional[int] = None,
                        timeout: Optional[float] = None) -> Generator:
        """One-sided write into the peer's registered buffer.

        Completes locally when the data is ACKed; the target process is
        never involved (paper §2.1's RDMA semantics)."""
        wr = WorkRequest(wr_id if wr_id is not None else next(self._wr_ids),
                         WROpcode.RDMA_WRITE, list(sges),
                         remote_addr=remote_addr, rkey=rkey)
        result = yield from self._post(qp, wr, "send", timeout)
        return result

    def post_rdma_read(self, qp: QueuePair, sink: SGE, remote_addr: int,
                       rkey: int, wr_id: Optional[int] = None,
                       timeout: Optional[float] = None) -> Generator:
        """One-sided read from the peer's registered buffer into ``sink``;
        completes when the response stream has been placed."""
        wr = WorkRequest(wr_id if wr_id is not None else next(self._wr_ids),
                         WROpcode.RDMA_READ, [sink],
                         remote_addr=remote_addr, rkey=rkey)
        result = yield from self._post(qp, wr, "send", timeout)
        return result

    def poll(self, cq: CompletionQueue, max_entries: int = 16) -> Generator:
        """Non-blocking poll: returns (possibly empty) list of completions."""
        yield self.host.cpu.submit_wait(self.timing.poll_cq, category="qpip-poll")
        cqes = cq.pop_many(max_entries)
        if cqes:
            yield self.host.cpu.submit_wait(
                self.timing.completion_check * len(cqes), category="qpip-poll")
        return cqes

    def wait(self, cq: CompletionQueue) -> Generator:
        """Blocking wait: spin once, then sleep until the CQ interrupt."""
        cqes = yield from self.poll(cq)
        while not cqes:
            yield cq.wait_event()
            yield self.host.cpu.submit_wait(self.timing.wait_block,
                                            category="qpip-wait")
            cqes = yield from self.poll(cq)
        return cqes

    def spin(self, cq: CompletionQueue, poll_interval: float = 0.5) -> Generator:
        """Busy-poll (processor-cache spin, §5.1) until completions arrive."""
        while True:
            cqes = yield from self.poll(cq)
            if cqes:
                return cqes
            yield self.sim.timeout(poll_interval)
