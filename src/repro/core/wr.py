"""Work requests and completions — the currency of the QP abstraction.

Paper §2.1: "Each WR contains the necessary meta-data for the message
transaction including pointers into registered buffers to receive/
transmit data to/from."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import VerbsError
from ..mem import SGE, sg_total
from ..net.addresses import Endpoint


class WROpcode(enum.Enum):
    SEND = "SEND"
    RECV = "RECV"
    RDMA_WRITE = "RDMA_WRITE"     # extension: one-sided write (§2.1 model)
    RDMA_READ = "RDMA_READ"       # extension: one-sided read
    COLLECTIVE = "COLLECTIVE"     # extension: NIC-offloaded collective op


class WRStatus(enum.Enum):
    SUCCESS = "SUCCESS"
    LOCAL_LENGTH_ERROR = "LOCAL_LENGTH_ERROR"     # message overflowed the WR
    LOCAL_PROTECTION_ERROR = "LOCAL_PROTECTION_ERROR"
    LOCAL_DMA_ERROR = "LOCAL_DMA_ERROR"           # host-DMA transfer fault
    REMOTE_ACCESS_ERROR = "REMOTE_ACCESS_ERROR"   # bad rkey/bounds at the peer
    REMOTE_ABORTED = "REMOTE_ABORTED"             # connection reset under us
    FLUSHED = "FLUSHED"                           # QP torn down with WRs posted


@dataclass(slots=True)
class WorkRequest:
    """One send or receive descriptor posted to a QP."""

    wr_id: int
    opcode: WROpcode
    sges: List[SGE] = field(default_factory=list)
    # UDP only: where a send goes (send WRs) — paper §3: "The WRs in a UDP
    # QP identify the target or source address/port".
    dest: Optional[Endpoint] = None
    # RDMA only: the peer's registered buffer (exchanged out of band,
    # "using some out-of-band mechanism such as a send-receive operation").
    remote_addr: Optional[int] = None
    rkey: Optional[int] = None
    # Scatter-gather total, computed once at post time: the firmware
    # reads it per packet (window advertisement, segmentation).
    _length: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self):
        self._length = sg_total(self.sges)
        if self.opcode is WROpcode.SEND and not self.sges and self._length != 0:
            raise VerbsError("send WR needs at least one SGE")
        if self.opcode in (WROpcode.RDMA_WRITE, WROpcode.RDMA_READ):
            if self.remote_addr is None or self.rkey is None:
                raise VerbsError("RDMA WR needs remote_addr and rkey")
            if self.opcode is WROpcode.RDMA_READ and len(self.sges) != 1:
                raise VerbsError("RDMA READ uses exactly one sink SGE")

    @property
    def length(self) -> int:
        return self._length


@dataclass(slots=True)
class Completion:
    """A completion-queue entry (CQE)."""

    wr_id: int
    qp_num: int
    opcode: WROpcode
    status: WRStatus = WRStatus.SUCCESS
    byte_len: int = 0
    src: Optional[Endpoint] = None    # UDP receives: datagram source

    @property
    def ok(self) -> bool:
        return self.status is WRStatus.SUCCESS

    def raise_for_status(self) -> "Completion":
        """Return self if successful; raise :class:`CompletionError` otherwise."""
        if not self.ok:
            from ..errors import CompletionError
            raise CompletionError(self)
        return self
