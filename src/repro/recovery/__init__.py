"""Self-healing QP sessions: retry policies, circuit breaking, health
probes, and exactly-once message replay across QP incarnations."""

from .breaker import BreakerState, CircuitBreaker
from .channel import (FRAME_HDR_LEN, MSG_DATA, MSG_HELLO, MSG_HELLO_ACK,
                      MSG_PING, MSG_PONG, ReceiverState, SenderState,
                      SessionState, pack_frame, unpack_frame)
from .manager import (DEFAULT_HEARTBEAT, DEFAULT_MAX_MSG, DEFAULT_WINDOW,
                      RecoveryAcceptor, RecoveryManager)
from .policy import RetryPolicy

__all__ = [
    "BreakerState", "CircuitBreaker", "RetryPolicy",
    "SenderState", "ReceiverState", "SessionState",
    "pack_frame", "unpack_frame", "FRAME_HDR_LEN",
    "MSG_DATA", "MSG_HELLO", "MSG_HELLO_ACK", "MSG_PING", "MSG_PONG",
    "RecoveryManager", "RecoveryAcceptor",
    "DEFAULT_WINDOW", "DEFAULT_MAX_MSG", "DEFAULT_HEARTBEAT",
]
