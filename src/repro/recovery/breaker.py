"""Circuit breaker: stop hammering a peer that keeps failing.

Standard three-state machine on the simulation clock:

* **CLOSED** — normal operation; consecutive failures are counted.
* **OPEN**   — ``failure_threshold`` consecutive failures trip the
  breaker; attempts are shed (``allow()`` is False) until
  ``reset_timeout`` µs have passed.
* **HALF_OPEN** — after the cooldown a limited number of probe attempts
  go through; one success closes the breaker, one failure re-opens it
  (with a fresh cooldown).

The recovery layer wraps its *reconnect* path in a breaker, so a peer
that flaps (accepts, then dies, then accepts, ...) costs a bounded
amount of connection churn instead of a tight retry loop.
"""

from __future__ import annotations

import enum

from ..errors import ConfigError


class BreakerState(enum.Enum):
    CLOSED = "CLOSED"
    OPEN = "OPEN"
    HALF_OPEN = "HALF_OPEN"


class CircuitBreaker:
    """Consecutive-failure breaker on the sim clock."""

    def __init__(self, sim, failure_threshold: int = 5,
                 reset_timeout: float = 200_000.0,
                 half_open_probes: int = 1, name: str = "breaker"):
        if failure_threshold < 1 or half_open_probes < 1:
            raise ConfigError("breaker thresholds must be >= 1")
        if reset_timeout <= 0:
            raise ConfigError("reset_timeout must be positive")
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float = -1.0
        self._probes_left = 0
        # counters (surfaced by tools.inspect)
        self.opens = 0
        self.shed = 0
        self.successes = 0
        self.failures = 0

    @property
    def cooldown_remaining(self) -> float:
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self.opened_at + self.reset_timeout - self.sim.now)

    def allow(self) -> bool:
        """May an attempt proceed right now?  (Counts shed attempts.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.sim.now >= self.opened_at + self.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                self._probes_left = self.half_open_probes
            else:
                self.shed += 1
                return False
        # HALF_OPEN: ration the probes.
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        self.shed += 1
        return False

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN \
                or self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        if self.state is not BreakerState.OPEN:
            self.opens += 1
        self.state = BreakerState.OPEN
        self.opened_at = self.sim.now
