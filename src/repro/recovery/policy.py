"""Retry policies: when (and whether) to try again.

A :class:`RetryPolicy` turns "the connection died" into a deterministic
schedule of reconnect attempts: exponential backoff with a cap, optional
jitter drawn from a *named* simulation RNG stream (so two runs with the
same seed produce bit-identical schedules), a per-attempt timeout, and an
overall budget.  Exhausting the budget raises
:class:`~repro.errors.RetryBudgetExhausted` — recovery fails loudly, it
never hangs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ConfigError

JITTER_MODES = ("none", "full", "decorrelated")


@dataclass
class RetryPolicy:
    """Backoff schedule for reconnect attempts (all times in µs).

    ``jitter`` selects the delay distribution:

    * ``"none"``          — pure exponential: ``base * multiplier**k``, capped.
    * ``"full"``          — uniform in ``[0, exponential)`` (AWS "full jitter").
    * ``"decorrelated"``  — ``min(cap, uniform(base, 3 * previous))``;
      spreads a thundering herd of reconnecting clients without the
      synchronized pulses plain exponential produces.

    The first attempt waits ``first_delay`` (default: retry immediately —
    the most common failure is a single killed connection, and one fast
    retry usually heals it before backoff matters).
    """

    base_delay: float = 100.0
    max_delay: float = 50_000.0
    multiplier: float = 2.0
    jitter: str = "decorrelated"
    max_attempts: int = 8
    attempt_timeout: float = 500_000.0
    deadline: Optional[float] = None     # overall budget across all attempts
    first_delay: float = 0.0

    def __post_init__(self):
        if self.jitter not in JITTER_MODES:
            raise ConfigError(f"unknown jitter mode {self.jitter!r}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigError("need 0 <= base_delay <= max_delay")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")

    def delays(self, rng=None) -> Iterator[float]:
        """Yield the pre-attempt delay for attempts ``0..max_attempts-1``.

        ``rng`` is a ``random.Random`` (a :class:`~repro.sim.RngHub`
        stream); required for the jittered modes.  The sequence is a pure
        function of (policy, rng state): same seed, same schedule.
        """
        if self.jitter != "none" and rng is None:
            raise ConfigError(f"jitter={self.jitter!r} needs an rng stream")
        prev = self.base_delay
        for attempt in range(self.max_attempts):
            if attempt == 0:
                yield self.first_delay
                continue
            raw = min(self.max_delay,
                      self.base_delay * self.multiplier ** (attempt - 1))
            if self.jitter == "none":
                delay = raw
            elif self.jitter == "full":
                delay = rng.uniform(0.0, raw)
            else:   # decorrelated
                delay = min(self.max_delay,
                            rng.uniform(self.base_delay, prev * 3.0))
                prev = delay
            yield delay
