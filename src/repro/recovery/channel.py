"""The reliable-session wire protocol: sequence numbers over QP messages.

A QP incarnation can die at any moment; the session must not.  Every
application message rides in a small frame:

    ``[type u8][flags u8][pad u16][session u32][seq u64][ack u64]``  (24 B)

* ``seq`` numbers application messages per direction, starting at 0.
  Control frames (HELLO/PING/...) carry 0 unless noted.
* ``ack`` piggybacks the sender's *cumulative* receive progress
  (``rcv_next``): every frame — data, heartbeat, handshake — tells the
  peer how far it may retire its replay ledger.

Exactly-once delivery across QP incarnations combines two halves:

* the **sender** keeps every message in an unacked ledger until either
  its send WR completes successfully (message-mode completion implies
  the bytes were placed in a peer receive WR) or a cumulative ack covers
  it; after a reconnect, everything still in the ledger is replayed;
* the **receiver** admits each ``seq`` at most once — replayed
  duplicates (the send completed but the CQE raced the crash) are
  counted and dropped.

The session handshake (HELLO / HELLO_ACK) exchanges ``rcv_next`` in both
directions, so each side retires what the other actually received before
replaying the rest.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

FRAME_HDR = struct.Struct("!BBxxIQQ")
FRAME_HDR_LEN = FRAME_HDR.size          # 24 bytes

MSG_DATA = 1        # seq = message number, payload = application bytes
MSG_HELLO = 2       # client -> server: open/resume session
MSG_HELLO_ACK = 3   # server -> client: session resumed, ack = rcv_next
MSG_PING = 4        # heartbeat probe (seq = probe counter)
MSG_PONG = 5        # heartbeat reply  (seq echoes the probe)

_TYPE_NAMES = {MSG_DATA: "DATA", MSG_HELLO: "HELLO",
               MSG_HELLO_ACK: "HELLO_ACK", MSG_PING: "PING",
               MSG_PONG: "PONG"}


def pack_frame(ftype: int, session: int, seq: int, ack: int,
               payload: bytes = b"") -> bytes:
    return FRAME_HDR.pack(ftype, 0, session, seq, ack) + payload


def unpack_frame(data: bytes) -> Tuple[int, int, int, int, bytes]:
    """Returns ``(type, session, seq, ack, payload)``."""
    if len(data) < FRAME_HDR_LEN:
        raise ReproError(f"short recovery frame: {len(data)} bytes")
    ftype, _flags, session, seq, ack = FRAME_HDR.unpack_from(data, 0)
    if ftype not in _TYPE_NAMES:
        raise ReproError(f"unknown recovery frame type {ftype}")
    return ftype, session, seq, ack, data[FRAME_HDR_LEN:]


class SenderState:
    """Outbound half: sequence assignment plus the replay ledger."""

    def __init__(self):
        self.next_seq = 0
        self.unacked: Dict[int, bytes] = {}     # seq -> payload

    @property
    def lowest_unacked(self) -> int:
        return min(self.unacked) if self.unacked else self.next_seq

    def stage(self, payload: bytes) -> int:
        """Assign the next seq and remember the payload for replay."""
        seq = self.next_seq
        self.next_seq += 1
        self.unacked[seq] = payload
        return seq

    def retire(self, seq: int) -> bool:
        """Drop one ledger entry (its send WR completed successfully)."""
        return self.unacked.pop(seq, None) is not None

    def retire_through(self, ack: int) -> int:
        """Cumulative ack: drop every entry below ``ack``; returns count."""
        covered = [s for s in self.unacked if s < ack]
        for s in covered:
            del self.unacked[s]
        return len(covered)

    def replay_order(self) -> List[int]:
        return sorted(self.unacked)


class ReceiverState:
    """Inbound half: at-most-once admission by sequence number."""

    def __init__(self):
        self.rcv_next = 0               # lowest seq not yet delivered
        self._seen = set()              # delivered seqs >= rcv_next
        self.duplicates = 0

    def admit(self, seq: int) -> bool:
        """True exactly once per seq; duplicates are counted and refused."""
        if seq < self.rcv_next or seq in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(seq)
        while self.rcv_next in self._seen:
            self._seen.discard(self.rcv_next)
            self.rcv_next += 1
        return True


class SessionState:
    """Both directions of one logical session (client or server side)."""

    def __init__(self, session_id: int):
        self.session_id = session_id
        self.tx = SenderState()
        self.rx = ReceiverState()
        self.incarnations = 0           # QP generations this session used
