"""Self-healing reliable sessions over QP incarnations.

:class:`RecoveryManager` (active side) and :class:`RecoveryAcceptor`
(passive side) keep one logical *session* alive across any number of QP
deaths.  The division of labour:

* the **pump** (one process per side) is the sole consumer of a single
  long-lived CQ that every QP incarnation binds to.  It dispatches
  completions, detects failure (error CQE on the *current* incarnation),
  and — on the manager side — runs the reconnect loop;
* **failure detection** is three-legged: error completions (flush
  guarantees one per posted WR), :class:`~repro.errors.QpTornDown` from
  a post, and a :class:`~repro.sim.Watchdog` that catches *silent* peer
  death (stalled firmware, half-open connection after a mid-transfer
  kill) and escalates through ``firmware.abort_qp`` so the normal flush
  machinery produces the error completions;
* **reconnects** follow a :class:`~repro.recovery.RetryPolicy` (seeded
  jitter — bit-for-bit reproducible schedules) behind a
  :class:`~repro.recovery.CircuitBreaker` that paces attempts to a
  flapping peer;
* **exactly-once delivery** is the ledger/replay/dedup protocol of
  :mod:`repro.recovery.channel`.

Everything runs on the simulation clock; a given seed produces an
identical recovery trace (``manager.trace``) every run.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Dict, Generator, List, Optional

from .. import obs
from ..core import QPTransport, WROpcode
from ..errors import (CircuitOpen, NetworkError, PostDeadlineExceeded,
                      QPStateError, QpTornDown, QueueFull, ReproError,
                      RetryBudgetExhausted)
from ..net.addresses import Endpoint
from ..sim import AnyOf, Event, PeriodicTimer, Watchdog
from .breaker import BreakerState, CircuitBreaker
from .channel import (FRAME_HDR_LEN, MSG_DATA, MSG_HELLO, MSG_HELLO_ACK,
                      MSG_PING, MSG_PONG, SessionState, pack_frame,
                      unpack_frame)
from .policy import RetryPolicy

DEFAULT_WINDOW = 64
DEFAULT_MAX_MSG = 4096
DEFAULT_HEARTBEAT = 20_000.0        # 20 ms between PINGs
DEFAULT_SERVER_WATCHDOG = 150_000.0


class _ReliableBase:
    """Buffer pools, CQ pump plumbing, and completion dispatch shared by
    both ends of a recovered session."""

    HS_POLL = 5.0           # µs between CQ polls while in a handshake
    CONTROL_SLOTS = 4       # round-robin buffers for HELLO/PING/PONG

    def __init__(self, node, window: int, max_msg: int):
        if window < 1:
            raise ReproError("window must be >= 1")
        self.node = node
        self.iface = node.iface
        self.fw = node.firmware
        self.sim = node.host.sim
        self.window = window
        self.max_msg = max_msg
        self.slot_size = FRAME_HDR_LEN + max_msg
        self.cq = None
        self.qp = None                      # current incarnation (or None)
        self._cookies: Dict[int, tuple] = {}        # wr_id -> (kind, key)
        self._posted_recvs: Dict[int, tuple] = {}   # wr_id -> (qp_num, buf)
        self._recv_pool: List = []
        self._ctrl_slots: List = []
        self._ctrl_next = 0
        self._kick: Optional[Event] = None
        self._closed = False
        self.stats = defaultdict(int)
        self.trace: List[str] = []          # deterministic recovery trace

    # -- lifecycle ----------------------------------------------------------

    def _setup(self, recv_slots: int) -> Generator:
        self.cq = yield from self.iface.create_cq(capacity=4096)
        for _ in range(recv_slots):
            buf = yield from self.iface.register_memory(self.slot_size)
            self._recv_pool.append(buf)
        for _ in range(self.CONTROL_SLOTS):
            buf = yield from self.iface.register_memory(FRAME_HDR_LEN)
            self._ctrl_slots.append(buf)

    def _kick_pump(self) -> None:
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed()

    # -- posting ------------------------------------------------------------

    def _post_recvs(self, qp) -> Generator:
        """Fill the QP's receive queue from the buffer pool."""
        while self._recv_pool:
            buf = self._recv_pool.pop()
            wr_id = self.iface.alloc_wr_id()
            self._posted_recvs[wr_id] = (qp.qp_num, buf)
            try:
                yield from self.iface.post_recv(qp, [buf.sge()],
                                                wr_id=wr_id, timeout=0)
            except (QpTornDown, QueueFull):
                del self._posted_recvs[wr_id]
                self._recv_pool.append(buf)
                return

    def _post_control(self, ftype: int, session_id: int, seq: int,
                      ack: int, qp=None) -> Generator:
        """Best-effort header-only frame (handshake/heartbeat traffic)."""
        qp = self.qp if qp is None else qp
        if qp is None:
            return
        buf = self._ctrl_slots[self._ctrl_next % self.CONTROL_SLOTS]
        self._ctrl_next += 1
        frame = pack_frame(ftype, session_id, seq, ack)
        buf.write(frame)
        wr_id = self.iface.alloc_wr_id()
        self._cookies[wr_id] = ("ctrl", None)
        try:
            yield from self.iface.post_send(qp, [buf.sge(0, len(frame))],
                                            wr_id=wr_id, timeout=0)
        except (QpTornDown, QueueFull):
            self._cookies.pop(wr_id, None)

    # -- the pump -----------------------------------------------------------

    def _wait_cq(self) -> Generator:
        """Block until completions arrive or someone kicks the pump."""
        while True:
            cqes = yield from self.iface.poll(self.cq, max_entries=32)
            if cqes or self._closed:
                return cqes
            self._kick = Event(self.sim)
            yield AnyOf(self.sim, [self.cq.wait_event(), self._kick])
            self._kick = None

    def _reclaim(self, qp_num: int) -> Generator:
        """Drain the CQ until every receive buffer posted to a dead
        incarnation has flushed back ("posted == completed" makes this a
        bounded wait)."""
        def pending() -> bool:
            return any(q == qp_num for q, _ in self._posted_recvs.values())
        while pending():
            cqes = yield from self.iface.wait(self.cq)
            for cqe in cqes:
                yield from self._dispatch(cqe)

    def _dispatch(self, cqe) -> Generator:
        cur = self.qp.qp_num if self.qp is not None else -1
        if cqe.opcode is WROpcode.RECV:
            qp_num, buf = self._posted_recvs.pop(cqe.wr_id)
            if cqe.ok:
                try:
                    frame = unpack_frame(buf.read(cqe.byte_len))
                except ReproError:
                    self.stats["bad_frames"] += 1
                    frame = None
                # Keep the receive ring full before acting on the frame.
                if qp_num == cur:
                    wr_id = self.iface.alloc_wr_id()
                    self._posted_recvs[wr_id] = (qp_num, buf)
                    try:
                        yield from self.iface.post_recv(
                            self.qp, [buf.sge()], wr_id=wr_id, timeout=0)
                    except (QpTornDown, QueueFull):
                        del self._posted_recvs[wr_id]
                        self._recv_pool.append(buf)
                else:
                    self._recv_pool.append(buf)
                if frame is not None:
                    # A successful receive from an *old* incarnation is
                    # still placed data: process it (dedup protects us).
                    yield from self._on_frame(frame)
            else:
                self._recv_pool.append(buf)
                if qp_num == cur:
                    self._on_qp_failure(cqe)
                else:
                    self.stats["stale_cqes"] += 1
        else:
            kind, key = self._cookies.pop(cqe.wr_id, (None, None))
            if cqe.ok:
                self.stats["wrs_completed"] += 1
                if kind == "data":
                    self._on_data_sent(key)
            elif cqe.qp_num == cur:
                self._on_qp_failure(cqe)
            else:
                self.stats["stale_cqes"] += 1

    # -- subclass hooks ------------------------------------------------------

    def _on_frame(self, frame) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def _on_qp_failure(self, cqe) -> None:
        raise NotImplementedError

    def _on_data_sent(self, key) -> None:
        raise NotImplementedError

    def report(self) -> dict:
        return dict(self.stats)


class RecoveryManager(_ReliableBase):
    """Active side: owns the reconnect loop, heartbeats, and the app API.

    Application contract: :meth:`send` delivers its payload to the peer
    exactly once, eventually, across any number of QP incarnations (or
    the manager fails loudly with RetryBudgetExhausted); :meth:`recv`
    yields peer messages in order, each exactly once.
    """

    def __init__(self, node, remote: Endpoint, session_id: int,
                 policy: Optional[RetryPolicy] = None, rng=None,
                 breaker: Optional[CircuitBreaker] = None,
                 window: int = DEFAULT_WINDOW,
                 max_msg: int = DEFAULT_MAX_MSG,
                 heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT,
                 watchdog_timeout: Optional[float] = None,
                 shed_when_open: bool = False,
                 name: str = "recovery"):
        super().__init__(node, window, max_msg)
        self.remote = remote
        self.session = SessionState(session_id)
        self.policy = policy or RetryPolicy()
        self.rng = rng
        self.breaker = breaker or CircuitBreaker(self.sim,
                                                 name=f"{name}.breaker")
        self.heartbeat_interval = heartbeat_interval
        if watchdog_timeout is None and heartbeat_interval is not None:
            watchdog_timeout = 3.0 * heartbeat_interval
        self.watchdog_timeout = watchdog_timeout
        self.shed_when_open = shed_when_open
        self.name = name
        self._send_slots: List = []
        self._inbox = deque()
        self._inbox_waiters: List[Event] = []
        self._window_waiters: List[Event] = []
        self._drain_waiters: List[Event] = []
        self._up_waiters: List[Event] = []
        self._need_recovery = False
        self._hello_ack = False
        self._ping_seq = 0
        self._pump_proc = None
        self.heartbeat: Optional[PeriodicTimer] = None
        self.watchdog: Optional[Watchdog] = None

    @property
    def connected(self) -> bool:
        return self.qp is not None and not self._need_recovery

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> Generator:
        """Bring the session up (runs the first connect through the same
        retry machinery as every later recovery); returns when connected."""
        yield from self._setup(recv_slots=self.window + 8)
        for _ in range(self.window):
            buf = yield from self.iface.register_memory(self.slot_size)
            self._send_slots.append(buf)
        if self.watchdog_timeout is not None:
            self.watchdog = Watchdog(self.sim, self.watchdog_timeout,
                                     self._on_watchdog,
                                     name=f"{self.name}.wd")
        if self.heartbeat_interval is not None:
            self.heartbeat = PeriodicTimer(self.sim, self.heartbeat_interval,
                                           self._on_heartbeat,
                                           name=f"{self.name}.hb")
            self.heartbeat.start()
        self._need_recovery = True
        self._pump_proc = self.sim.process(self._pump())
        yield from self._await_up()

    def close(self) -> Generator:
        """Orderly shutdown: the peer sees FIN, not an error."""
        self._closed = True
        if self.heartbeat is not None:
            self.heartbeat.stop()
        if self.watchdog is not None:
            self.watchdog.disarm()
        self._kick_pump()
        for ev in self._inbox_waiters:
            if not ev.triggered:
                ev.succeed()
        self._inbox_waiters.clear()
        if self.qp is not None:
            try:
                yield from self.iface.disconnect(self.qp)
            except ReproError:
                pass

    # -- application API -----------------------------------------------------

    def send(self, payload: bytes) -> Generator:
        """Reliable exactly-once send; returns the assigned sequence
        number.  Blocks (yields) on window backpressure."""
        if self._closed:
            raise ReproError(f"{self.name}: manager is closed")
        if len(payload) > self.max_msg:
            raise ReproError(f"message of {len(payload)} B exceeds "
                             f"max_msg={self.max_msg}")
        if self.shed_when_open and self.breaker.state is BreakerState.OPEN:
            self.stats["shed_sends"] += 1
            raise CircuitOpen(f"{self.name}: peer {self.remote} is flapping")
        tx = self.session.tx
        while tx.next_seq - tx.lowest_unacked >= self.window:
            ev = Event(self.sim)
            self._window_waiters.append(ev)
            yield ev
        seq = tx.stage(payload)
        yield from self._post_data(seq)
        return seq

    def recv(self) -> Generator:
        """Next in-order message from the peer (None once closed)."""
        while not self._inbox:
            if self._closed:
                return None
            ev = Event(self.sim)
            self._inbox_waiters.append(ev)
            yield ev
        return self._inbox.popleft()

    def drain(self) -> Generator:
        """Wait until every staged send has been acknowledged."""
        while self.session.tx.unacked:
            ev = Event(self.sim)
            self._drain_waiters.append(ev)
            yield ev

    # -- internals -----------------------------------------------------------

    def _await_up(self) -> Generator:
        while self._need_recovery or self.qp is None:
            ev = Event(self.sim)
            self._up_waiters.append(ev)
            yield ev

    def _trigger_recovery(self) -> None:
        if not self._closed:
            self._need_recovery = True
            self._kick_pump()

    def _pump(self) -> Generator:
        while not self._closed:
            if self._need_recovery:
                yield from self._recover()
                continue
            cqes = yield from self._wait_cq()
            for cqe in cqes:
                yield from self._dispatch(cqe)

    def _recover(self) -> Generator:
        if self.watchdog is not None:
            self.watchdog.disarm()
        self.trace.append(f"{self.sim.now:.1f}:down")
        if self.qp is not None:
            dead, self.qp = self.qp, None
            self.fw.abort_qp(dead)
            yield from self._reclaim(dead.qp_num)
        self._need_recovery = False
        started = self.sim.now
        attempts_here = 0
        for delay in self.policy.delays(self.rng):
            if delay > 0:
                yield self.sim.timeout(delay)
            while not self.breaker.allow():
                yield self.sim.timeout(
                    max(self.breaker.cooldown_remaining, 1.0))
            if self.policy.deadline is not None and attempts_here > 0 \
                    and self.sim.now - started >= self.policy.deadline:
                break
            attempts_here += 1
            self.stats["attempts"] += 1
            self.trace.append(f"{self.sim.now:.1f}:attempt{attempts_here}")
            ok = yield from self._attempt()
            if ok:
                self.breaker.record_success()
                if self.session.incarnations > 1:
                    self.stats["heals"] += 1
                self.trace.append(
                    f"{self.sim.now:.1f}:up{self.session.incarnations}")
                rec = obs.RECORDER
                if rec is not None:
                    rec.event("recovery", "session.up", track=self.name,
                              incarnation=self.session.incarnations)
                    rec.metrics.counter("recovery.incarnations_up").add()
                for seq in self.session.tx.replay_order():
                    self.stats["replayed_wrs"] += 1
                    if rec is not None:
                        rec.event("recovery", "wr.replay", track=self.name,
                                  seq=seq)
                        rec.metrics.counter("recovery.replayed_wrs").add()
                    yield from self._post_data(seq)
                if self.watchdog is not None:
                    self.watchdog.arm()
                for ev in self._up_waiters:
                    if not ev.triggered:
                        ev.succeed()
                self._up_waiters.clear()
                return
            self.breaker.record_failure()
        raise RetryBudgetExhausted(
            f"{self.name}: session {self.session.session_id} to "
            f"{self.remote} not re-established after {attempts_here} "
            f"attempts / {self.sim.now - started:.0f}us",
            attempts=attempts_here, elapsed=self.sim.now - started)

    def _attempt(self) -> Generator:
        """One incarnation: QP, connect, HELLO/HELLO_ACK — all inside the
        policy's per-attempt deadline."""
        deadline = self.sim.now + self.policy.attempt_timeout
        qp = yield from self.iface.create_qp(
            QPTransport.TCP, self.cq,
            max_send_wr=self.window + self.CONTROL_SLOTS + 4,
            max_recv_wr=self.window + 16)
        yield from self._post_recvs(qp)
        conn = self.sim.process(self.iface.connect(qp, self.remote))
        try:
            yield AnyOf(self.sim, [conn,
                                   self.sim.timeout(self.policy.attempt_timeout)])
        except (NetworkError, QPStateError):
            yield from self._scrap(qp)
            return False
        if not conn.triggered:       # SYN still pending at the deadline
            self.stats["attempt_timeouts"] += 1
            yield from self._scrap(qp)
            return False
        self.qp = qp
        self.session.incarnations += 1
        self._hello_ack = False
        yield from self._post_control(MSG_HELLO, self.session.session_id,
                                      seq=self.session.tx.next_seq,
                                      ack=self.session.rx.rcv_next, qp=qp)
        while not self._hello_ack and not self._need_recovery \
                and self.sim.now < deadline:
            cqes = yield from self.iface.poll(self.cq)
            if cqes:
                for cqe in cqes:
                    yield from self._dispatch(cqe)
            else:
                yield self.sim.timeout(self.HS_POLL)
        if self._hello_ack and not self._need_recovery:
            return True
        if not self._hello_ack:
            self.stats["attempt_timeouts"] += 1
        self.qp = None
        self._need_recovery = False
        yield from self._scrap(qp)
        return False

    def _scrap(self, qp) -> Generator:
        self.fw.abort_qp(qp)
        yield from self._reclaim(qp.qp_num)

    def _post_data(self, seq: int) -> Generator:
        """Frame and post one staged message on the current incarnation.
        A dead QP is fine: the message stays in the ledger and the next
        recovery replays it."""
        if self._closed or self.qp is None or self._need_recovery:
            return
        payload = self.session.tx.unacked.get(seq)
        if payload is None:
            return      # retired while we were blocked on the window
        buf = self._send_slots[seq % self.window]
        frame = pack_frame(MSG_DATA, self.session.session_id, seq,
                           self.session.rx.rcv_next, payload)
        buf.write(frame)
        wr_id = self.iface.alloc_wr_id()
        self._cookies[wr_id] = ("data", seq)
        self.stats["wrs_posted"] += 1
        try:
            yield from self.iface.post_send(self.qp,
                                            [buf.sge(0, len(frame))],
                                            wr_id=wr_id)
        except (QpTornDown, PostDeadlineExceeded):
            self._cookies.pop(wr_id, None)
            self._trigger_recovery()

    def _after_retire(self) -> None:
        tx = self.session.tx
        if tx.next_seq - tx.lowest_unacked < self.window:
            for ev in self._window_waiters:
                if not ev.triggered:
                    ev.succeed()
            self._window_waiters.clear()
        if not tx.unacked:
            for ev in self._drain_waiters:
                if not ev.triggered:
                    ev.succeed()
            self._drain_waiters.clear()

    # -- dispatch hooks -----------------------------------------------------

    def _on_frame(self, frame) -> Generator:
        ftype, _session, seq, ack, payload = frame
        if self.watchdog is not None:
            self.watchdog.feed()
        if self.session.tx.retire_through(ack):
            self._after_retire()
        if ftype == MSG_DATA:
            if self.session.rx.admit(seq):
                self._inbox.append(payload)
                for ev in self._inbox_waiters:
                    if not ev.triggered:
                        ev.succeed()
                self._inbox_waiters.clear()
            else:
                self.stats["duplicates_dropped"] += 1
        elif ftype == MSG_HELLO_ACK:
            self._hello_ack = True
        elif ftype == MSG_PING:
            yield from self._post_control(MSG_PONG, self.session.session_id,
                                          seq=seq,
                                          ack=self.session.rx.rcv_next)

    def _on_qp_failure(self, cqe) -> None:
        if not self._need_recovery:     # count transitions, not every CQE
            self.stats["qp_failures"] += 1
            rec = obs.RECORDER
            if rec is not None:
                rec.event("recovery", "qp.failure_detected", track=self.name,
                          qp=cqe.qp_num, status=cqe.status.name)
                rec.metrics.counter("recovery.qp_failures").add()
        self._trigger_recovery()

    def _on_data_sent(self, seq) -> None:
        # Message-mode completion means the bytes were placed in a peer
        # receive WR — safe to retire (the receiver's dedup covers the
        # completion-raced-the-crash replay window).
        if self.session.tx.retire(seq):
            self._after_retire()

    # -- timer callbacks (run outside any process) ---------------------------

    def _on_heartbeat(self) -> None:
        if self._closed or self.qp is None or self._need_recovery:
            return
        self._ping_seq += 1
        self.stats["heartbeats_sent"] += 1
        self.sim.process(self._post_control(
            MSG_PING, self.session.session_id, seq=self._ping_seq,
            ack=self.session.rx.rcv_next))

    def _on_watchdog(self) -> None:
        if self._closed:
            return
        self.stats["watchdog_escalations"] += 1
        self.trace.append(f"{self.sim.now:.1f}:watchdog")
        if self.qp is not None:
            # The abort flushes every posted WR with error CQEs, which
            # wakes the pump through the normal failure path.
            self.fw.abort_qp(self.qp)
        self._kick_pump()

    def report(self) -> dict:
        out = dict(self.stats)
        out.update(incarnations=self.session.incarnations,
                   unacked=len(self.session.tx.unacked),
                   next_seq=self.session.tx.next_seq,
                   rcv_next=self.session.rx.rcv_next,
                   breaker_state=self.breaker.state.value,
                   breaker_opens=self.breaker.opens,
                   breaker_shed=self.breaker.shed)
        if self.watchdog is not None:
            out["watchdog_expirations"] = self.watchdog.expirations
        return out


class RecoveryAcceptor(_ReliableBase):
    """Passive side: accepts one connection at a time, keeps per-session
    state across incarnations, answers HELLO with the session's receive
    progress, and replays unacknowledged responses.

    ``handler(session_id, payload) -> Optional[bytes]`` is invoked
    exactly once per admitted message; a returned value is sent back
    reliably (the echo/RPC reply path).
    """

    def __init__(self, node, port: int,
                 handler: Optional[Callable] = None,
                 window: int = DEFAULT_WINDOW,
                 max_msg: int = DEFAULT_MAX_MSG,
                 watchdog_timeout: Optional[float] = DEFAULT_SERVER_WATCHDOG,
                 name: str = "acceptor"):
        super().__init__(node, window, max_msg)
        self.port = port
        self.handler = handler
        self.name = name
        self.sessions: Dict[int, SessionState] = {}
        self._slots: Dict[int, List] = {}
        self._conn_dead = False
        self.ready = Event(self.sim)
        self.watchdog = (Watchdog(self.sim, watchdog_timeout,
                                  self._on_watchdog, name=f"{name}.wd")
                         if watchdog_timeout is not None else None)

    def run(self) -> Generator:
        """Accept loop: serve incarnations forever (until closed)."""
        yield from self._setup(recv_slots=self.window + 16)
        listener = yield from self.iface.listen(self.port)
        self.ready.succeed(self.port)
        while not self._closed:
            qp = yield from self.iface.create_qp(
                QPTransport.TCP, self.cq,
                max_send_wr=self.window + self.CONTROL_SLOTS + 4,
                max_recv_wr=self.window + 24)
            yield from self._post_recvs(qp)
            yield from self.iface.accept(listener, qp)
            self.qp = qp
            self._conn_dead = False
            self.stats["accepts"] += 1
            self.trace.append(f"{self.sim.now:.1f}:accept")
            if self.watchdog is not None:
                self.watchdog.arm()
            while not self._conn_dead and not self._closed:
                cqes = yield from self._wait_cq()
                for cqe in cqes:
                    yield from self._dispatch(cqe)
            if self.watchdog is not None:
                self.watchdog.disarm()
            dead, self.qp = self.qp, None
            self.fw.abort_qp(dead)
            yield from self._reclaim(dead.qp_num)

    def close(self) -> None:
        self._closed = True
        if self.watchdog is not None:
            self.watchdog.disarm()
        self._kick_pump()

    # -- dispatch hooks -----------------------------------------------------

    def _on_frame(self, frame) -> Generator:
        ftype, session_id, seq, ack, payload = frame
        if self.watchdog is not None:
            self.watchdog.feed()
        if ftype == MSG_HELLO:
            sess = self.sessions.get(session_id)
            if sess is None:
                sess = self.sessions[session_id] = SessionState(session_id)
                slots = self._slots[session_id] = []
                for _ in range(self.window):
                    buf = yield from self.iface.register_memory(
                        self.slot_size)
                    slots.append(buf)
            sess.incarnations += 1
            sess.tx.retire_through(ack)
            yield from self._post_control(MSG_HELLO_ACK, session_id,
                                          seq=0, ack=sess.rx.rcv_next)
            for rseq in sess.tx.replay_order():
                self.stats["replayed_wrs"] += 1
                yield from self._post_response(sess, rseq)
            return
        sess = self.sessions.get(session_id)
        if sess is None:
            self.stats["orphan_frames"] += 1
            return
        sess.tx.retire_through(ack)
        if ftype == MSG_DATA:
            if sess.rx.admit(seq):
                self.stats["delivered"] += 1
                if self.handler is not None:
                    response = self.handler(session_id, payload)
                    if response is not None:
                        tx = sess.tx
                        if tx.next_seq - tx.lowest_unacked >= self.window:
                            raise ReproError(
                                f"{self.name}: response window overrun for "
                                f"session {session_id}")
                        rseq = tx.stage(response)
                        yield from self._post_response(sess, rseq)
            else:
                self.stats["duplicates_dropped"] += 1
        elif ftype == MSG_PING:
            self.stats["pings"] += 1
            yield from self._post_control(MSG_PONG, session_id, seq=seq,
                                          ack=sess.rx.rcv_next)

    def _post_response(self, sess: SessionState, seq: int) -> Generator:
        if self.qp is None or self._conn_dead or self._closed:
            return
        payload = sess.tx.unacked.get(seq)
        if payload is None:
            return
        buf = self._slots[sess.session_id][seq % self.window]
        frame = pack_frame(MSG_DATA, sess.session_id, seq,
                           sess.rx.rcv_next, payload)
        buf.write(frame)
        wr_id = self.iface.alloc_wr_id()
        self._cookies[wr_id] = ("data", (sess.session_id, seq))
        self.stats["wrs_posted"] += 1
        try:
            yield from self.iface.post_send(self.qp,
                                            [buf.sge(0, len(frame))],
                                            wr_id=wr_id)
        except (QpTornDown, PostDeadlineExceeded):
            self._cookies.pop(wr_id, None)
            self._conn_dead = True
            self._kick_pump()

    def _on_qp_failure(self, cqe) -> None:
        if not self._conn_dead:         # count transitions, not every CQE
            self.stats["conn_failures"] += 1
        self._conn_dead = True
        self._kick_pump()

    def _on_data_sent(self, key) -> None:
        session_id, seq = key
        sess = self.sessions.get(session_id)
        if sess is not None:
            sess.tx.retire(seq)

    def _on_watchdog(self) -> None:
        if self._closed or self.qp is None:
            return
        self.stats["watchdog_escalations"] += 1
        self.trace.append(f"{self.sim.now:.1f}:watchdog")
        self.fw.abort_qp(self.qp)
        self._kick_pump()

    def report(self) -> dict:
        out = dict(self.stats)
        out["sessions"] = {
            sid: dict(incarnations=s.incarnations,
                      unacked=len(s.tx.unacked),
                      next_seq=s.tx.next_seq,
                      rcv_next=s.rx.rcv_next,
                      duplicates=s.rx.duplicates)
            for sid, s in sorted(self.sessions.items())}
        if self.watchdog is not None:
            out["watchdog_expirations"] = self.watchdog.expirations
        return out
