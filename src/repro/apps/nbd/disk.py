"""Server-side storage: a disk with write-behind caching.

The paper's NBD server "emulates a network attached disk".  The 409 MB
file fits the server's 1 GB RAM, so reads come from the page cache
(memory copy only).  Writes land in the cache and drain to the platter
asynchronously; a bounded dirty window applies back-pressure, so a long
sequential write converges to disk bandwidth — the reason Figure 7's
write bars sit below the read bars on every system.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ...sim import Event, Simulator, WorkQueue


class DiskModel:
    """Sequential-transfer disk behind a dirty-page window."""

    def __init__(self, sim: Simulator, write_bandwidth: float = 50.0,
                 per_io_overhead: float = 200.0, io_size: int = 64 * 1024,
                 dirty_limit: int = 1 << 20, name: str = "disk"):
        self.sim = sim
        self.write_bandwidth = write_bandwidth      # bytes/µs
        self.per_io_overhead = per_io_overhead      # seek/rotate amortized
        self.io_size = io_size
        self.dirty_limit = dirty_limit
        self.queue = WorkQueue(sim, name=name)
        self.dirty_bytes = 0
        self.bytes_written = 0
        self._throttled: Deque[Event] = deque()
        self._sync_waiters: Deque[Event] = deque()

    def write(self, nbytes: int) -> Optional[Event]:
        """Stage a write.  Returns None when absorbed by the cache, or an
        event to wait on when the dirty window is full (back-pressure)."""
        self.dirty_bytes += nbytes
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, self.io_size)
            duration = self.per_io_overhead * (chunk / self.io_size) \
                + chunk / self.write_bandwidth
            self.queue.submit(duration, category="disk-write",
                              fn=lambda c=chunk: self._io_done(c))
            remaining -= chunk
        if self.dirty_bytes > self.dirty_limit:
            gate = Event(self.sim)
            self._throttled.append(gate)
            return gate
        return None

    def _io_done(self, nbytes: int) -> None:
        self.dirty_bytes -= nbytes
        self.bytes_written += nbytes
        while self._throttled and self.dirty_bytes <= self.dirty_limit:
            gate = self._throttled.popleft()
            if not gate.triggered:
                gate.succeed()
        if self.dirty_bytes == 0:
            while self._sync_waiters:
                waiter = self._sync_waiters.popleft()
                if not waiter.triggered:
                    waiter.succeed()

    def sync(self) -> Event:
        """Event that fires when all dirty data has reached the platter."""
        ev = Event(self.sim)
        if self.dirty_bytes == 0:
            ev.succeed()
        else:
            self._sync_waiters.append(ev)
        return ev
