"""Network Block Device over sockets and QPIP (paper §4.2.3)."""

from .client import (DEFAULT_REQUEST, DEFAULT_TOTAL, NbdPhaseResult,
                     NbdQpipClient, NbdSocketClient)
from .disk import DiskModel
from .protocol import NBDCommand, NBDNegotiation, NBDReply, NBDRequest
from .server import NBD_PORT, qpip_nbd_server, socket_nbd_server

__all__ = [
    "DEFAULT_REQUEST", "DEFAULT_TOTAL", "NbdPhaseResult", "NbdQpipClient",
    "NbdSocketClient", "DiskModel", "NBDCommand", "NBDNegotiation",
    "NBDReply", "NBDRequest",
    "NBD_PORT", "qpip_nbd_server", "socket_nbd_server",
]
