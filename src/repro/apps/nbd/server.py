"""NBD servers: the user-level application exporting a (cached) disk.

Two variants, as in the paper's Figures 5 and 6: the distribution's
socket server, and the QPIP port ("We modified both to use QPIP").
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from ...core import QPTransport, WROpcode
from ...hoststack import TcpSocket
from ...net.packet import BytesPayload, ZeroPayload
from .disk import DiskModel
from .protocol import (NBDCommand, NBDNegotiation, NBDReply, NBDRequest,
                       NEGOTIATION_LEN, REPLY_LEN, REQUEST_LEN)

NBD_PORT = 10809


def socket_nbd_server(sim, node, disk: DiskModel,
                      port: int = NBD_PORT,
                      export_size: int = 1 << 30) -> Generator:
    """Serve one client over the host stack until DISCONNECT."""
    host = node.host
    lsock = TcpSocket(node.kernel, node.addr)
    lsock.listen(port)
    conn = yield from lsock.accept()
    greeting = NBDNegotiation(export_size)
    yield from conn.send(BytesPayload(greeting.encode()))
    while True:
        raw = yield from conn.recv_exact(REQUEST_LEN)
        request = NBDRequest.decode(raw.to_bytes())
        if request.command is NBDCommand.DISCONNECT:
            conn.close()
            return
        if request.command is NBDCommand.WRITE:
            yield from conn.recv_exact(request.length)
            # Page-cache insertion, then write-behind to the platter.
            yield host.cpu.submit(host.copy_cost(request.length), "fs")
            gate = disk.write(request.length)
            if gate is not None:
                yield gate
            yield from conn.send(BytesPayload(NBDReply(request.handle).encode()))
        else:   # READ: served from the page cache (the 409 MB file is hot)
            yield host.cpu.submit(host.copy_cost(request.length), "fs")
            yield from conn.send(BytesPayload(NBDReply(request.handle).encode()))
            yield from conn.send(ZeroPayload(request.length))


class _QpMessagePump:
    """Receive-buffer ring + send-credit tracking for a verbs app."""

    def __init__(self, iface, qp, cq, recv_bufs, max_sends: int):
        self.iface = iface
        self.qp = qp
        self.cq = cq
        self.posted = deque(recv_bufs)      # buffers in posting order
        self.inbox = deque()                # (cqe, buffer) ready to consume
        self.sends_inflight = 0
        self.max_sends = max_sends
        self.peer_gone = False

    def pump_once(self) -> Generator:
        cqes = yield from self.iface.wait(self.cq)
        for cqe in cqes:
            if cqe.opcode is WROpcode.RECV:
                if not cqe.ok:
                    self.peer_gone = True
                    continue
                self.inbox.append((cqe, self.posted.popleft()))
            else:
                self.sends_inflight -= 1
                if not cqe.ok:
                    self.peer_gone = True

    def get_message(self) -> Generator:
        """Yield the next received message as (cqe, buffer), or None."""
        while not self.inbox:
            if self.peer_gone:
                return None
            yield from self.pump_once()
        return self.inbox.popleft()

    def recycle(self, buf) -> Generator:
        yield from self.iface.post_recv(self.qp, [buf.sge()])
        self.posted.append(buf)

    def send(self, sge) -> Generator:
        while self.sends_inflight >= self.max_sends:
            yield from self.pump_once()
            if self.peer_gone:
                return
        yield from self.iface.post_send(self.qp, [sge])
        self.sends_inflight += 1


def qpip_nbd_server(sim, node, disk: DiskModel, port: int = NBD_PORT,
                    pool_buffers: int = 32, buf_size: int = 16 * 1024
                    ) -> Generator:
    """Serve one client over QPIP verbs until DISCONNECT.

    "Integrating the QP interface into NBD was straightforward and proved
    simpler than the socket implementation" (§4.2.3) — note the absence
    of kernel-socket wrappers below.
    """
    iface = node.iface
    host = node.host
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                    max_send_wr=64, max_recv_wr=pool_buffers + 4)
    recv_bufs = []
    for _ in range(pool_buffers):
        buf = yield from iface.register_memory(buf_size)
        yield from iface.post_recv(qp, [buf.sge()])
        recv_bufs.append(buf)
    reply_buf = yield from iface.register_memory(4096)
    data_buf = yield from iface.register_memory(buf_size)   # never written:
    # stays an implicit-zero page run, so bulk reads cost O(messages)
    listener = yield from iface.listen(port)
    yield from iface.accept(listener, qp)
    max_msg = node.firmware.endpoints[qp.qp_num].conn.max_message
    chunk = min(max_msg, buf_size)
    pump = _QpMessagePump(iface, qp, cq, recv_bufs, max_sends=32)
    reply_buf.write(NBDNegotiation(1 << 30).encode())
    yield from pump.send(reply_buf.sge(0, NEGOTIATION_LEN))

    while True:
        msg = yield from pump.get_message()
        if msg is None:
            return
        cqe, buf = msg
        request = NBDRequest.decode(buf.read(REQUEST_LEN))
        yield from pump.recycle(buf)
        if request.command is NBDCommand.DISCONNECT:
            yield from iface.disconnect(qp)
            return
        if request.command is NBDCommand.WRITE:
            remaining = request.length
            while remaining > 0:
                msg = yield from pump.get_message()
                if msg is None:
                    return
                dcqe, dbuf = msg
                remaining -= dcqe.byte_len
                yield from pump.recycle(dbuf)
            yield host.cpu.submit(host.copy_cost(request.length), "fs")
            gate = disk.write(request.length)
            if gate is not None:
                yield gate
            reply_buf.write(NBDReply(request.handle).encode())
            yield from pump.send(reply_buf.sge(0, REPLY_LEN))
        else:   # READ from the page cache
            yield host.cpu.submit(host.copy_cost(request.length), "fs")
            reply_buf.write(NBDReply(request.handle).encode())
            yield from pump.send(reply_buf.sge(0, REPLY_LEN))
            remaining = request.length
            while remaining > 0:
                n = min(chunk, remaining)
                yield from pump.send(data_buf.sge(0, n))
                remaining -= n
