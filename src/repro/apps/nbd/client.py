"""NBD clients: the kernel block-device driver side.

The benchmark workload is the paper's (§4.2.3): a 409 MB *sequential*
read and write through an ext2-like block layer.  Filesystem costs
(block mapping, page-cache management, bio completion) charge the client
CPU per request and per byte — "the raw CPU utilization during the
benchmark is at least 26% for filesystem processing" on every system.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Generator, Optional

from ...core import QPTransport, WROpcode
from ...hoststack import TcpSocket
from ...net.addresses import Endpoint
from ...net.packet import BytesPayload, ZeroPayload, concat
from ...units import MB, to_mb_per_sec
from .protocol import (NBDCommand, NBDNegotiation, NBDReply, NBDRequest,
                       NEGOTIATION_LEN, REPLY_LEN, REQUEST_LEN)

DEFAULT_TOTAL = 409 * MB
DEFAULT_REQUEST = 128 * 1024     # block-layer merge/readahead unit

# Filesystem cost model (ext2 + buffer cache on the 550 MHz client).
FS_PER_REQUEST = 20.0            # block mapping, request setup/completion
FS_PER_BYTE = 1 / 250.0          # page-cache handling of the data


@dataclass
class NbdPhaseResult:
    """One benchmark phase (sequential read or write)."""

    op: str
    bytes_moved: int
    elapsed_us: float
    client_cpu_busy_us: float
    fs_cpu_busy_us: float

    @property
    def mb_per_sec(self) -> float:
        return to_mb_per_sec(self.bytes_moved / self.elapsed_us)

    @property
    def cpu_effectiveness(self) -> float:
        """MBytes transferred per CPU-second (Figure 7's second axis)."""
        if self.client_cpu_busy_us <= 0:
            return 0.0
        return (self.bytes_moved / MB) / (self.client_cpu_busy_us / 1e6)

    @property
    def cpu_utilization(self) -> float:
        return self.client_cpu_busy_us / self.elapsed_us if self.elapsed_us else 0.0


class _PhaseClock:
    """Shared CPU-accounting bracket for one phase."""

    def __init__(self, node):
        self.node = node

    def start(self, sim):
        self.node.host.reset_cpu_stats()
        self.t0 = sim.now

    def result(self, sim, op, nbytes) -> NbdPhaseResult:
        busy = self.node.host.cpu.busy_time
        fs = self.node.host.cpu.busy_by_category.get("fs", 0.0)
        return NbdPhaseResult(op, nbytes, sim.now - self.t0, busy, fs)


class NbdSocketClient:
    """The in-kernel socket NBD driver (Figure 5's layering)."""

    def __init__(self, node, server_addr, port: int):
        self.node = node
        self.sim = node.host.sim
        self.host = node.host
        self.server = Endpoint(server_addr, port)
        self.sock: Optional[TcpSocket] = None
        self._handles = itertools.count(1)

    def connect(self) -> Generator:
        self.sock = TcpSocket(self.node.kernel, self.node.addr, in_kernel=True)
        yield from self.sock.connect(self.server)
        raw = yield from self.sock.recv_exact(NEGOTIATION_LEN)
        self.negotiation = NBDNegotiation.decode(raw.to_bytes())

    def _fs_charge(self, nbytes: int) -> Generator:
        yield self.host.cpu.submit(FS_PER_REQUEST + nbytes * FS_PER_BYTE, "fs")

    def run_phase(self, op: str, total_bytes: int = DEFAULT_TOTAL,
                  request_size: int = DEFAULT_REQUEST) -> Generator:
        clock = _PhaseClock(self.node)
        clock.start(self.sim)
        if op == "write":
            yield from self._write_phase(total_bytes, request_size)
        else:
            yield from self._read_phase(total_bytes, request_size)
        return clock.result(self.sim, op, total_bytes)

    def _write_phase(self, total_bytes: int, request_size: int) -> Generator:
        """Flush-driven writes: one request outstanding, and each byte
        crosses the client's buffer cache (dirty + writeback)."""
        offset = 0
        while offset < total_bytes:
            length = min(request_size, total_bytes - offset)
            handle = next(self._handles)
            yield from self._fs_charge(length)
            yield self.host.cpu.submit(1.5 * self.host.copy_cost(length), "fs")
            request = NBDRequest(NBDCommand.WRITE, handle, offset, length)
            yield from self.sock.send(BytesPayload(request.encode()))
            yield from self.sock.send(ZeroPayload(length))
            raw = yield from self.sock.recv_exact(REPLY_LEN)
            NBDReply.decode(raw.to_bytes())
            offset += length

    def _read_phase(self, total_bytes: int, request_size: int) -> Generator:
        """Sequential reads with readahead: the block layer keeps one
        request ahead of the consumer (QD=2)."""
        issue_offset = 0

        def issue() -> Generator:
            nonlocal issue_offset
            length = min(request_size, total_bytes - issue_offset)
            handle = next(self._handles)
            yield from self._fs_charge(length)
            request = NBDRequest(NBDCommand.READ, handle, issue_offset, length)
            yield from self.sock.send(BytesPayload(request.encode()))
            issue_offset += length
            return length

        pending = []
        pending.append((yield from issue()))
        consumed = 0
        while consumed < total_bytes:
            if issue_offset < total_bytes:
                pending.append((yield from issue()))
            length = pending.pop(0)
            raw = yield from self.sock.recv_exact(REPLY_LEN)
            NBDReply.decode(raw.to_bytes())
            yield from self.sock.recv_exact(length)
            consumed += length

    def disconnect(self) -> Generator:
        request = NBDRequest(NBDCommand.DISCONNECT, 0, 0, 0)
        yield from self.sock.send(BytesPayload(request.encode()))
        self.sock.close()


class NbdQpipClient:
    """The QPIP NBD driver (Figure 6): the QP replaces the kernel socket."""

    def __init__(self, node, server_addr, port: int,
                 pool_buffers: int = 32, buf_size: int = 16 * 1024):
        self.node = node
        self.sim = node.host.sim
        self.host = node.host
        self.iface = node.iface
        self.server = Endpoint(server_addr, port)
        self.pool_buffers = pool_buffers
        self.buf_size = buf_size
        self._handles = itertools.count(1)

    def connect(self) -> Generator:
        iface = self.iface
        self.cq = yield from iface.create_cq()
        self.qp = yield from iface.create_qp(
            QPTransport.TCP, self.cq, max_send_wr=64,
            max_recv_wr=self.pool_buffers + 4)
        recv_bufs = []
        for _ in range(self.pool_buffers):
            buf = yield from iface.register_memory(self.buf_size)
            yield from iface.post_recv(self.qp, [buf.sge()])
            recv_bufs.append(buf)
        self.req_buf = yield from iface.register_memory(4096)
        self.data_buf = yield from iface.register_memory(self.buf_size)
        yield from iface.connect(self.qp, self.server)
        ep = self.node.firmware.endpoints[self.qp.qp_num]
        self.chunk = min(ep.conn.max_message, self.buf_size)
        from .server import _QpMessagePump
        self.pump = _QpMessagePump(iface, self.qp, self.cq, recv_bufs,
                                   max_sends=32)
        msg = yield from self.pump.get_message()
        cqe, buf = msg
        self.negotiation = NBDNegotiation.decode(buf.read(cqe.byte_len))
        yield from self.pump.recycle(buf)

    def _fs_charge(self, nbytes: int) -> Generator:
        yield self.host.cpu.submit(FS_PER_REQUEST + nbytes * FS_PER_BYTE, "fs")

    def run_phase(self, op: str, total_bytes: int = DEFAULT_TOTAL,
                  request_size: int = DEFAULT_REQUEST) -> Generator:
        clock = _PhaseClock(self.node)
        clock.start(self.sim)
        if op == "write":
            yield from self._write_phase(total_bytes, request_size)
        else:
            yield from self._read_phase(total_bytes, request_size)
        return clock.result(self.sim, op, total_bytes)

    def _write_phase(self, total_bytes: int, request_size: int) -> Generator:
        offset = 0
        while offset < total_bytes:
            length = min(request_size, total_bytes - offset)
            handle = next(self._handles)
            yield from self._fs_charge(length)
            yield self.host.cpu.submit(1.5 * self.host.copy_cost(length), "fs")
            request = NBDRequest(NBDCommand.WRITE, handle, offset, length)
            self.req_buf.write(request.encode())
            yield from self.pump.send(self.req_buf.sge(0, REQUEST_LEN))
            remaining = length
            while remaining > 0:
                n = min(self.chunk, remaining)
                yield from self.pump.send(self.data_buf.sge(0, n))
                remaining -= n
            msg = yield from self.pump.get_message()
            cqe, buf = msg
            NBDReply.decode(buf.read(REPLY_LEN))
            yield from self.pump.recycle(buf)
            offset += length

    def _read_phase(self, total_bytes: int, request_size: int) -> Generator:
        issue_offset = 0

        def issue() -> Generator:
            nonlocal issue_offset
            length = min(request_size, total_bytes - issue_offset)
            handle = next(self._handles)
            yield from self._fs_charge(length)
            request = NBDRequest(NBDCommand.READ, handle, issue_offset, length)
            self.req_buf.write(request.encode())
            yield from self.pump.send(self.req_buf.sge(0, REQUEST_LEN))
            issue_offset += length
            return length

        pending = []
        pending.append((yield from issue()))
        consumed = 0
        while consumed < total_bytes:
            if issue_offset < total_bytes:
                pending.append((yield from issue()))
            length = pending.pop(0)
            msg = yield from self.pump.get_message()
            cqe, buf = msg
            NBDReply.decode(buf.read(REPLY_LEN))
            yield from self.pump.recycle(buf)
            remaining = length
            while remaining > 0:
                msg = yield from self.pump.get_message()
                dcqe, dbuf = msg
                remaining -= dcqe.byte_len
                yield from self.pump.recycle(dbuf)
            consumed += length

    def disconnect(self) -> Generator:
        request = NBDRequest(NBDCommand.DISCONNECT, 0, 0, 0)
        self.req_buf.write(request.encode())
        yield from self.pump.send(self.req_buf.sge(0, REQUEST_LEN))
        yield self.sim.timeout(1000)
        yield from self.iface.disconnect(self.qp)
