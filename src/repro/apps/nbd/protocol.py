"""NBD wire protocol (the Linux Network Block Device, paper §4.2.3).

Classic NBD framing: a 28-byte request (magic, type, handle, offset,
length), write data after write requests, and a 16-byte reply (magic,
error, handle) with data after read replies.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ...errors import NBDError

REQUEST_MAGIC = 0x25609513
REPLY_MAGIC = 0x67446698
REQUEST_LEN = 28
REPLY_LEN = 16

# Oldstyle negotiation (what the Linux 2.4-era nbd shipped): the server
# greets with "NBDMAGIC", a magic number, the export size, and 128
# reserved bytes; total 152 bytes.
INIT_PASSWD = b"NBDMAGIC"
OLDSTYLE_MAGIC = 0x00420281861253
NEGOTIATION_LEN = 152


class NBDCommand(enum.Enum):
    READ = 0
    WRITE = 1
    DISCONNECT = 2


@dataclass(frozen=True)
class NBDRequest:
    command: NBDCommand
    handle: int
    offset: int
    length: int

    def encode(self) -> bytes:
        return struct.pack("!IIQQI", REQUEST_MAGIC, self.command.value,
                           self.handle, self.offset, self.length)

    @classmethod
    def decode(cls, data: bytes) -> "NBDRequest":
        if len(data) < REQUEST_LEN:
            raise NBDError(f"short NBD request: {len(data)} bytes")
        magic, command, handle, offset, length = struct.unpack_from(
            "!IIQQI", data, 0)
        if magic != REQUEST_MAGIC:
            raise NBDError(f"bad NBD request magic {magic:#x}")
        try:
            cmd = NBDCommand(command)
        except ValueError as exc:
            raise NBDError(f"unknown NBD command {command}") from exc
        return cls(cmd, handle, offset, length)


@dataclass(frozen=True)
class NBDNegotiation:
    """The server's greeting: identifies the export and its size."""

    export_size: int
    flags: int = 0

    def encode(self) -> bytes:
        return (INIT_PASSWD + struct.pack("!QQI", OLDSTYLE_MAGIC,
                                          self.export_size, self.flags)
                + bytes(124))

    @classmethod
    def decode(cls, data: bytes) -> "NBDNegotiation":
        if len(data) < NEGOTIATION_LEN:
            raise NBDError(f"short negotiation: {len(data)} bytes")
        if data[:8] != INIT_PASSWD:
            raise NBDError("bad NBD init password")
        magic, size, flags = struct.unpack_from("!QQI", data, 8)
        if magic != OLDSTYLE_MAGIC:
            raise NBDError(f"bad negotiation magic {magic:#x}")
        return cls(size, flags)


@dataclass(frozen=True)
class NBDReply:
    handle: int
    error: int = 0

    def encode(self) -> bytes:
        return struct.pack("!IIQ", REPLY_MAGIC, self.error, self.handle)

    @classmethod
    def decode(cls, data: bytes) -> "NBDReply":
        if len(data) < REPLY_LEN:
            raise NBDError(f"short NBD reply: {len(data)} bytes")
        magic, error, handle = struct.unpack_from("!IIQ", data, 0)
        if magic != REPLY_MAGIC:
            raise NBDError(f"bad NBD reply magic {magic:#x}")
        return cls(handle, error)
