"""A key-value store over QPIP — the classic one-sided-RDMA workload.

The paper's introduction motivates "processor-to-processor" I/O over the
SAN; this is the canonical modern instance.  The server exposes a
registered slot table; clients can GET two ways:

* **two-sided** — a SEND request, served by the server process
  (consumes server CPU per request, like memcached over sockets);
* **one-sided** — an RDMA READ of the hashed slot, "without involving
  the target process" (paper §2.1) — the server's CPU stays idle.

PUTs are always two-sided (the server owns index consistency).

Wire/slot format: each slot is ``[key_len u16][val_len u16][key][value]``
in a registered region of ``slot_count`` fixed-size slots; keys hash to a
slot with bounded linear probing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from ..core import QPTransport, WROpcode
from ..errors import ReproError
from ..mem import Access
from ..net.addresses import Endpoint
from ..sim import Event

SLOT_HDR = 4
PROBE_LIMIT = 4
KV_PORT = 11211

OP_PUT = 1
OP_GET = 2
OP_REPLY = 3
REQ_HDR = 8          # op(1) pad(1) klen(2) vlen(2) pad(2)


def _hash_key(key: bytes, slot_count: int) -> int:
    h = 2166136261
    for b in key:
        h = ((h ^ b) * 16777619) & 0xFFFFFFFF
    return h % slot_count


def _encode_req(op: int, key: bytes, value: bytes = b"") -> bytes:
    return struct.pack("!BxHHxx", op, len(key), len(value)) + key + value


def _decode_req(data: bytes) -> Tuple[int, bytes, bytes]:
    op, klen, vlen = struct.unpack_from("!BxHHxx", data, 0)
    key = data[REQ_HDR:REQ_HDR + klen]
    value = data[REQ_HDR + klen:REQ_HDR + klen + vlen]
    return op, key, value


class SlotTable:
    """The registered server-side table (shared layout with clients)."""

    def __init__(self, buf, slot_count: int, slot_size: int):
        if slot_count <= 0 or slot_size <= SLOT_HDR:
            raise ReproError("bad slot table geometry")
        if buf.length < slot_count * slot_size:
            raise ReproError("buffer too small for the slot table")
        self.buf = buf
        self.slot_count = slot_count
        self.slot_size = slot_size

    def slot_offset(self, index: int) -> int:
        return index * self.slot_size

    def capacity_for_value(self, key: bytes) -> int:
        return self.slot_size - SLOT_HDR - len(key)

    def write_slot(self, index: int, key: bytes, value: bytes) -> None:
        record = struct.pack("!HH", len(key), len(value)) + key + value
        if len(record) > self.slot_size:
            raise ReproError("record exceeds slot size")
        self.buf.write(record, offset=self.slot_offset(index))

    def read_slot_bytes(self, raw: bytes) -> Optional[Tuple[bytes, bytes]]:
        klen, vlen = struct.unpack_from("!HH", raw, 0)
        if klen == 0 and vlen == 0:
            return None
        if SLOT_HDR + klen + vlen > len(raw):
            return None
        return (raw[SLOT_HDR:SLOT_HDR + klen],
                raw[SLOT_HDR + klen:SLOT_HDR + klen + vlen])

    def find_slot(self, key: bytes, for_insert: bool) -> Optional[int]:
        base = _hash_key(key, self.slot_count)
        for probe in range(PROBE_LIMIT):
            index = (base + probe) % self.slot_count
            raw = self.buf.read(self.slot_size, offset=self.slot_offset(index))
            entry = self.read_slot_bytes(raw)
            if entry is None:
                return index if for_insert else None
            if entry[0] == key:
                return index
        return None if not for_insert else None


@dataclass
class KvStats:
    puts: int = 0
    gets_two_sided: int = 0
    gets_one_sided: int = 0
    misses: int = 0
    reconnects: int = 0      # server: connections served after the first


class KvServer:
    """Runs on the server node; owns the slot table."""

    def __init__(self, node, slot_count: int = 256, slot_size: int = 256,
                 port: int = KV_PORT):
        self.node = node
        self.iface = node.iface
        self.host = node.host
        self.slot_count = slot_count
        self.slot_size = slot_size
        self.port = port
        self.stats = KvStats()
        self.table: Optional[SlotTable] = None
        self.table_rkey: Optional[int] = None
        self.table_addr: Optional[int] = None
        self.ready = Event(node.host.sim)

    def run(self, max_clients: int = 1) -> Generator:
        """Serve ``max_clients`` concurrent clients (one worker each)."""
        iface = self.iface
        table_buf = yield from iface.register_memory(
            self.slot_count * self.slot_size,
            access=Access.local() | Access.REMOTE_READ)
        self.table = SlotTable(table_buf, self.slot_count, self.slot_size)
        self.table_rkey = table_buf.lkey
        self.table_addr = table_buf.addr
        listener = yield from iface.listen(self.port)
        self.ready.succeed((self.table_addr, self.table_rkey,
                            self.slot_count, self.slot_size))
        sim = self.host.sim
        workers = []
        for _ in range(max_clients):
            workers.append(sim.process(self._serve_one(listener)))
        for w in workers:
            yield w

    def _serve_one(self, listener) -> Generator:
        """Resilient worker: serve connections forever.  A client that
        dies (or is killed by chaos) just means a fresh QP and another
        accept — the slot table and stats persist across connections."""
        while True:
            yield from self._serve_conn(listener)
            self.stats.reconnects += 1

    def _serve_conn(self, listener) -> Generator:
        """Accept one connection and serve it until it goes away."""
        iface = self.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, rdma=True,
                                        max_recv_wr=64)
        recv_bufs = []
        for _ in range(16):
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            recv_bufs.append(buf)
        reply_buf = yield from iface.register_memory(4096)
        yield from iface.accept(listener, qp)

        from .nbd.server import _QpMessagePump
        pump = _QpMessagePump(iface, qp, cq, recv_bufs, max_sends=16)
        while True:
            msg = yield from pump.get_message()
            if msg is None:
                return
            cqe, buf = msg
            op, key, value = _decode_req(buf.read(cqe.byte_len))
            yield from pump.recycle(buf)
            if op == OP_PUT:
                # Index maintenance costs server CPU (the two-sided half).
                yield self.host.cpu.submit_wait(2.0, "kv-server")
                slot = self.table.find_slot(key, for_insert=True)
                if slot is None:
                    reply = _encode_req(OP_REPLY, b"", b"ERR")
                else:
                    self.table.write_slot(slot, key, value)
                    reply = _encode_req(OP_REPLY, b"", b"OK")
                self.stats.puts += 1
            elif op == OP_GET:
                yield self.host.cpu.submit_wait(2.0, "kv-server")
                self.stats.gets_two_sided += 1
                slot = self.table.find_slot(key, for_insert=False)
                if slot is None:
                    self.stats.misses += 1
                    reply = _encode_req(OP_REPLY, b"", b"")
                else:
                    raw = self.table.buf.read(
                        self.slot_size, offset=self.table.slot_offset(slot))
                    _k, v = self.table.read_slot_bytes(raw)
                    reply = _encode_req(OP_REPLY, b"", v)
            else:
                raise ReproError(f"bad kv opcode {op}")
            reply_buf.write(reply)
            yield from pump.send(reply_buf.sge(0, len(reply)))


class KvClient:
    """Client handle: two-sided PUT/GET plus one-sided RDMA GET."""

    def __init__(self, node, server_addr, port: int = KV_PORT):
        self.node = node
        self.iface = node.iface
        self.sim = node.host.sim
        self.server = Endpoint(server_addr, port)
        self.stats = KvStats()

    def connect(self, table_info) -> Generator:
        (self.table_addr, self.table_rkey, self.slot_count,
         self.slot_size) = table_info
        iface = self.iface
        self.cq = yield from iface.create_cq()
        self.qp = yield from iface.create_qp(QPTransport.TCP, self.cq,
                                             rdma=True, max_recv_wr=32)
        self.recv_bufs = []
        for _ in range(8):
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(self.qp, [buf.sge()])
            self.recv_bufs.append(buf)
        self.req_buf = yield from iface.register_memory(4096)
        self.sink_buf = yield from iface.register_memory(
            max(4096, self.slot_size))
        yield from iface.connect(self.qp, self.server)
        from .nbd.server import _QpMessagePump
        self.pump = _QpMessagePump(iface, self.qp, self.cq, self.recv_bufs,
                                   max_sends=8)

    def _rpc(self, request: bytes) -> Generator:
        self.req_buf.write(request)
        yield from self.pump.send(self.req_buf.sge(0, len(request)))
        msg = yield from self.pump.get_message()
        if msg is None:
            raise ReproError("kv server went away")
        cqe, buf = msg
        _op, _key, value = _decode_req(buf.read(cqe.byte_len))
        yield from self.pump.recycle(buf)
        return value

    def put(self, key: bytes, value: bytes) -> Generator:
        reply = yield from self._rpc(_encode_req(OP_PUT, key, value))
        self.stats.puts += 1
        if reply != b"OK":
            raise ReproError(f"PUT failed: {reply!r}")

    def get(self, key: bytes) -> Generator:
        """Two-sided GET through the server process."""
        value = yield from self._rpc(_encode_req(OP_GET, key))
        self.stats.gets_two_sided += 1
        if not value:
            self.stats.misses += 1
            return None
        return value

    def get_rdma(self, key: bytes) -> Generator:
        """One-sided GET: read the hashed slots directly, probe locally.

        The server process never runs — its CPU cost for this operation
        is exactly zero.
        """
        table = SlotTable(self.sink_buf, 1, self.slot_size)  # reader helper
        base = _hash_key(key, self.slot_count)
        for probe in range(PROBE_LIMIT):
            index = (base + probe) % self.slot_count
            remote = self.table_addr + index * self.slot_size
            yield from self.iface.post_rdma_read(
                self.qp, self.sink_buf.sge(0, self.slot_size),
                remote_addr=remote, rkey=self.table_rkey)
            # Wait for the READ completion (reads complete on placement).
            got = False
            while not got:
                cqes = yield from self.iface.wait(self.cq)
                for cqe in cqes:
                    if cqe.opcode is WROpcode.RDMA_READ:
                        got = True
                    elif cqe.opcode is WROpcode.RECV:
                        self.pump.inbox.append(
                            (cqe, self.pump.posted.popleft()))
            raw = self.sink_buf.read(self.slot_size)
            entry = table.read_slot_bytes(raw)
            if entry is None:
                break
            if entry[0] == key:
                self.stats.gets_one_sided += 1
                return entry[1]
        self.stats.misses += 1
        return None

    def disconnect(self) -> Generator:
        yield from self.iface.disconnect(self.qp)


class FailoverKvClient:
    """KV client with automatic reconnect and replica failover.

    ``replicas`` is a list of ``(node_addr, port, table_info)`` — one
    independent :class:`KvServer` each.  Semantics under failure:

    * :meth:`put` is written to **every** replica (client-side
      replication) and retried per replica until it sticks, so any
      replica can serve any successfully-completed key afterwards.
      PUTs are idempotent (same key, same value), which makes blind
      replay after an ambiguous failure safe.
    * :meth:`get` / :meth:`get_rdma` try the preferred replica and fail
      over around the ring on connection errors or an ``op_timeout``
      (a stalled server is indistinguishable from a dead one).
    * Every failure path tears the broken QP down via
      ``firmware.abort_qp`` — no half-open connections are left behind.

    Retries follow a :class:`~repro.recovery.RetryPolicy`; the failover
    trace (``.trace``) is deterministic per seed.
    """

    def __init__(self, node, replicas, policy=None, rng=None,
                 op_timeout: float = 200_000.0):
        from ..recovery import RetryPolicy
        self.node = node
        self.sim = node.host.sim
        self.replicas = list(replicas)
        if not self.replicas:
            raise ReproError("failover client needs at least one replica")
        self.policy = policy or RetryPolicy(max_attempts=12)
        self.rng = rng
        self.op_timeout = op_timeout
        self._clients: dict = {}        # replica index -> connected KvClient
        self.preferred = 0
        self.stats = KvStats()
        self.failovers = 0
        self.reconnects = 0
        self.op_attempts = 0
        self.trace = []                 # deterministic failover trace

    # -- connection management ----------------------------------------------

    def _ensure(self, i: int) -> Generator:
        client = self._clients.get(i)
        if client is not None:
            return client
        addr, port, info = self.replicas[i]
        client = KvClient(self.node, addr, port=port)
        yield from self._bounded(client.connect(info), "connect")
        self._clients[i] = client
        self.reconnects += 1
        return client

    def _abandon(self, i: int) -> None:
        client = self._clients.pop(i, None)
        if client is not None and getattr(client, "qp", None) is not None:
            self.node.firmware.abort_qp(client.qp)

    def _bounded(self, gen, what: str) -> Generator:
        """Run ``gen`` with the op deadline; a hung op becomes a loud,
        retryable failure instead of a stuck client."""
        from ..sim import AnyOf
        proc = self.sim.process(gen)
        yield AnyOf(self.sim, [proc, self.sim.timeout(self.op_timeout)])
        if not proc.triggered:
            raise ReproError(f"kv {what} timed out after "
                             f"{self.op_timeout:g}us")
        if not proc.ok:
            raise proc.value
        return proc.value

    def _run_on(self, i: int, op_factory, what: str) -> Generator:
        """Retry one operation against one replica until it succeeds or
        the retry budget runs out."""
        from ..errors import RetryBudgetExhausted
        started = self.sim.now
        attempts = 0
        last: Optional[Exception] = None
        for delay in self.policy.delays(self.rng):
            if delay > 0:
                yield self.sim.timeout(delay)
            if self.policy.deadline is not None and attempts > 0 \
                    and self.sim.now - started >= self.policy.deadline:
                break
            attempts += 1
            self.op_attempts += 1
            try:
                client = yield from self._ensure(i)
                result = yield from self._bounded(op_factory(client), what)
                return result
            except ReproError as exc:
                last = exc
                self._abandon(i)
                self.trace.append(f"{self.sim.now:.1f}:retry:{what}:r{i}")
        raise RetryBudgetExhausted(
            f"kv {what} on replica {i} failed after {attempts} attempts "
            f"(last: {last})", attempts=attempts,
            elapsed=self.sim.now - started)

    # -- operations ----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Generator:
        """Replicated PUT: sticks on every replica before returning."""
        for i in range(len(self.replicas)):
            yield from self._run_on(i, lambda c: c.put(key, value), "put")
        self.stats.puts += 1

    def _get_with_failover(self, op_factory, what: str) -> Generator:
        from ..errors import RetryBudgetExhausted
        started = self.sim.now
        attempts = 0
        last: Optional[Exception] = None
        for delay in self.policy.delays(self.rng):
            if delay > 0:
                yield self.sim.timeout(delay)
            if self.policy.deadline is not None and attempts > 0 \
                    and self.sim.now - started >= self.policy.deadline:
                break
            attempts += 1
            self.op_attempts += 1
            i = self.preferred
            try:
                client = yield from self._ensure(i)
                result = yield from self._bounded(op_factory(client), what)
                return result
            except ReproError as exc:
                last = exc
                self._abandon(i)
                self.preferred = (i + 1) % len(self.replicas)
                self.failovers += 1
                self.trace.append(f"{self.sim.now:.1f}:failover:r{i}")
        raise RetryBudgetExhausted(
            f"kv {what} failed on every replica after {attempts} attempts "
            f"(last: {last})", attempts=attempts,
            elapsed=self.sim.now - started)

    def get(self, key: bytes) -> Generator:
        value = yield from self._get_with_failover(
            lambda c: c.get(key), "get")
        self.stats.gets_two_sided += 1
        if value is None:
            self.stats.misses += 1
        return value

    def get_rdma(self, key: bytes) -> Generator:
        value = yield from self._get_with_failover(
            lambda c: c.get_rdma(key), "get_rdma")
        self.stats.gets_one_sided += 1
        if value is None:
            self.stats.misses += 1
        return value

    def get_any(self, key: bytes) -> Generator:
        """Scan the replica ring until some replica has the key (covers
        reads racing an in-progress replicated PUT)."""
        for step in range(len(self.replicas)):
            i = (self.preferred + step) % len(self.replicas)
            try:
                client = yield from self._ensure(i)
                value = yield from self._bounded(client.get(key), "get_any")
            except ReproError:
                self._abandon(i)
                self.trace.append(f"{self.sim.now:.1f}:scan-skip:r{i}")
                continue
            if value is not None:
                return value
        self.stats.misses += 1
        return None

    def close(self) -> Generator:
        for i in list(self._clients):
            client = self._clients.pop(i)
            try:
                yield from client.disconnect()
            except ReproError:
                pass
