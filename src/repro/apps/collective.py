"""Parallel-computing collectives over QPIP.

The paper sits in the Active Messages / U-Net lineage (its §2.1 cites
both): the SAN's original customers were parallel programs.  This module
implements the classic **ring allreduce** over queue pairs — N−1
pipelined neighbour exchanges — plus a simple **barrier** built from the
same ring.

Vectors are float64 arrays carried in registered buffers; the reduction
is a real elementwise sum, so tests can check numerical results, not
just message counts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from ..core import QPState, QPTransport, WROpcode
from ..errors import ReproError
from ..net.addresses import Endpoint
from ..sim import Event

COLLECTIVE_PORT = 12000
ELEM = 8            # float64


def _pack(values: Sequence[float]) -> bytes:
    return struct.pack(f"!{len(values)}d", *values)


def _unpack(raw: bytes) -> List[float]:
    n = len(raw) // ELEM
    return list(struct.unpack(f"!{n}d", raw[:n * ELEM]))


@dataclass
class CollectiveStats:
    steps: int = 0
    bytes_sent: int = 0
    wall_time_us: float = 0.0


class RingMember:
    """One rank in a ring collective.

    Wiring: rank i accepts a connection from rank i-1 and connects to
    rank i+1 (mod N).  Data flows around the ring; each rank overlaps a
    receive from its left neighbour with a send to its right.
    """

    def __init__(self, node, rank: int, world: List, port: int = COLLECTIVE_PORT):
        self.node = node
        self.iface = node.iface
        self.sim = node.host.sim
        self.rank = rank
        self.world = world            # list of node records (addr used)
        self.port = port
        self.stats = CollectiveStats()
        self._ready = Event(self.sim)

    @property
    def size(self) -> int:
        return len(self.world)

    def setup(self) -> Generator:
        """Establish the ring links (call as a process on every rank)."""
        iface = self.iface
        self.cq = yield from iface.create_cq()
        right = (self.rank + 1) % self.size
        # Receive resources for the inbound (left-neighbour) link.
        self.in_qp = yield from iface.create_qp(QPTransport.TCP, self.cq,
                                                max_recv_wr=64)
        self.recv_bufs = []
        for _ in range(8):
            buf = yield from iface.register_memory(16 * 1024)
            yield from iface.post_recv(self.in_qp, [buf.sge()])
            self.recv_bufs.append(buf)
        # Two send buffers, alternated: a buffer belongs to the NIC until
        # its WR completes (verbs ownership rule).
        self.send_bufs = []
        for _ in range(2):
            buf = yield from iface.register_memory(16 * 1024)
            self.send_bufs.append(buf)
        self._send_idx = 0
        listener = yield from iface.listen(self.port)
        # Connect to the right neighbour while accepting from the left.
        self.out_qp = yield from iface.create_qp(QPTransport.TCP, self.cq)
        accept_done = {}

        def acceptor():
            yield from iface.accept(listener, self.in_qp)
            accept_done["ok"] = True

        acc = self.sim.process(acceptor())
        yield self.sim.timeout(1000 + 100 * self.rank)
        yield from iface.connect(self.out_qp,
                                 Endpoint(self.world[right].addr, self.port))
        yield acc
        if not accept_done.get("ok"):
            raise ReproError(f"rank {self.rank}: ring accept failed")
        from .nbd.server import _QpMessagePump
        self.pump = _QpMessagePump(self.iface, self.in_qp, self.cq,
                                   self.recv_bufs, max_sends=16)
        self._ready.succeed()

    def _send_right(self, data: bytes) -> Generator:
        buf = self.send_bufs[self._send_idx]
        self._send_idx = 1 - self._send_idx
        buf.write(data)
        # Sends go on out_qp; the pump tracks completions on the shared CQ.
        while self.pump.sends_inflight >= 2:
            yield from self.pump.pump_once()
        yield from self.iface.post_send(self.out_qp,
                                        [buf.sge(0, len(data))])
        self.pump.sends_inflight += 1
        self.stats.bytes_sent += len(data)

    def _recv_left(self) -> Generator:
        msg = yield from self.pump.get_message()
        if msg is None:
            raise ReproError(f"rank {self.rank}: ring broken")
        cqe, buf = msg
        data = buf.read(cqe.byte_len)
        yield from self.pump.recycle(buf)
        return data

    # -- collectives ---------------------------------------------------------

    def allreduce(self, values: Sequence[float]) -> Generator:
        """Ring allreduce (sum).  Returns the reduced vector.

        Each rank circulates *original contributions*: every step it
        forwards the vector it received last step (starting with its own)
        and adds the incoming one.  After N−1 steps every rank has added
        every contribution exactly once.  (Bandwidth-optimal chunked
        reduce-scatter/allgather is a straightforward extension; latency
        behaviour — the SAN concern — is identical.)
        """
        t0 = self.sim.now
        acc = list(values)
        outgoing = list(values)
        for _step in range(self.size - 1):
            yield from self._send_right(_pack(outgoing))
            incoming = _unpack((yield from self._recv_left()))
            if len(incoming) != len(acc):
                raise ReproError("allreduce size mismatch")
            acc = [a + b for a, b in zip(acc, incoming)]
            outgoing = incoming
            self.stats.steps += 1
        self.stats.wall_time_us += self.sim.now - t0
        return acc

    def barrier(self) -> Generator:
        """Two trips of a 1-byte token around the ring."""
        t0 = self.sim.now
        for _round in range(2):
            if self.rank == 0:
                yield from self._send_right(b"B")
                yield from self._recv_left()
            else:
                yield from self._recv_left()
                yield from self._send_right(b"B")
            self.stats.steps += 1
        self.stats.wall_time_us += self.sim.now - t0

    def shutdown(self) -> Generator:
        yield from self.iface.disconnect(self.out_qp)


def build_ring(nodes, port: int = COLLECTIVE_PORT) -> List[RingMember]:
    """Create a RingMember per node (nodes from ``build_qpip_cluster``-style
    records exposing ``.iface``/``.host``/``.addr``)."""
    return [RingMember(node, rank, nodes, port) for rank, node in
            enumerate(nodes)]
