"""UDP blast: best-effort datagram streaming.

Paper §3: "For best effort datagrams using UDP ... As soon as a UDP
message is sent, the associated send WR is marked as complete."  No
acknowledgements, no flow control: when the sender outruns the receiver,
datagrams die — this app measures goodput and loss, the datagram
counterpart of ttcp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..core import QPTransport, WROpcode
from ..hoststack import UdpSocket
from ..net.addresses import Endpoint
from ..net.packet import ZeroPayload
from ..sim import Simulator
from ..units import to_mb_per_sec

PORT = 5020


@dataclass
class BlastResult:
    sent: int
    received: int
    payload_bytes: int
    elapsed_us: float

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def goodput_mb_per_sec(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return to_mb_per_sec(self.received * self.payload_bytes
                             / self.elapsed_us)


def socket_udp_blast(sim: Simulator, client_node, server_node,
                     datagrams: int = 500, size: int = 1400,
                     interval_us: float = 20.0) -> BlastResult:
    """Paced datagram stream over the host stack."""
    state = {"received": 0, "t_first": None, "t_last": None}

    def server():
        sock = UdpSocket(server_node.kernel, server_node.addr)
        sock.bind(PORT)
        while True:
            dg = yield from sock.recvfrom()
            if state["t_first"] is None:
                state["t_first"] = sim.now
            state["t_last"] = sim.now
            state["received"] += 1
            if dg.payload.length == 0:      # end marker
                return

    def client():
        sock = UdpSocket(client_node.kernel, client_node.addr)
        sock.bind()
        dst = Endpoint(server_node.addr, PORT)
        yield sim.timeout(100)
        for _ in range(datagrams):
            yield from sock.sendto(dst, ZeroPayload(size))
            yield sim.timeout(interval_us)
        for _ in range(3):                  # end markers (best effort!)
            yield from sock.sendto(dst, ZeroPayload(0))
            yield sim.timeout(1000)

    sp = sim.process(server())
    cp = sim.process(client())
    sim.run(until=sim.now + 120_000_000)
    if not cp.triggered or not cp.ok:
        raise RuntimeError("udp blast client failed")
    received = max(0, state["received"] - 1)   # don't count the marker
    elapsed = (state["t_last"] or 0) - (state["t_first"] or 0)
    return BlastResult(datagrams, received, size, max(1.0, elapsed))


def qpip_udp_blast(sim: Simulator, client_node, server_node,
                   datagrams: int = 500, size: int = 1400,
                   interval_us: float = 20.0,
                   recv_buffers: int = 32,
                   app_delay_us: float = 0.0) -> BlastResult:
    """Paced datagram stream over UDP queue pairs.

    ``app_delay_us`` models a slow consumer: the receive WR is reposted
    only after that much per-datagram application work, so a small WR
    pool drains and the NIC drops (best-effort, paper §3).
    """
    state = {"received": 0, "t_first": None, "t_last": None, "done": False}

    def server():
        iface = server_node.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.UDP, cq,
                                        max_recv_wr=recv_buffers + 4)
        bufs = []
        for _ in range(recv_buffers):
            buf = yield from iface.register_memory(max(size, 2048))
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        yield from iface.bind_udp(qp, PORT)
        ring = 0
        while not state["done"]:
            cqes = yield from iface.wait(cq)
            for cqe in cqes:
                if cqe.opcode is not WROpcode.RECV:
                    continue
                if state["t_first"] is None:
                    state["t_first"] = sim.now
                state["t_last"] = sim.now
                if cqe.byte_len == 0:
                    state["done"] = True
                else:
                    state["received"] += 1
                if app_delay_us:
                    yield sim.timeout(app_delay_us)
                yield from iface.post_recv(qp, [bufs[ring].sge()])
                ring = (ring + 1) % len(bufs)

    def client():
        iface = client_node.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.UDP, cq,
                                        max_send_wr=64)
        buf = yield from iface.register_memory(max(size, 2048))
        yield from iface.bind_udp(qp)
        dst = Endpoint(server_node.addr, PORT)
        yield sim.timeout(1000)
        inflight = 0
        for _ in range(datagrams):
            yield from iface.post_send(qp, [buf.sge(0, size)], dest=dst)
            inflight += 1
            if inflight >= 16:          # reap completions in batches
                cqes = yield from iface.wait(cq)
                inflight -= len(cqes)
            yield sim.timeout(interval_us)
        for _ in range(3):
            yield from iface.post_send(qp, [buf.sge(0, 0)], dest=dst)
            yield sim.timeout(1000)
        while inflight > 0:
            cqes = yield from iface.wait(cq)
            inflight -= len(cqes)

    sp = sim.process(server())
    cp = sim.process(client())
    sim.run(until=sim.now + 120_000_000)
    if not cp.triggered or not cp.ok:
        raise RuntimeError("udp blast client failed")
    elapsed = (state["t_last"] or 0) - (state["t_first"] or 0)
    return BlastResult(datagrams, state["received"], size, max(1.0, elapsed))
