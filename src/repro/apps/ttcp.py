"""ttcp-style throughput benchmark (paper §4.2.1, Figure 4).

"Throughput results were derived from the ttcp (v1.4) benchmark.  The
tests involved a 10MB transfer in 16KB chunks with the TCP_NODELAY
option set."  We report sustained MB/s plus the transmitting host's CPU
utilization over the transfer window — the two Figure 4 series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import QPTransport
from ..hoststack import TcpSocket
from ..net.addresses import Endpoint
from ..net.packet import ZeroPayload
from ..sim import Simulator
from ..units import to_mb_per_sec

PORT = 5010
DEFAULT_TOTAL = 10 * 1024 * 1024
DEFAULT_CHUNK = 16 * 1024


@dataclass
class ThroughputResult:
    bytes_moved: int
    elapsed_us: float
    tx_cpu_utilization: float
    rx_cpu_utilization: float
    t_start: float = 0.0     # absolute sim time the transfer began
    t_end: float = 0.0       # absolute sim time the receiver finished

    @property
    def mb_per_sec(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return to_mb_per_sec(self.bytes_moved / self.elapsed_us)


def _finish(sim, procs, deadline):
    sim.run(until=sim.now + deadline)
    for p in procs:
        if not p.triggered:
            raise RuntimeError("ttcp did not finish")
        if not p.ok:
            raise p.value


def socket_ttcp(sim: Simulator, client_node, server_node,
                total_bytes: int = DEFAULT_TOTAL,
                chunk: int = DEFAULT_CHUNK) -> ThroughputResult:
    """Host-stack ttcp: write()s of ``chunk`` bytes, TCP_NODELAY."""
    window = {}

    def server():
        lsock = TcpSocket(server_node.kernel, server_node.addr)
        lsock.listen(PORT)
        conn = yield from lsock.accept()
        got = 0
        while got < total_bytes:
            data = yield from conn.recv(1 << 20)
            if data.length == 0:
                break
            got += data.length
        window["rx_done"] = sim.now

    def client():
        sock = TcpSocket(client_node.kernel, client_node.addr)
        yield from sock.connect(Endpoint(server_node.addr, PORT))
        client_node.host.reset_cpu_stats()
        server_node.host.reset_cpu_stats()
        window["start"] = sim.now
        sent = 0
        while sent < total_bytes:
            n = min(chunk, total_bytes - sent)
            yield from sock.send(ZeroPayload(n))
            sent += n
        window["tx_done"] = sim.now

    procs = [sim.process(server()), sim.process(client())]
    _finish(sim, procs, 600_000_000)
    elapsed = window["rx_done"] - window["start"]
    tx_elapsed = max(1.0, window["tx_done"] - window["start"])
    return ThroughputResult(
        bytes_moved=total_bytes,
        elapsed_us=elapsed,
        tx_cpu_utilization=client_node.host.cpu.busy_time / tx_elapsed,
        rx_cpu_utilization=server_node.host.cpu.busy_time / elapsed,
        t_start=window["start"], t_end=window["rx_done"])


def qpip_ttcp_reliable(sim: Simulator, client_node, server_node,
                       total_bytes: int = 1024 * 1024,
                       chunk: int = 4096, kill_times=(),
                       policy=None, rng=None, window_size: int = 64,
                       heartbeat_interval: float = 20_000.0,
                       port: int = PORT + 1):
    """One-way throughput stream over the self-healing session layer.

    The client pushes ``total_bytes`` in ``chunk``-sized messages through
    a :class:`~repro.recovery.RecoveryManager`; the server counts bytes
    delivered (exactly once, even when ``kill_times`` aborts the client's
    QP mid-stream).  Returns ``(ThroughputResult, recovery_report)``.
    """
    from ..recovery import RecoveryAcceptor, RecoveryManager
    win = {}
    expected = sum(min(chunk, total_bytes - off)
                   for off in range(0, total_bytes, chunk))

    state = {"got": 0}

    def on_chunk(_sid, payload):
        state["got"] += len(payload)
        if state["got"] >= expected and "rx_done" not in win:
            win["rx_done"] = sim.now
        return None   # one-way: no reliable response

    acceptor = RecoveryAcceptor(server_node, port=port, handler=on_chunk,
                                window=window_size,
                                max_msg=max(chunk, 64))
    manager = RecoveryManager(client_node, Endpoint(server_node.addr, port),
                              session_id=1, policy=policy, rng=rng,
                              window=window_size, max_msg=max(chunk, 64),
                              heartbeat_interval=heartbeat_interval)

    def client():
        yield from manager.start()
        client_node.host.reset_cpu_stats()
        server_node.host.reset_cpu_stats()
        win["start"] = sim.now
        sent = 0
        while sent < total_bytes:
            n = min(chunk, total_bytes - sent)
            yield from manager.send(bytes(n))
            sent += n
        yield from manager.drain()
        win["tx_done"] = sim.now
        yield from manager.close()

    for at in kill_times:
        def kill():
            if manager.qp is not None:
                client_node.firmware.abort_qp(manager.qp)
        sim.call_later(at, kill)

    procs = [sim.process(acceptor.run()), sim.process(client())]
    sim.run(until=sim.now + 600_000_000)
    if not procs[1].triggered:
        raise RuntimeError("reliable ttcp did not finish")
    if not procs[1].ok:
        raise procs[1].value
    if "rx_done" not in win:
        # Drain retired everything, so delivery is complete; the last
        # handler call and the drain can land on the same tick.
        win["rx_done"] = sim.now
    elapsed = max(1.0, win["rx_done"] - win["start"])
    tx_elapsed = max(1.0, win["tx_done"] - win["start"])
    result = ThroughputResult(
        bytes_moved=state["got"],
        elapsed_us=elapsed,
        tx_cpu_utilization=client_node.host.cpu.busy_time / tx_elapsed,
        rx_cpu_utilization=server_node.host.cpu.busy_time / elapsed,
        t_start=win["start"], t_end=win["rx_done"])
    return result, manager.report()


def qpip_ttcp(sim: Simulator, client_node, server_node,
              total_bytes: int = DEFAULT_TOTAL,
              chunk: int = DEFAULT_CHUNK, queue_depth: int = 8,
              recv_buffers: int = 16) -> ThroughputResult:
    """QPIP ttcp: chunked into max-message-size sends, blocking completions.

    The application pipelines ``queue_depth`` outstanding send WRs and the
    receiver reposts each buffer as it completes — the natural QP idiom
    for a streaming transfer.
    """
    window = {}

    def server():
        iface = server_node.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                        max_recv_wr=recv_buffers + 4)
        bufs = []
        # Page-sized minimum: tiny receive WRs would advertise a TCP window
        # that rounds to zero under window scaling (each send consumes a
        # whole WR regardless of message size, per the QP model).
        buf_size = max(chunk, 4096)
        for _ in range(recv_buffers):
            buf = yield from iface.register_memory(buf_size)
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        listener = yield from iface.listen(PORT)
        yield from iface.accept(listener, qp)
        got = 0
        ring = 0
        while got < total_bytes:
            cqes = yield from iface.wait(cq)
            for cqe in cqes:
                got += cqe.byte_len
                if got >= total_bytes:
                    break
                yield from iface.post_recv(qp, [bufs[ring].sge()])
                ring = (ring + 1) % len(bufs)
        window["rx_done"] = sim.now

    def client():
        iface = client_node.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                        max_send_wr=queue_depth + 4)
        sbuf = yield from iface.register_memory(chunk)
        yield sim.timeout(1000)
        yield from iface.connect(qp, Endpoint(server_node.addr, PORT))
        ep = client_node.firmware.endpoints[qp.qp_num]
        max_msg = ep.conn.max_message
        client_node.host.reset_cpu_stats()
        server_node.host.reset_cpu_stats()
        window["start"] = sim.now
        sent = 0
        inflight = 0
        while sent < total_bytes or inflight > 0:
            while sent < total_bytes and inflight < queue_depth:
                n = min(chunk, max_msg, total_bytes - sent)
                yield from iface.post_send(qp, [sbuf.sge(0, n)])
                sent += n
                inflight += 1
            cqes = yield from iface.wait(cq)
            inflight -= len(cqes)
        window["tx_done"] = sim.now

    procs = [sim.process(server()), sim.process(client())]
    _finish(sim, procs, 600_000_000)
    elapsed = window["rx_done"] - window["start"]
    tx_elapsed = max(1.0, window["tx_done"] - window["start"])
    return ThroughputResult(
        bytes_moved=total_bytes,
        elapsed_us=elapsed,
        tx_cpu_utilization=client_node.host.cpu.busy_time / tx_elapsed,
        rx_cpu_utilization=server_node.host.cpu.busy_time / elapsed,
        t_start=window["start"], t_end=window["rx_done"])
