"""Application-to-application round-trip time (paper §4.2.1).

"The round-trip time refers to the latency of a single 1 byte message to
travel from one application to another and back."  Socket variants (TCP
and UDP) run over the host stack; QP variants use the verbs API with
cache-spin polling (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import QPTransport
from ..hoststack import TcpSocket, UdpSocket
from ..net.addresses import Endpoint
from ..net.packet import ZeroPayload
from ..sim import Simulator


@dataclass
class RttResult:
    rtts: List[float]

    @property
    def mean(self) -> float:
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0

    @property
    def median(self) -> float:
        if not self.rtts:
            return 0.0
        s = sorted(self.rtts)
        return s[len(s) // 2]


PORT = 5001


def _finish(sim: Simulator, procs, deadline: float) -> None:
    sim.run(until=sim.now + deadline)
    for p in procs:
        if not p.triggered:
            raise RuntimeError("ping-pong did not finish")
        if not p.ok:
            raise p.value


def socket_tcp_rtt(sim: Simulator, client_node, server_node,
                   iterations: int = 100, msg_size: int = 1) -> RttResult:
    """TCP ping-pong over the host stack."""
    rtts: List[float] = []

    def server():
        lsock = TcpSocket(server_node.kernel, server_node.addr)
        lsock.listen(PORT)
        conn = yield from lsock.accept()
        for _ in range(iterations):
            data = yield from conn.recv_exact(msg_size)
            yield from conn.send(data)

    def client():
        sock = TcpSocket(client_node.kernel, client_node.addr)
        yield from sock.connect(Endpoint(server_node.addr, PORT))
        for _ in range(iterations):
            t0 = sim.now
            yield from sock.send(ZeroPayload(msg_size))
            yield from sock.recv_exact(msg_size)
            rtts.append(sim.now - t0)

    procs = [sim.process(server()), sim.process(client())]
    _finish(sim, procs, 60_000_000)
    return RttResult(rtts)


def socket_udp_rtt(sim: Simulator, client_node, server_node,
                   iterations: int = 100, msg_size: int = 1) -> RttResult:
    """UDP ping-pong over the host stack."""
    rtts: List[float] = []

    def server():
        sock = UdpSocket(server_node.kernel, server_node.addr)
        sock.bind(PORT)
        for _ in range(iterations):
            dg = yield from sock.recvfrom()
            yield from sock.sendto(dg.src, dg.payload)

    def client():
        sock = UdpSocket(client_node.kernel, client_node.addr)
        sock.bind()
        yield sim.timeout(100)   # let the server bind
        for _ in range(iterations):
            t0 = sim.now
            yield from sock.sendto(Endpoint(server_node.addr, PORT),
                                   ZeroPayload(msg_size))
            yield from sock.recvfrom()
            rtts.append(sim.now - t0)

    procs = [sim.process(server()), sim.process(client())]
    _finish(sim, procs, 60_000_000)
    return RttResult(rtts)


def _qp_rtt(sim: Simulator, client_node, server_node, transport: QPTransport,
            iterations: int, msg_size: int) -> RttResult:
    """Shared QP ping-pong body for TCP and UDP transports."""
    rtts: List[float] = []
    buf_size = max(4096, msg_size)

    def server():
        iface = server_node.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(transport, cq)
        bufs = []
        for _ in range(4):
            buf = yield from iface.register_memory(buf_size)
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        sbuf = yield from iface.register_memory(buf_size)
        if transport is QPTransport.TCP:
            listener = yield from iface.listen(PORT)
            yield from iface.accept(listener, qp)
        else:
            yield from iface.bind_udp(qp, PORT)
        done = 0
        ring = 0
        while done < iterations:
            cqes = yield from iface.spin(cq)
            for cqe in cqes:
                if cqe.opcode.value != "RECV":
                    continue
                dest = cqe.src if transport is QPTransport.UDP else None
                yield from iface.post_send(qp, [sbuf.sge(0, msg_size)],
                                           dest=dest)
                # Repost the consumed receive buffer.
                yield from iface.post_recv(qp, [bufs[ring].sge()])
                ring = (ring + 1) % len(bufs)
                done += 1

    def client():
        iface = client_node.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(transport, cq)
        bufs = []
        for _ in range(4):
            buf = yield from iface.register_memory(buf_size)
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        sbuf = yield from iface.register_memory(buf_size)
        yield sim.timeout(1000)   # let the server listen/bind
        if transport is QPTransport.TCP:
            yield from iface.connect(qp, Endpoint(server_node.addr, PORT))
        else:
            yield from iface.bind_udp(qp)
        dest = Endpoint(server_node.addr, PORT) \
            if transport is QPTransport.UDP else None
        ring = 0
        for _ in range(iterations):
            t0 = sim.now
            yield from iface.post_send(qp, [sbuf.sge(0, msg_size)], dest=dest)
            got_pong = False
            while not got_pong:
                cqes = yield from iface.spin(cq)
                for cqe in cqes:
                    if cqe.opcode.value == "RECV":
                        got_pong = True
                        rtts.append(sim.now - t0)
                        yield from iface.post_recv(qp, [bufs[ring].sge()])
                        ring = (ring + 1) % len(bufs)

    procs = [sim.process(server()), sim.process(client())]
    _finish(sim, procs, 60_000_000)
    return RttResult(rtts)


def qpip_tcp_rtt(sim: Simulator, client_node, server_node,
                 iterations: int = 100, msg_size: int = 1) -> RttResult:
    return _qp_rtt(sim, client_node, server_node, QPTransport.TCP,
                   iterations, msg_size)


def qpip_reliable_rtt(sim: Simulator, client_node, server_node,
                      iterations: int = 100, msg_size: int = 32,
                      kill_times=(), policy=None, rng=None,
                      heartbeat_interval: float = 20_000.0,
                      port: int = PORT + 1):
    """Ping-pong through the self-healing session layer.

    The echo runs over a :class:`~repro.recovery.RecoveryManager` /
    :class:`~repro.recovery.RecoveryAcceptor` pair; each ``kill_times``
    entry aborts the client's current QP at that simulation time and the
    stream *resumes* — every ping is answered exactly once, the killed
    iterations simply pay the recovery latency in their RTT sample.

    Returns ``(RttResult, recovery_report)``.
    """
    from ..recovery import RecoveryAcceptor, RecoveryManager
    rtts: List[float] = []
    acceptor = RecoveryAcceptor(server_node, port=port,
                                handler=lambda _sid, payload: payload)
    manager = RecoveryManager(client_node, Endpoint(server_node.addr, port),
                              session_id=1, policy=policy, rng=rng,
                              heartbeat_interval=heartbeat_interval,
                              max_msg=max(msg_size, 64))

    def client():
        yield from manager.start()
        payload = bytes(msg_size) if msg_size else b"\0"
        for _ in range(iterations):
            t0 = sim.now
            yield from manager.send(payload)
            echo = yield from manager.recv()
            if echo is None or len(echo) != len(payload):
                raise RuntimeError("reliable ping-pong echo mismatch")
            rtts.append(sim.now - t0)
        yield from manager.drain()
        yield from manager.close()

    for at in kill_times:
        def kill():
            if manager.qp is not None:
                client_node.firmware.abort_qp(manager.qp)
        sim.call_later(at, kill)

    procs = [sim.process(acceptor.run()), sim.process(client())]
    sim.run(until=sim.now + 60_000_000)
    if not procs[1].triggered:
        raise RuntimeError("reliable ping-pong did not finish")
    if not procs[1].ok:
        raise procs[1].value
    return RttResult(rtts), manager.report()


def qpip_udp_rtt(sim: Simulator, client_node, server_node,
                 iterations: int = 100, msg_size: int = 1) -> RttResult:
    return _qp_rtt(sim, client_node, server_node, QPTransport.UDP,
                   iterations, msg_size)
