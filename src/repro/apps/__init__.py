"""Applications: ping-pong RTT, ttcp throughput, NBD network storage,
an RDMA key-value store, and ring collectives."""

from .collective import RingMember, build_ring
from .kvstore import FailoverKvClient, KvClient, KvServer
from .pingpong import (RttResult, qpip_reliable_rtt, qpip_tcp_rtt,
                       qpip_udp_rtt, socket_tcp_rtt, socket_udp_rtt)
from .ttcp import ThroughputResult, qpip_ttcp, qpip_ttcp_reliable, socket_ttcp

__all__ = [
    "RingMember", "build_ring", "KvClient", "KvServer", "FailoverKvClient",
    "RttResult", "qpip_tcp_rtt", "qpip_udp_rtt", "socket_tcp_rtt",
    "socket_udp_rtt", "qpip_reliable_rtt",
    "ThroughputResult", "qpip_ttcp", "qpip_ttcp_reliable", "socket_ttcp",
]
