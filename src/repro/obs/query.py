"""Trace-based test assertions.

``TraceQuery`` wraps a recorded event stream and lets tests assert on
*causality* — the order messages moved through the layers — instead of
only on endpoint state.  Failures raise :class:`TraceAssertionError`
(an ``AssertionError`` subclass, so pytest renders it natively) with
enough of the surrounding trace to debug from the failure message.
"""

from __future__ import annotations

from typing import List, Optional

from .trace import TraceEvent


class TraceAssertionError(AssertionError):
    pass


def _match(ev: TraceEvent, cat: Optional[str], name: Optional[str],
           fields: dict) -> bool:
    if cat is not None and ev.cat != cat:
        return False
    if name is not None and ev.name != name:
        return False
    if fields:
        have = ev.fields or {}
        for k, v in fields.items():
            if k == "ph":               # reserved: match the event phase
                if ev.ph != v:
                    return False
            elif k == "track":          # reserved: match the track name
                if ev.track != v:
                    return False
            elif have.get(k) != v:
                return False
    return True


class TraceQuery:
    """Filter and assert over a list of :class:`TraceEvent` records.

    Field kwargs match against ``TraceEvent.fields``, with two reserved
    names matching event attributes instead: ``ph`` (the phase — pass
    ``ph="b"`` to count span *begins* without their matching ends) and
    ``track`` (disambiguates identically-named events from different
    hosts, e.g. both nodes' ``qp.error`` for their local QP 1).
    """

    def __init__(self, source):
        # Accepts a TraceRecorder or a plain list of events.
        self.records: List[TraceEvent] = list(getattr(source, "records",
                                                      source))

    # -- filtering ---------------------------------------------------------

    def events(self, cat: Optional[str] = None, name: Optional[str] = None,
               **fields) -> List[TraceEvent]:
        return [ev for ev in self.records if _match(ev, cat, name, fields)]

    def count(self, cat: Optional[str] = None, name: Optional[str] = None,
              **fields) -> int:
        return len(self.events(cat, name, **fields))

    def first(self, cat: Optional[str] = None, name: Optional[str] = None,
              **fields) -> Optional[TraceEvent]:
        for ev in self.records:
            if _match(ev, cat, name, fields):
                return ev
        return None

    def last(self, cat: Optional[str] = None, name: Optional[str] = None,
             **fields) -> Optional[TraceEvent]:
        for ev in reversed(self.records):
            if _match(ev, cat, name, fields):
                return ev
        return None

    def span(self, span_id: int) -> List[TraceEvent]:
        return [ev for ev in self.records if ev.span == span_id]

    def _describe(self, limit: int = 12) -> str:
        shown = [repr(ev) for ev in self.records[:limit]]
        if len(self.records) > limit:
            shown.append(f"... {len(self.records) - limit} more")
        return "\n  ".join(shown) or "<empty trace>"

    # -- assertions --------------------------------------------------------

    def assert_span_order(self, *names: str, cat: Optional[str] = None,
                          **fields) -> List[TraceEvent]:
        """Assert the named events occur as a time-ordered subsequence.

        Each name must appear at or after the previous match; unrelated
        events in between are fine.  Returns the matched events, so
        callers can chain further checks on their fields.
        """
        if not names:
            raise ValueError("assert_span_order needs at least one name")
        matched: List[TraceEvent] = []
        idx = 0
        for name in names:
            while idx < len(self.records):
                ev = self.records[idx]
                idx += 1
                if _match(ev, cat, name, fields):
                    matched.append(ev)
                    break
            else:
                raise TraceAssertionError(
                    f"event {name!r} not found after "
                    f"{[e.name for e in matched]!r} (cat={cat!r}, "
                    f"fields={fields!r}); trace:\n  {self._describe()}")
        return matched

    def assert_no_event(self, cat: Optional[str] = None,
                        name: Optional[str] = None,
                        after: float = float("-inf"), **fields) -> None:
        """Assert no matching event exists at/after simulated time ``after``."""
        for ev in self.records:
            if ev.ts >= after and _match(ev, cat, name, fields):
                raise TraceAssertionError(
                    f"forbidden event present: {ev!r} fields={ev.fields!r} "
                    f"(after={after})")

    def assert_latency_between(self, first: str, second: str,
                               max_us: float, min_us: float = 0.0,
                               cat: Optional[str] = None,
                               **fields) -> float:
        """Assert sim-time from first ``first`` to next ``second`` is in
        ``[min_us, max_us]``; returns the measured latency."""
        start = self.first(cat, first, **fields)
        if start is None:
            raise TraceAssertionError(
                f"no {first!r} event (cat={cat!r}); "
                f"trace:\n  {self._describe()}")
        end = None
        for ev in self.records:
            if ev.ts >= start.ts and _match(ev, cat, second, fields):
                end = ev
                break
        if end is None:
            raise TraceAssertionError(
                f"no {second!r} event after {first!r} at {start.ts:.3f}us; "
                f"trace:\n  {self._describe()}")
        latency = end.ts - start.ts
        if not min_us <= latency <= max_us:
            raise TraceAssertionError(
                f"latency {first!r}->{second!r} = {latency:.3f}us outside "
                f"[{min_us}, {max_us}]us")
        return latency
