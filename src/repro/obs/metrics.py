"""Metrics registry: counters, gauges, exact-percentile histograms.

Unlike :mod:`repro.sim.stats` (fixed-bucket, approximate percentiles —
kept for the legacy call sites), the observability registry stores every
sample, so ``percentile`` answers with an *exact* order statistic via
the nearest-rank definition::

    percentile(p) = sorted_samples[ceil(p/100 * n) - 1]    (p > 0)
    percentile(0) = min(samples)

The registry itself never reads any clock; what a sample means is the
caller's choice.  Simulation call sites record simulated time or
simulated counts; :mod:`repro.serve` reuses the same registry for
wall-clock service latencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A named last-value-wins instrument, tracking its seen extremes."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, x: float) -> None:
        self.value = x
        self.min = x if self.min is None else min(self.min, x)
        self.max = x if self.max is None else max(self.max, x)


class ExactHistogram:
    """Stores all samples; percentiles are exact order statistics."""

    __slots__ = ("name", "samples", "_sorted")

    def __init__(self, name: str = "hist"):
        self.name = name
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, x: float) -> None:
        self.samples.append(x)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("empty histogram has no mean")
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Exact nearest-rank percentile; ``p`` in [0, 100].

        Raises :class:`ValueError` on an empty histogram — an absent
        latency distribution is a measurement bug, not a zero.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.samples:
            raise ValueError("percentile of an empty histogram")
        s = self._sorted
        if s is None:
            s = self._sorted = sorted(self.samples)
        if p == 0:
            return s[0]
        # max(1, ...): p/100*n can underflow to 0.0 for denormal p, and
        # rank 0 would wrap the index around to the maximum sample.
        rank = max(1, math.ceil(p / 100.0 * len(s)))
        return s[rank - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.percentile(0),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.percentile(100),
        }


Instrument = Union[Counter, Gauge, ExactHistogram]


class MetricsRegistry:
    """Dotted-name bag of instruments (``fw.stage_us.build_tcp_hdr``)."""

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name)
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} is {type(inst).__name__}, "
                            f"not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> ExactHistogram:
        return self._get(name, ExactHistogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-friendly dict, sorted by metric name."""
        out: Dict[str, object] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out[name] = inst.value
            elif isinstance(inst, Gauge):
                out[name] = {"value": inst.value, "min": inst.min,
                             "max": inst.max}
            else:
                out[name] = (inst.summary() if inst.count
                             else {"count": 0})
        return out

    def dump(self) -> Dict[str, dict]:
        """Lossless, picklable export: every sample, not just summaries.

        ``snapshot()`` is for reports; ``dump()`` is for merging
        registries from cluster shard workers — histogram percentiles
        over a merged registry must be computed from the union of the
        raw samples, which a summary cannot provide.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out[name] = {"type": "counter", "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"type": "gauge", "value": inst.value,
                             "min": inst.min, "max": inst.max}
            else:
                out[name] = {"type": "histogram",
                             "samples": list(inst.samples)}
        return out

    def render(self) -> str:
        """Human-readable report, one metric per line."""
        lines = ["metrics:"]
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                lines.append(f"  {name:40s} {inst.value:>12,}")
            elif isinstance(inst, Gauge):
                lines.append(f"  {name:40s} {inst.value!r:>12} "
                             f"(min {inst.min!r}, max {inst.max!r})")
            elif inst.count:
                s = inst.summary()
                lines.append(
                    f"  {name:40s} n={s['count']:<7,} mean={s['mean']:.2f} "
                    f"p50={s['p50']:.2f} p90={s['p90']:.2f} "
                    f"p99={s['p99']:.2f} max={s['max']:.2f}")
            else:
                lines.append(f"  {name:40s} n=0")
        return "\n".join(lines)
