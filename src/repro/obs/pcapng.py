"""pcapng (pcap next generation) writer for wire captures.

Produces a minimal, Wireshark-loadable capture: one Section Header
Block, one Interface Description Block, then an Enhanced Packet Block
per packet.  The interface declares ``if_tsresol = 9`` (nanosecond
ticks), so simulated microsecond timestamps survive with sub-µs
precision: ``ticks = round(time_us * 1000)``.

Reference: IETF draft-tuexen-opsawg-pcapng (the de-facto pcapng spec).
"""

from __future__ import annotations

import struct
from typing import Iterable, Tuple

#: Link types, per tcpdump.org/linktypes.html.
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101          # raw IP: packet begins with an IPv4/IPv6 header

_SHB_TYPE = 0x0A0D0D0A
_IDB_TYPE = 0x00000001
_EPB_TYPE = 0x00000006
_BYTE_ORDER_MAGIC = 0x1A2B3C4D
_OPT_ENDOFOPT = 0
_OPT_IF_NAME = 2
_OPT_IF_TSRESOL = 9


def _block(block_type: int, body: bytes) -> bytes:
    """Frame a block body with type + total-length trailer per the spec."""
    total = 12 + len(body)
    return (struct.pack("<II", block_type, total) + body
            + struct.pack("<I", total))


def _option(code: int, value: bytes) -> bytes:
    pad = (4 - len(value) % 4) % 4
    return struct.pack("<HH", code, len(value)) + value + b"\x00" * pad


def section_header_block() -> bytes:
    body = struct.pack("<IHHq", _BYTE_ORDER_MAGIC, 1, 0, -1)
    return _block(_SHB_TYPE, body)


def interface_description_block(linktype: int,
                                name: str = "repro-sim") -> bytes:
    body = struct.pack("<HHI", linktype, 0, 0)      # linktype, rsvd, snaplen ∞
    body += _option(_OPT_IF_NAME, name.encode())
    body += _option(_OPT_IF_TSRESOL, b"\x09")       # 10^-9 s ticks
    body += _option(_OPT_ENDOFOPT, b"")
    return _block(_IDB_TYPE, body)


def enhanced_packet_block(time_us: float, data: bytes) -> bytes:
    ticks = round(time_us * 1000)                   # µs -> ns
    body = struct.pack("<IIIII", 0, (ticks >> 32) & 0xFFFFFFFF,
                       ticks & 0xFFFFFFFF, len(data), len(data))
    pad = (4 - len(data) % 4) % 4
    body += data + b"\x00" * pad
    return _block(_EPB_TYPE, body)


def write_pcapng(path: str, packets: Iterable[Tuple[float, bytes]],
                 linktype: int = LINKTYPE_RAW) -> int:
    """Write ``(time_us, raw_bytes)`` pairs; returns the packet count."""
    count = 0
    with open(path, "wb") as fh:
        fh.write(section_header_block())
        fh.write(interface_description_block(linktype))
        for time_us, data in packets:
            fh.write(enhanced_packet_block(time_us, data))
            count += 1
    return count
