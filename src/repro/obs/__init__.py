"""Cross-layer observability: spans, metrics, pcapng, trace assertions.

The subsystem grew out of three stubs (``sim/trace.py``, ``sim/stats.py``,
``tools/wiretap.py``), which keep working unchanged; ``repro.obs`` adds
the structured layer on top:

* :class:`TraceRecorder` — span/event tracer following a WR from
  ``post_send`` through firmware stages, the wire, and the remote CQE;
  exports JSONL and Perfetto-loadable Chrome ``trace_event`` JSON.
* :class:`MetricsRegistry` — counters, gauges, and exact-percentile
  simulated-time histograms, instrumented across firmware, host stack,
  TCP, fabric, and recovery.
* :mod:`repro.obs.pcapng` — Wireshark-loadable captures from wiretaps.
* :class:`TraceQuery` — assertion API for tests
  (``assert_span_order`` / ``assert_no_event`` / ``assert_latency_between``).

Zero-cost-when-disabled contract (the ``repro.fastpath`` pattern): hot
paths guard every hook with::

    from .. import obs
    ...
    rec = obs.RECORDER
    if rec is not None:
        rec.event("link", "drop", ...)

``RECORDER`` is ``None`` unless a test or the CLI calls :func:`install`
(or enters :func:`capture`), so the disabled cost is one module-attribute
load and a falsy check — and, like the fast paths, an *enabled* recorder
must never change simulated results (see ``tests/test_obs_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .metrics import Counter, ExactHistogram, Gauge, MetricsRegistry
from .query import TraceAssertionError, TraceQuery
from .trace import TraceEvent, TraceRecorder

#: The active recorder, or None when tracing is off.  Hot paths read this
#: directly; everything else goes through install/uninstall/capture.
RECORDER: Optional[TraceRecorder] = None


def install(sim, capacity: int = 1_000_000) -> TraceRecorder:
    """Activate tracing on ``sim``; returns the new recorder."""
    global RECORDER
    RECORDER = TraceRecorder(sim, capacity=capacity)
    return RECORDER


def uninstall() -> Optional[TraceRecorder]:
    """Deactivate tracing; returns the recorder that was active."""
    global RECORDER
    previous, RECORDER = RECORDER, None
    return previous


@contextmanager
def capture(sim, capacity: int = 1_000_000):
    """``with obs.capture(sim) as rec:`` — scoped tracing for tests."""
    rec = install(sim, capacity=capacity)
    try:
        yield rec
    finally:
        if RECORDER is rec:
            uninstall()


__all__ = [
    "Counter", "ExactHistogram", "Gauge", "MetricsRegistry",
    "TraceAssertionError", "TraceEvent", "TraceQuery", "TraceRecorder",
    "RECORDER", "install", "uninstall", "capture",
]
