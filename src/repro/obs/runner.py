"""Traced workload runner backing ``repro trace`` / ``repro metrics``.

Runs one of the paper's mini-workloads on a QPIP pair with the full
observability stack on: span tracer installed, wiretaps at both NICs.
Artifacts land in an output directory:

* ``trace.jsonl``        — the raw event stream, one JSON object per line
* ``trace.chrome.json``  — Chrome ``trace_event``; open in Perfetto
* ``capture.pcapng``     — the sender-side wire capture; open in Wireshark
* ``metrics.txt``        — rendered metrics report
"""

from __future__ import annotations

import os
from typing import Dict

from .. import obs

WORKLOADS = ("ttcp", "pingpong")


def run_traced(workload: str = "ttcp", out_dir: str = ".",
               total_bytes: int = 256 * 1024, chunk: int = 8192,
               iterations: int = 20, msg_size: int = 64,
               write_artifacts: bool = True) -> Dict:
    """Run ``workload`` with tracing enabled; returns a summary dict."""
    if workload not in WORKLOADS:
        raise ValueError(f"unknown traced workload {workload!r} "
                         f"(choose from {WORKLOADS})")
    from ..bench.configs import build_qpip_pair
    from ..sim import Simulator
    from ..tools import Wiretap

    sim = Simulator()
    a, b, _fabric = build_qpip_pair(sim)
    tap = Wiretap(sim)
    tap.attach_qpip_nic(a.nic)

    summary: Dict = {"workload": workload}
    with obs.capture(sim) as rec:
        if workload == "ttcp":
            from ..apps.ttcp import qpip_ttcp
            res = qpip_ttcp(sim, a, b, total_bytes=total_bytes, chunk=chunk)
            summary["bytes_moved"] = res.bytes_moved
            summary["elapsed_us"] = res.elapsed_us
            summary["gbps"] = (8.0 * res.bytes_moved / res.elapsed_us / 1e3
                               if res.elapsed_us else 0.0)
        else:
            from ..apps.pingpong import qpip_tcp_rtt
            res = qpip_tcp_rtt(sim, a, b, iterations=iterations,
                               msg_size=msg_size)
            rtts = list(res.rtts)
            summary["iterations"] = len(rtts)
            summary["rtt_us_mean"] = sum(rtts) / len(rtts) if rtts else 0.0

    summary["sim_us"] = sim.now
    summary["events"] = len(rec.records)
    summary["dropped_events"] = rec.dropped
    summary["open_spans"] = rec.open_spans()
    summary["packets_captured"] = len(tap)
    summary["metrics"] = rec.metrics.snapshot()

    if write_artifacts:
        os.makedirs(out_dir, exist_ok=True)
        paths = {
            "trace_jsonl": os.path.join(out_dir, "trace.jsonl"),
            "trace_chrome": os.path.join(out_dir, "trace.chrome.json"),
            "pcapng": os.path.join(out_dir, "capture.pcapng"),
            "metrics": os.path.join(out_dir, "metrics.txt"),
        }
        rec.to_jsonl(paths["trace_jsonl"])
        rec.to_chrome(paths["trace_chrome"])
        tap.write_pcapng(paths["pcapng"])
        with open(paths["metrics"], "w") as fh:
            fh.write(rec.metrics.render())
            fh.write("\n")
        summary["artifacts"] = paths
    return summary


def render_summary(summary: Dict) -> str:
    lines = [f"repro trace: {summary['workload']} "
             f"({summary['sim_us']:.1f} sim-us)"]
    if "bytes_moved" in summary:
        lines.append(f"  moved {summary['bytes_moved']:,} bytes in "
                     f"{summary['elapsed_us']:.1f} us "
                     f"({summary['gbps']:.2f} Gb/s)")
    if "rtt_us_mean" in summary:
        lines.append(f"  {summary['iterations']} round trips, mean RTT "
                     f"{summary['rtt_us_mean']:.2f} us")
    lines.append(f"  {summary['events']:,} trace events "
                 f"({summary['dropped_events']} dropped, "
                 f"{summary['open_spans']} spans left open), "
                 f"{summary['packets_captured']:,} packets captured")
    for label, path in summary.get("artifacts", {}).items():
        lines.append(f"  wrote {label:13s} {path}")
    return "\n".join(lines)
