"""Structured span/event tracer with stable IDs.

A :class:`TraceRecorder` collects :class:`TraceEvent` records keyed by
simulated time.  Three shapes of record exist, mirroring the Chrome
``trace_event`` phases they export to:

* instant events (``ph="i"``) — point observations ("packet dropped");
* async span begin/end pairs (``ph="b"``/``ph="e"``) sharing a span id —
  a WR's life from ``post_send`` to its CQE, across NICs and the wire;
* complete events (``ph="X"``) with a known duration — firmware pipeline
  stages, whose occupancy is known when the stage starts.

Span IDs come from a deterministic counter, so two identical simulations
produce byte-identical traces.  Exports: JSONL (one event per line, easy
to grep/join) and Chrome ``trace_event`` JSON, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry


class TraceEvent:
    """One trace record.  ``fields`` is a small dict of JSON-able extras."""

    __slots__ = ("ts", "ph", "cat", "name", "span", "dur", "track", "fields")

    def __init__(self, ts: float, ph: str, cat: str, name: str,
                 span: Optional[int] = None, dur: Optional[float] = None,
                 track: str = "", fields: Optional[dict] = None):
        self.ts = ts
        self.ph = ph
        self.cat = cat
        self.name = name
        self.span = span
        self.dur = dur
        self.track = track
        self.fields = fields

    def to_dict(self) -> dict:
        d = {"ts": self.ts, "ph": self.ph, "cat": self.cat,
             "name": self.name}
        if self.span is not None:
            d["span"] = self.span
        if self.dur is not None:
            d["dur"] = self.dur
        if self.track:
            d["track"] = self.track
        if self.fields:
            d["fields"] = self.fields
        return d

    def __repr__(self):
        extra = f" span={self.span}" if self.span is not None else ""
        return (f"<TraceEvent {self.ts:.3f}us {self.ph} "
                f"{self.cat}:{self.name}{extra}>")


class TraceRecorder:
    """Bounded in-memory recorder bound to one simulator.

    Hot paths never call this directly; they check the module-level
    ``repro.obs.RECORDER`` first (``None`` when tracing is off), so a
    disabled recorder costs one global load per hook.
    """

    def __init__(self, sim, capacity: int = 1_000_000):
        self.sim = sim
        self.capacity = capacity
        self.records: List[TraceEvent] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self._next_span = 0
        self._open: Dict[tuple, Tuple[int, float, str, str, str]] = {}

    # -- recording ---------------------------------------------------------

    def _append(self, ev: TraceEvent) -> None:
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(ev)

    def event(self, cat: str, name: str, track: str = "",
              **fields) -> None:
        """Record an instant event at the current simulated time."""
        self._append(TraceEvent(self.sim.now, "i", cat, name,
                                track=track, fields=fields or None))

    def begin(self, cat: str, name: str, key: tuple, track: str = "",
              **fields) -> int:
        """Open an async span under ``key``; returns its stable span id.

        Re-beginning a live key (e.g. a replayed WR after recovery)
        closes the stale span as abandoned first, so exports never hold
        dangling begins.
        """
        if key in self._open:
            self.end(key, abandoned=True)
        self._next_span += 1
        span = self._next_span
        self._open[key] = (span, self.sim.now, cat, name, track)
        self._append(TraceEvent(self.sim.now, "b", cat, name, span=span,
                                track=track, fields=fields or None))
        return span

    def end(self, key: tuple, **fields) -> Optional[float]:
        """Close the span under ``key``; returns its duration in µs.

        An unknown key records an ``obs:orphan_end`` instant instead of
        raising — completion paths outrun instrumentation during flushes
        and that must never take the simulation down.
        """
        entry = self._open.pop(key, None)
        if entry is None:
            self._append(TraceEvent(self.sim.now, "i", "obs", "orphan_end",
                                    fields={"key": repr(key)}))
            return None
        span, t0, cat, name, track = entry
        self._append(TraceEvent(self.sim.now, "e", cat, name, span=span,
                                track=track, fields=fields or None))
        return self.sim.now - t0

    def complete(self, cat: str, name: str, dur: float, track: str = "",
                 **fields) -> None:
        """Record a duration-known event starting now (firmware stages)."""
        self._append(TraceEvent(self.sim.now, "X", cat, name, dur=dur,
                                track=track, fields=fields or None))

    def open_spans(self) -> int:
        return len(self._open)

    # -- export ------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """One JSON object per line; returns the number of lines."""
        with open(path, "w") as fh:
            for ev in self.records:
                fh.write(json.dumps(ev.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(self.records)

    def chrome_trace(self) -> dict:
        """The capture as a Chrome ``trace_event`` object.

        Tracks become named threads of one process; async spans use
        ``b``/``e`` with the span id, stage occupancy uses complete
        (``X``) events.  Timestamps are already in microseconds — the
        trace_event native unit — so sim time maps through unchanged.
        """
        events: List[dict] = []
        tids: Dict[str, int] = {}

        def tid(track: str) -> int:
            t = tids.get(track)
            if t is None:
                t = tids[track] = len(tids) + 1
                events.append({"ph": "M", "pid": 1, "tid": t,
                               "name": "thread_name",
                               "args": {"name": track or "events"}})
            return t

        events.append({"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                       "args": {"name": "repro simulation"}})
        for ev in self.records:
            out = {"pid": 1, "tid": tid(ev.track), "ts": ev.ts,
                   "ph": ev.ph, "cat": ev.cat or "span",
                   "name": ev.name or "span"}
            if ev.ph in ("b", "e"):
                out["id"] = ev.span
            if ev.ph == "X":
                out["dur"] = ev.dur
            if ev.ph == "i":
                out["s"] = "t"          # thread-scoped instant
            if ev.fields:
                out["args"] = ev.fields
            events.append(out)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome(self, path: str) -> int:
        trace = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        return len(trace["traceEvents"])
