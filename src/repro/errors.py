"""Exception hierarchy for the QPIP reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid configuration (bad MTU, missing route, etc.)."""


class NetworkError(ReproError):
    """Base class for protocol-level errors."""


class ChecksumError(NetworkError):
    """A received packet failed checksum verification."""


class RouteError(NetworkError):
    """No route/ARP entry for a destination."""


class ConnectionError_(NetworkError):
    """TCP connection-level failure (reset, refused, aborted)."""


class ConnectionRefused(ConnectionError_):
    """SYN answered with RST (no listener)."""


class ConnectionReset(ConnectionError_):
    """Peer sent RST on an established connection."""


class SocketError(ReproError):
    """Misuse of the sockets API."""


class DmaError(ReproError):
    """A host-DMA transfer failed (injected or hardware fault)."""


class VerbsError(ReproError):
    """Misuse of the QP verbs API (the QPIP user library)."""


class ResourceExhausted(VerbsError):
    """The interface is out of a finite resource (QP slots, SRAM
    translation entries); management commands fail with this instead of
    crashing the firmware."""


class MemoryRegistrationError(VerbsError):
    """WR references memory outside any registered region."""


class QPStateError(VerbsError):
    """Operation invalid for the QP's current state."""


class CompletionError(VerbsError):
    """A work request completed in error; carries the failed CQE.

    Raised by :meth:`repro.core.wr.Completion.raise_for_status` so
    applications can turn error completions into typed exceptions.
    """

    def __init__(self, completion):
        self.completion = completion
        self.status = completion.status
        super().__init__(
            f"WR {completion.wr_id} on QP{completion.qp_num} "
            f"({completion.opcode.value}) failed: {completion.status.value}")


class NBDError(ReproError):
    """Network block device protocol error."""
