"""Exception hierarchy for the QPIP reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid configuration (bad MTU, missing route, etc.)."""


class MissingDependency(ConfigError):
    """An *optional* third-party library is needed for this input.

    The core simulator is stdlib-only; a few conveniences (YAML scenario
    specs) lean on optional packages.  When one is absent the failure
    must be actionable — which package, why it was needed, and what to
    do instead — not an ``ImportError`` traceback.  ``dependency`` and
    ``hint`` are carried as fields so CLIs can emit them as a structured
    JSON error object.
    """

    def __init__(self, dependency: str, need: str, hint: str):
        self.dependency = dependency
        self.hint = hint
        super().__init__(
            f"optional dependency {dependency!r} is not installed "
            f"(needed {need}); {hint}")


class NetworkError(ReproError):
    """Base class for protocol-level errors."""


class ChecksumError(NetworkError):
    """A received packet failed checksum verification."""


class RouteError(NetworkError):
    """No route/ARP entry for a destination."""


class ConnectionError_(NetworkError):
    """TCP connection-level failure (reset, refused, aborted)."""


class ConnectionRefused(ConnectionError_):
    """SYN answered with RST (no listener)."""


class ConnectionReset(ConnectionError_):
    """Peer sent RST on an established connection."""


class SocketError(ReproError):
    """Misuse of the sockets API."""


class DmaError(ReproError):
    """A host-DMA transfer failed (injected or hardware fault)."""


class VerbsError(ReproError):
    """Misuse of the QP verbs API (the QPIP user library)."""


class ResourceExhausted(VerbsError):
    """The interface is out of a finite resource (QP slots, SRAM
    translation entries); management commands fail with this instead of
    crashing the firmware."""


class MemoryRegistrationError(VerbsError):
    """WR references memory outside any registered region."""


class QPStateError(VerbsError):
    """Operation invalid for the QP's current state."""


class QpTornDown(QPStateError):
    """Posting to a QP that is in ERROR or DISCONNECTED.

    Both post paths (``post_send`` and ``post_recv``) raise exactly this
    type so applications and the recovery layer can handle teardown with
    one ``except`` clause.  ``cause`` carries the connection-level error
    that moved the QP to ERROR, when there was one.
    """

    def __init__(self, qp, cause=None):
        self.qp_num = qp.qp_num
        self.qp_state = qp.state
        self.cause = cause if cause is not None else qp.error
        detail = f": {self.cause}" if self.cause is not None else ""
        super().__init__(
            f"QP{qp.qp_num} is {qp.state.value}{detail}")


class QueueFull(VerbsError):
    """A work queue is at capacity.

    Raised immediately only for non-blocking posts (``timeout=0``); by
    default the verbs layer absorbs this as watermark backpressure and
    yields until capacity frees or the posting deadline expires."""


class PostDeadlineExceeded(VerbsError):
    """Backpressured post did not find queue space within its deadline."""


class RetryBudgetExhausted(ReproError):
    """A retry policy ran out of attempts or overran its deadline."""

    def __init__(self, message, attempts=0, elapsed=0.0):
        self.attempts = attempts
        self.elapsed = elapsed
        super().__init__(message)


class CircuitOpen(ReproError):
    """The circuit breaker is open: the operation was shed, not tried."""


class CompletionError(VerbsError):
    """A work request completed in error; carries the failed CQE.

    Raised by :meth:`repro.core.wr.Completion.raise_for_status` so
    applications can turn error completions into typed exceptions.
    """

    def __init__(self, completion):
        self.completion = completion
        self.status = completion.status
        super().__init__(
            f"WR {completion.wr_id} on QP{completion.qp_num} "
            f"({completion.opcode.value}) failed: {completion.status.value}")


class NBDError(ReproError):
    """Network block device protocol error."""
