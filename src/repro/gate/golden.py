"""Golden baselines: record and check per-scenario digest files.

``scenarios/golden/<name>.json`` pins a scenario's digests at record
time.  ``check`` replays the corpus and diffs each scenario's fresh
digests against its golden file, producing named first-divergence
reports — a failing gate always says *which scenario* and *which
digest* moved, never just "something changed".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .digest import compare_digests
from .runner import ScenarioOutcome
from .spec import ScenarioSpec

GOLDEN_DIRNAME = "golden"
GOLDEN_FORMAT = 1


def golden_path(scenarios_dir: str, name: str) -> str:
    return os.path.join(scenarios_dir, GOLDEN_DIRNAME, f"{name}.json")


def write_golden(scenarios_dir: str, name: str, digests: Dict) -> str:
    path = golden_path(scenarios_dir, name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"format": GOLDEN_FORMAT, "scenario": name,
                   "digests": digests},
                  f, indent=1, sort_keys=True)
        f.write("\n")
    return path


def read_golden(scenarios_dir: str, name: str) -> Optional[Dict]:
    path = golden_path(scenarios_dir, name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


@dataclass
class GateCheck:
    """One scenario's verdict from ``repro gate check``."""

    name: str
    status: str          # "ok" | "drift" | "no_golden" | failure statuses
    wall_s: float
    detail: str = ""
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def first_divergence(self) -> Optional[str]:
        return self.divergences[0] if self.divergences else None


def check_outcomes(scenarios: List[ScenarioSpec],
                   outcomes: List[ScenarioOutcome],
                   scenarios_dir: str) -> List[GateCheck]:
    """Diff each outcome against its golden file."""
    checks: List[GateCheck] = []
    for spec, outcome in zip(scenarios, outcomes):
        if not outcome.ok:
            checks.append(GateCheck(spec.name, outcome.status,
                                    outcome.wall_s, detail=outcome.detail))
            continue
        golden = read_golden(scenarios_dir, spec.name)
        if golden is None:
            checks.append(GateCheck(
                spec.name, "no_golden", outcome.wall_s,
                detail=f"no golden baseline at "
                       f"{golden_path(scenarios_dir, spec.name)}; run "
                       f"'repro gate record'"))
            continue
        diffs = compare_digests(golden["digests"], outcome.digests,
                                spec.tolerances)
        if diffs:
            checks.append(GateCheck(
                spec.name, "drift", outcome.wall_s,
                detail=f"first divergence: {diffs[0]}",
                divergences=diffs))
        else:
            checks.append(GateCheck(spec.name, "ok", outcome.wall_s))
    return checks


def record_outcomes(scenarios: List[ScenarioSpec],
                    outcomes: List[ScenarioOutcome],
                    scenarios_dir: str) -> List[str]:
    """Write golden files for every passing outcome; returns the paths.

    Failing scenarios are *not* recorded — a baseline must come from a
    clean run.
    """
    paths = []
    for spec, outcome in zip(scenarios, outcomes):
        if outcome.ok:
            paths.append(write_golden(scenarios_dir, spec.name,
                                      outcome.digests))
    return paths
