"""The regression gate: a declarative scenario corpus with golden drift
detection.

``repro.gate`` turns the simulator's determinism guarantee into an
enforced contract.  A :class:`ScenarioSpec` (a YAML/JSON file under
``scenarios/``) names a topology, a workload, a fault plan, a seed, the
shardings that must agree bit-for-bit, and the invariants the run must
uphold — including the hostile-network family: incast fan-in,
reordering storms, duplication floods, and payload corruption that must
be caught by checksums and healed by retransmission with zero
app-visible corruption.

``repro gate record`` pins each scenario's observable digests (CQE
streams, wire traces, metrics, fault counters) under
``scenarios/golden/``; ``repro gate check`` replays the corpus in
crash-isolated worker processes with per-scenario wall-clock caps and
fails naming the first divergent digest.  See docs/gate.md.
"""

from .digest import compare_digests, evaluate_invariants, scenario_digests
from .golden import (GateCheck, check_outcomes, golden_path, read_golden,
                     record_outcomes, write_golden)
from .report import (checks_json, outcomes_json, render_checks,
                     render_outcomes, render_scenario_list)
from .runner import (ScenarioFailed, ScenarioOutcome, ScenarioPassed,
                     run_corpus, run_scenario)
from .spec import (Expectation, ScenarioSpec, WorkloadSpec, load_corpus,
                   load_scenario)

__all__ = [
    "ScenarioSpec", "WorkloadSpec", "Expectation",
    "load_scenario", "load_corpus",
    "scenario_digests", "evaluate_invariants", "compare_digests",
    "run_scenario", "run_corpus",
    "ScenarioPassed", "ScenarioFailed", "ScenarioOutcome",
    "GateCheck", "check_outcomes", "record_outcomes",
    "golden_path", "read_golden", "write_golden",
    "outcomes_json", "checks_json",
    "render_outcomes", "render_checks", "render_scenario_list",
]
