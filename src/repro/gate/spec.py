"""Declarative scenario specs: the unit of the regression gate.

A :class:`ScenarioSpec` is a pure-data description of one reproducible
run: topology, workload, fault plan, seed, the shardings to cross-check,
and the invariants the run must uphold.  Specs live as YAML (or JSON)
files in ``scenarios/`` and compile to a
:class:`~repro.cluster.ClusterSpec`; the corpus is the executable
contract of the simulator — every hostile-network behaviour the paper's
transport must survive, pinned to golden digests.
"""

from __future__ import annotations

import fnmatch
import json
import os
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from ..cluster.spec import ClusterSpec, FlowSpec, incast_flows, make_flows
from ..collectives.group import CollectiveWorkSpec
from ..errors import ConfigError, MissingDependency
from ..faults.plan import FaultBinding

#: Tiers: ``commit`` runs on every push; ``nightly`` is the heavy tail.
TIERS = ("commit", "nightly")


def _require_keys(data: Dict, allowed, what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ConfigError(f"{what}: unknown keys {sorted(unknown)} "
                          f"(allowed: {sorted(allowed)})")


@dataclass(frozen=True)
class WorkloadSpec:
    """What the hosts do: random pairs, an N→1 incast, or one
    collective op (every host is one rank)."""

    pattern: str = "pairs"        # "pairs" | "incast" | "collective"
    kind: str = "ttcp"            # pairs: "ttcp" | "pingpong"
    count: int = 4                # pairs: number of flows
    senders: int = 4              # incast: fan-in degree
    dst: int = 0                  # incast: victim host index
    total_bytes: int = 16384      # ttcp bytes per flow
    chunk: int = 4096             # ttcp message size
    iterations: int = 10          # pingpong round trips
    msg_size: int = 64            # pingpong message size
    stagger: float = 200.0        # start-offset spread (us)
    queue_depth: int = 8          # ttcp sender pipeline depth
    verify: bool = True           # ttcp: seq-stamped payload audit
    algo: str = "allreduce"       # collective: barrier|broadcast|allreduce
    engine: str = "nic"           # collective: "host" | "nic"
    variant: str = "ring"         # collective: "ring" | "rd"
    vector_len: int = 1024        # collective: float64 elements per rank
    root: int = 0                 # collective: broadcast root rank
    eager_threshold: int = 4096   # collective: NIC rendezvous cutover

    def __post_init__(self):
        if self.pattern not in ("pairs", "incast", "collective"):
            raise ConfigError(f"workload pattern {self.pattern!r} "
                              f"not in ('pairs', 'incast', 'collective')")
        if self.kind not in ("ttcp", "pingpong"):
            raise ConfigError(f"workload kind {self.kind!r} "
                              f"not in ('ttcp', 'pingpong')")
        if self.verify and self.kind == "ttcp" and self.chunk < 8:
            raise ConfigError("verify needs chunk >= 8 (seq stamp)")
        if self.pattern == "collective":
            self.collective(seed=1)   # validate algo/engine/variant now

    def collective(self, seed: int) -> Optional[CollectiveWorkSpec]:
        if self.pattern != "collective":
            return None
        return CollectiveWorkSpec(
            algo=self.algo, engine=self.engine, variant=self.variant,
            vector_len=self.vector_len, root=self.root, seed=seed,
            eager_threshold=self.eager_threshold)

    def flows(self, hosts: int, seed: int) -> Tuple[FlowSpec, ...]:
        from dataclasses import replace
        if self.pattern == "collective":
            return ()
        if self.pattern == "incast":
            return incast_flows(
                self.senders, hosts, dst=self.dst,
                total_bytes=self.total_bytes, chunk=self.chunk,
                stagger=self.stagger, verify=self.verify,
                queue_depth=self.queue_depth)
        flows = make_flows(
            self.kind, hosts, self.count, seed=seed,
            total_bytes=self.total_bytes, chunk=self.chunk,
            iterations=self.iterations, msg_size=self.msg_size,
            stagger=self.stagger)
        if self.verify and self.kind == "ttcp":
            flows = tuple(replace(f, verify=True,
                                  queue_depth=self.queue_depth)
                          for f in flows)
        return flows

    def to_dict(self) -> Dict:
        out = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadSpec":
        _require_keys(data, [f.name for f in dataclass_fields(cls)],
                      "workload")
        return cls(**data)


@dataclass(frozen=True)
class Expectation:
    """Invariants a scenario run must uphold (checked on the merged
    result of the first sharding; every other sharding is bit-for-bit
    cross-checked against it, so one evaluation covers all)."""

    completes_by_us: Optional[float] = None  # all flows done by this time
    no_app_corruption: bool = True   # verify flows: 0 mismatch/dup/ooo
    no_wr_errors: bool = True        # every CQE status is SUCCESS
    min_checksum_errors: int = 0     # net.checksum_errors >= this
    min_retransmits: int = 0         # tcp.retransmitted_segs >= this
    #: "<where>.<counter>" -> minimum, e.g. {"trunk:0:a2b.delays": 4}
    min_fault: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        out = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            default = {} if f.name == "min_fault" else f.default
            if value != default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "Expectation":
        _require_keys(data, [f.name for f in dataclass_fields(cls)],
                      "expect")
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One gate scenario: a named, seeded, invariant-checked run."""

    name: str
    description: str = ""
    tier: str = "commit"                 # "commit" | "nightly"
    topology: str = "fat-tree"
    hosts: int = 8
    hosts_per_edge: int = 4
    spines: int = 2
    ring_switches: int = 4
    trunk_propagation: float = 1.0
    mtu: int = 16384
    seed: int = 1
    horizon: float = 10_000_000.0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: Tuple[FaultBinding, ...] = ()
    capture_hosts: Tuple[str, ...] = ()
    workers: Tuple[int, ...] = (1, 2)    # shardings to run + cross-check
    timeout_s: float = 60.0              # wall-clock cap in the gate
    expect: Expectation = field(default_factory=Expectation)
    #: metric name -> {"rel": r} or {"abs": a} band for golden compare
    tolerances: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name or "/" in self.name or self.name.startswith("."):
            raise ConfigError(f"bad scenario name {self.name!r}")
        if self.tier not in TIERS:
            raise ConfigError(f"scenario {self.name}: tier {self.tier!r} "
                              f"not in {TIERS}")
        if not self.workers:
            raise ConfigError(f"scenario {self.name}: empty workers list")
        if self.timeout_s <= 0:
            raise ConfigError(f"scenario {self.name}: timeout_s must be "
                              f"positive")
        for tol in self.tolerances.values():
            _require_keys(tol, ("rel", "abs"),
                          f"scenario {self.name}: tolerance")

    def cluster_spec(self) -> ClusterSpec:
        collective = self.workload.collective(self.seed)
        if collective is not None:
            collective.validate_world(self.hosts)
        return ClusterSpec(
            topology=self.topology, hosts=self.hosts,
            hosts_per_edge=self.hosts_per_edge, spines=self.spines,
            ring_switches=self.ring_switches,
            trunk_propagation=self.trunk_propagation,
            flows=self.workload.flows(self.hosts, self.seed),
            horizon=self.horizon, seed=self.seed, mtu=self.mtu,
            capture_hosts=self.capture_hosts, metrics=True,
            faults=self.faults, collective=collective)

    # -- serialisation ---------------------------------------------------

    _SIMPLE = ("description", "tier", "topology", "hosts", "hosts_per_edge",
               "spines", "ring_switches", "trunk_propagation", "mtu",
               "seed", "horizon", "timeout_s")

    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name}
        defaults = {f.name: f.default for f in dataclass_fields(self)}
        for key in self._SIMPLE:
            value = getattr(self, key)
            if value != defaults[key]:
                out[key] = value
        wl = self.workload.to_dict()
        if wl:
            out["workload"] = wl
        if self.faults:
            out["faults"] = [b.to_dict() for b in self.faults]
        if self.capture_hosts:
            out["capture_hosts"] = list(self.capture_hosts)
        if self.workers != (1, 2):
            out["workers"] = list(self.workers)
        exp = self.expect.to_dict()
        if exp:
            out["expect"] = exp
        if self.tolerances:
            out["tolerances"] = {k: dict(v)
                                 for k, v in self.tolerances.items()}
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        allowed = ["name", "workload", "faults", "capture_hosts",
                   "workers", "expect", "tolerances"] + list(cls._SIMPLE)
        _require_keys(data, allowed, "scenario")
        if "name" not in data:
            raise ConfigError("scenario: missing 'name'")
        kwargs: Dict = {k: data[k] for k in cls._SIMPLE if k in data}
        kwargs["name"] = data["name"]
        if "workload" in data:
            kwargs["workload"] = WorkloadSpec.from_dict(data["workload"])
        if "faults" in data:
            kwargs["faults"] = tuple(FaultBinding.from_dict(b)
                                     for b in data["faults"])
        if "capture_hosts" in data:
            kwargs["capture_hosts"] = tuple(data["capture_hosts"])
        if "workers" in data:
            kwargs["workers"] = tuple(int(w) for w in data["workers"])
        if "expect" in data:
            kwargs["expect"] = Expectation.from_dict(data["expect"])
        if "tolerances" in data:
            kwargs["tolerances"] = {str(k): dict(v)
                                    for k, v in data["tolerances"].items()}
        return cls(**kwargs)


# -- file loading --------------------------------------------------------

def _parse_spec_text(text: str, path: str) -> Dict:
    """Parse a scenario file: YAML when available, JSON always.

    PyYAML is optional (every committed spec is also valid to re-save as
    JSON); a ``.yaml`` file without the library is a structured
    :class:`~repro.errors.MissingDependency` — actionable, and rendered
    by the CLIs as a JSON error object — not an ImportError traceback.
    """
    if path.endswith(".json"):
        return json.loads(text)
    try:
        import yaml
    except ImportError:
        raise MissingDependency(
            "pyyaml", f"to load the YAML scenario spec {path!r}",
            "convert the spec to .json (every spec field is plain "
            "JSON data) or `pip install pyyaml`") from None
    data = yaml.safe_load(text)
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: expected a mapping at top level")
    return data


def load_scenario(path: str) -> ScenarioSpec:
    """Load one spec file; its ``name`` must match the filename stem."""
    with open(path, "r", encoding="utf-8") as f:
        data = _parse_spec_text(f.read(), path)
    spec = ScenarioSpec.from_dict(data)
    stem = os.path.splitext(os.path.basename(path))[0]
    if spec.name != stem:
        raise ConfigError(f"{path}: scenario name {spec.name!r} does not "
                          f"match filename stem {stem!r}")
    return spec


def load_corpus(scenarios_dir: str,
                tier: Optional[str] = None,
                names: Optional[List[str]] = None,
                only: Optional[str] = None) -> List[ScenarioSpec]:
    """Load every spec in ``scenarios_dir`` (sorted by name).

    ``tier`` filters (``commit`` excludes nightly-only scenarios);
    ``names`` selects an explicit subset and errors on unknown names;
    ``only`` is an ``fnmatch`` glob over scenario names (applied after
    ``tier``/``names``) so one scenario — or one family, e.g.
    ``'incast_*'`` — can run without replaying the whole corpus.  A
    glob that matches nothing is a ConfigError, not an empty run.
    """
    if not os.path.isdir(scenarios_dir):
        raise ConfigError(f"scenario directory {scenarios_dir!r} not found")
    specs = []
    for entry in sorted(os.listdir(scenarios_dir)):
        if not entry.endswith((".yaml", ".yml", ".json")):
            continue
        specs.append(load_scenario(os.path.join(scenarios_dir, entry)))
    by_name = {s.name: s for s in specs}
    if len(by_name) != len(specs):
        seen: Dict[str, int] = {}
        for s in specs:
            seen[s.name] = seen.get(s.name, 0) + 1
        dupes = sorted(n for n, c in seen.items() if c > 1)
        raise ConfigError(f"duplicate scenario names: {dupes}")
    if names:
        unknown = sorted(set(names) - set(by_name))
        if unknown:
            raise ConfigError(f"unknown scenarios {unknown}; have "
                              f"{sorted(by_name)}")
        specs = [by_name[n] for n in names]  # explicit names beat tier
    elif tier is not None:
        if tier not in TIERS:
            raise ConfigError(f"tier {tier!r} not in {TIERS}")
        if tier == "commit":
            specs = [s for s in specs if s.tier == "commit"]
    if only is not None:
        matched = [s for s in specs if fnmatch.fnmatchcase(s.name, only)]
        if not matched:
            raise ConfigError(
                f"--only {only!r} matches no scenario; candidates: "
                f"{[s.name for s in specs]}")
        specs = matched
    return specs
