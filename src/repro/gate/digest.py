"""Golden digests and invariant evaluation over a cluster result.

A scenario's observable surface is reduced to named digests — per-flow
CQE-stream hashes, per-host wire-trace hashes, a scalar metrics
snapshot, fault counters, and the final simulated time.  Kernel event
counts and packet trace ids are deliberately excluded: both may differ
between the fast and naive simulation paths (and across shardings)
while every paper-level observable stays bit-identical.
"""

from __future__ import annotations

from typing import Dict, List

from ..collectives.group import COLLECTIVE_FLOW_BASE
from ..collectives.job import expected_digest
from ..tools.inspect import (cqe_stream_digest, metrics_snapshot,
                             wire_trace_digest)
from .spec import ScenarioSpec


def scenario_digests(result) -> Dict:
    """The golden record of one run (a :class:`ClusterResult`)."""
    return {
        "cqe": cqe_stream_digest(result.flows),
        "wire": wire_trace_digest(result.wire),
        "metrics": metrics_snapshot(result.metrics or {}),
        "fault_counts": {where: dict(counts)
                         for where, counts in result.fault_counts.items()},
        "now": result.now,
    }


def _counter(metrics, name: str) -> int:
    entry = (metrics or {}).get(name)
    return entry["value"] if entry else 0


def evaluate_invariants(spec: ScenarioSpec, result) -> List[str]:
    """Check the scenario's expectations; return violation strings
    (empty = pass).  Messages name the flow/metric so a failure report
    is actionable without rerunning."""
    exp = spec.expect
    violations: List[str] = []
    for fs in spec.cluster_spec().flows:
        record = result.flows.get(fs.flow_id)
        if record is None:
            violations.append(f"flow {fs.flow_id}: no record")
            continue
        if fs.kind == "ttcp":
            for key, want in (("rx_bytes", fs.total_bytes),
                              ("tx_bytes", fs.total_bytes)):
                got = record.get(key)
                if got != want:
                    violations.append(
                        f"flow {fs.flow_id}: {key}={got} != {want}")
            if fs.verify and exp.no_app_corruption:
                msgs = len(record.get("server_cqes", ()))
                for key, want in (("srv_mismatches", 0), ("srv_dup", 0),
                                  ("srv_ooo", 0), ("srv_verified", msgs)):
                    got = record.get(key)
                    if got != want:
                        violations.append(
                            f"flow {fs.flow_id}: app corruption: "
                            f"{key}={got} (want {want})")
        else:
            got = record.get("echoed")
            if got != fs.iterations:
                violations.append(
                    f"flow {fs.flow_id}: echoed={got} != {fs.iterations}")
        if exp.no_wr_errors:
            for side in ("server_cqes", "client_cqes"):
                bad = [c for c in record.get(side, ())
                       if c[3] != "SUCCESS"]
                if bad:
                    violations.append(
                        f"flow {fs.flow_id}: {len(bad)} non-SUCCESS CQEs "
                        f"in {side} (first: {bad[0]!r})")
        if exp.completes_by_us is not None:
            done = max(record.get("rx_done", 0.0),
                       record.get("tx_done", 0.0))
            if done > exp.completes_by_us:
                violations.append(
                    f"flow {fs.flow_id}: finished at {done:g}us > "
                    f"completes_by_us={exp.completes_by_us:g}us")
    collective = spec.workload.collective(spec.seed)
    if collective is not None:
        # Exactness is absolute: every rank must complete and hold the
        # oracle's bits — faults may stretch time, never change values.
        oracle = expected_digest(collective, spec.hosts)
        for rank in range(spec.hosts):
            record = result.flows.get(COLLECTIVE_FLOW_BASE + rank)
            if record is None:
                violations.append(f"collective rank {rank}: no record")
                continue
            if record.get("status") != "SUCCESS":
                violations.append(f"collective rank {rank}: status="
                                  f"{record.get('status')!r}")
            got = record.get("result_digest")
            if got != oracle:
                violations.append(
                    f"collective rank {rank}: result digest {got} != "
                    f"oracle {oracle}")
    if exp.min_checksum_errors:
        got = _counter(result.metrics, "net.checksum_errors")
        if got < exp.min_checksum_errors:
            violations.append(f"net.checksum_errors={got} < "
                              f"min {exp.min_checksum_errors}")
    if exp.min_retransmits:
        got = _counter(result.metrics, "tcp.retransmitted_segs")
        if got < exp.min_retransmits:
            violations.append(f"tcp.retransmitted_segs={got} < "
                              f"min {exp.min_retransmits}")
    for key, minimum in sorted(exp.min_fault.items()):
        where, _, counter = key.rpartition(".")
        got = result.fault_counts.get(where, {}).get(counter, 0)
        if got < minimum:
            violations.append(
                f"fault_counts[{where}].{counter}={got} < min {minimum}")
    return violations


def _within(a, b, tol: Dict[str, float]) -> bool:
    if a == b:
        return True
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return False
    if "abs" in tol and abs(a - b) <= tol["abs"]:
        return True
    if "rel" in tol and b != 0 and abs(a - b) / abs(b) <= tol["rel"]:
        return True
    return False


def compare_digests(golden: Dict, fresh: Dict,
                    tolerances: Dict[str, Dict[str, float]]) -> List[str]:
    """Diff two digest records; returns divergence strings in a
    deterministic order (the first entry is *the* named first
    divergence).  ``tolerances`` maps metric names to rel/abs bands —
    banded metrics compare their scalar fields loosely and skip the
    sample digest; everything else is exact."""
    diffs: List[str] = []
    for section in ("cqe", "wire"):
        a, b = golden.get(section, {}), fresh.get(section, {})
        for key in sorted(set(a) | set(b)):
            if key not in a:
                diffs.append(f"{section}[{key}]: not in golden")
            elif key not in b:
                diffs.append(f"{section}[{key}]: missing from run")
            elif a[key] != b[key]:
                diffs.append(f"{section}[{key}]: digest {a[key]} -> "
                             f"{b[key]}")
    a, b = golden.get("metrics", {}), fresh.get("metrics", {})
    for name in sorted(set(a) | set(b)):
        if name not in a:
            diffs.append(f"metrics[{name}]: not in golden")
            continue
        if name not in b:
            diffs.append(f"metrics[{name}]: missing from run")
            continue
        tol = tolerances.get(name)
        ga, gb = a[name], b[name]
        if tol is None:
            if ga != gb:
                diffs.append(f"metrics[{name}]: {ga!r} -> {gb!r}")
            continue
        for fld in sorted(set(ga) | set(gb)):
            if fld in ("type", "digest"):
                continue
            if not _within(gb.get(fld), ga.get(fld), tol):
                diffs.append(
                    f"metrics[{name}].{fld}: {ga.get(fld)!r} -> "
                    f"{gb.get(fld)!r} outside tolerance {tol}")
    a, b = golden.get("fault_counts", {}), fresh.get("fault_counts", {})
    if a != b:
        diffs.append(f"fault_counts: {a!r} -> {b!r}")
    if golden.get("now") != fresh.get("now"):
        diffs.append(f"now: {golden.get('now')!r} -> {fresh.get('now')!r}")
    return diffs
