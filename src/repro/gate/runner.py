"""Corpus execution: one forked child per scenario, hard wall-clock caps.

The gate must never hang and never let one bad scenario take down the
run: each scenario executes in its own forked process with a deadline.
A child that wedges is terminated (then killed), a child that dies
mid-run is reaped — either way the scenario becomes a structured
:class:`ScenarioFailed`, and the rest of the corpus keeps going.

Inside the child every requested sharding runs *in-process* (the same
sync protocol, one OS process) — the container is small and the crash
isolation boundary is the scenario, not the shard.  The first sharding
is the reference; every other is required bit-for-bit identical via
:func:`~repro.cluster.assert_equivalent` before invariants are checked.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..cluster import assert_equivalent, run_cluster
from .digest import evaluate_invariants, scenario_digests
from .spec import ScenarioSpec

#: Post-deadline shutdown ladder: SIGTERM, wait this long, then SIGKILL.
KILL_GRACE_S = 2.0


@dataclass
class ScenarioPassed:
    """A scenario that ran all shardings, matched across them, and
    upheld every invariant."""

    name: str
    wall_s: float
    workers: List[int]
    digests: Dict = field(repr=False, default_factory=dict)

    ok = True
    status = "ok"


@dataclass
class ScenarioFailed:
    """A scenario that did not produce a clean result.

    ``status`` is one of:

    * ``invariant_failed`` — ran, but an expectation was violated;
    * ``error`` — raised (including cross-sharding divergence);
    * ``timeout`` — exceeded its wall-clock cap and was terminated;
    * ``crashed`` — the child died without reporting (signal, SIGKILL).
    """

    name: str
    status: str
    detail: str
    wall_s: float
    digests: Optional[Dict] = field(repr=False, default=None)

    ok = False


ScenarioOutcome = Union[ScenarioPassed, ScenarioFailed]


def run_scenario(spec: ScenarioSpec) -> Dict:
    """Run one scenario (in this process): every sharding, cross-check,
    invariants, digests.  Returns a plain dict (pipe-friendly)."""
    cspec = spec.cluster_spec()
    reference = run_cluster(cspec, spec.workers[0])
    for workers in spec.workers[1:]:
        assert_equivalent(reference, run_cluster(cspec, workers))
    violations = evaluate_invariants(spec, reference)
    return {
        "digests": scenario_digests(reference),
        "violations": violations,
        "workers": list(spec.workers),
    }


def _scenario_child(conn, spec: ScenarioSpec) -> None:
    """Forked child body: run, report, exit."""
    try:
        conn.send(("done", run_scenario(spec)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - defensive
            pass
    finally:
        conn.close()


class _Job:
    """One in-flight scenario child."""

    def __init__(self, spec: ScenarioSpec):
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        self.spec = spec
        self.t0 = time.monotonic()
        self.deadline = self.t0 + spec.timeout_s
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_scenario_child,
                                args=(child, spec), daemon=True)
        self.proc.start()
        child.close()

    def wall(self) -> float:
        return time.monotonic() - self.t0

    def reap(self) -> ScenarioOutcome:
        """Collect the child's report (its pipe is readable)."""
        name = self.spec.name
        try:
            msg = self.conn.recv()
        except EOFError:
            self.proc.join(timeout=KILL_GRACE_S)
            return ScenarioFailed(
                name, "crashed",
                f"scenario worker died without reporting "
                f"(exitcode={self.proc.exitcode})", self.wall())
        if msg[0] == "error":
            return ScenarioFailed(name, "error", msg[1], self.wall())
        payload = msg[1]
        if payload["violations"]:
            return ScenarioFailed(
                name, "invariant_failed",
                "\n".join(payload["violations"]), self.wall(),
                digests=payload["digests"])
        return ScenarioPassed(name, self.wall(), payload["workers"],
                              payload["digests"])

    def kill(self) -> ScenarioOutcome:
        """Deadline exceeded: terminate, escalate to SIGKILL, report."""
        self.proc.terminate()
        self.proc.join(timeout=KILL_GRACE_S)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.kill()
            self.proc.join()
        return ScenarioFailed(
            self.spec.name, "timeout",
            f"exceeded wall-clock cap of {self.spec.timeout_s:g}s; "
            f"worker terminated", self.wall())

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=KILL_GRACE_S)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=KILL_GRACE_S)
            if self.proc.is_alive():  # pragma: no cover - defensive
                self.proc.kill()
                self.proc.join()


def run_corpus(scenarios: List[ScenarioSpec], jobs: int = 1,
               progress=None) -> List[ScenarioOutcome]:
    """Run the corpus, at most ``jobs`` scenario children at a time.

    Results come back in corpus order regardless of completion order.
    ``progress`` (optional callable) receives each outcome as it lands.
    """
    from multiprocessing.connection import wait as conn_wait
    jobs = max(1, jobs)
    queue = list(scenarios)
    running: List[_Job] = []
    outcomes: Dict[str, ScenarioOutcome] = {}

    def settle(job: _Job, outcome: ScenarioOutcome) -> None:
        outcomes[job.spec.name] = outcome
        job.close()
        running.remove(job)
        if progress is not None:
            progress(outcome)

    try:
        while queue or running:
            while queue and len(running) < jobs:
                running.append(_Job(queue.pop(0)))
            next_deadline = min(j.deadline for j in running)
            timeout = max(0.0, min(next_deadline - time.monotonic(), 1.0))
            ready = conn_wait([j.conn for j in running], timeout=timeout)
            now = time.monotonic()
            for job in list(running):
                if job.conn in ready:
                    settle(job, job.reap())
                elif now >= job.deadline:
                    settle(job, job.kill())
    finally:
        for job in list(running):  # pragma: no cover - error path
            job.close()
    return [outcomes[s.name] for s in scenarios]
