"""Rendering gate results: terminal tables, JSON objects, drift reports.

The JSON shapes here are the machine interface of the gate (CI parses
them and archives the drift report artifact), so they are stable:
top-level ``ok``/``counts``/``scenarios``, one entry per scenario with
``name``/``status``/``wall_s`` plus failure detail when present.
"""

from __future__ import annotations

from typing import Dict, List

from .golden import GateCheck
from .runner import ScenarioOutcome
from .spec import ScenarioSpec


def _count(rows, status_of) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for row in rows:
        status = status_of(row)
        counts[status] = counts.get(status, 0) + 1
    return counts


def outcomes_json(outcomes: List[ScenarioOutcome]) -> Dict:
    scenarios = []
    for o in outcomes:
        entry: Dict = {"name": o.name, "status": o.status,
                       "wall_s": round(o.wall_s, 3)}
        if not o.ok:
            entry["detail"] = o.detail
        scenarios.append(entry)
    return {
        "ok": all(o.ok for o in outcomes),
        "counts": _count(outcomes, lambda o: o.status),
        "scenarios": scenarios,
    }


def checks_json(checks: List[GateCheck]) -> Dict:
    scenarios = []
    for c in checks:
        entry: Dict = {"name": c.name, "status": c.status,
                       "wall_s": round(c.wall_s, 3)}
        if not c.ok:
            entry["detail"] = c.detail
            if c.divergences:
                entry["divergences"] = c.divergences
        scenarios.append(entry)
    return {
        "ok": all(c.ok for c in checks),
        "counts": _count(checks, lambda c: c.status),
        "scenarios": scenarios,
    }


def _render_rows(rows) -> List[str]:
    width = max((len(r.name) for r in rows), default=4)
    lines = []
    for r in rows:
        mark = "PASS" if r.ok else "FAIL"
        lines.append(f"  {mark}  {r.name:<{width}s}  "
                     f"{r.status:<16s} {r.wall_s:7.2f}s")
        if not r.ok:
            detail = getattr(r, "detail", "")
            for dline in detail.splitlines()[:8]:
                lines.append(f"         {dline}")
    return lines


def render_outcomes(outcomes: List[ScenarioOutcome]) -> str:
    lines = ["gate run:"]
    lines += _render_rows(outcomes)
    counts = _count(outcomes, lambda o: o.status)
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"  => {summary}")
    return "\n".join(lines)


def render_checks(checks: List[GateCheck]) -> str:
    lines = ["gate check:"]
    lines += _render_rows(checks)
    counts = _count(checks, lambda c: c.status)
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"  => {summary}")
    return "\n".join(lines)


def render_scenario_list(specs: List[ScenarioSpec]) -> str:
    lines = ["scenarios:"]
    width = max((len(s.name) for s in specs), default=4)
    for s in specs:
        faults = f", {len(s.faults)} fault binding(s)" if s.faults else ""
        lines.append(f"  {s.name:<{width}s}  [{s.tier:7s}] "
                     f"{s.description or '(no description)'}"
                     f"{faults}")
    return "\n".join(lines)
