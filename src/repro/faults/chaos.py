"""Chaos harness: run a QPIP workload under faults, check invariants.

:func:`run_chaos` builds a two-node QPIP testbed, installs a
:class:`~repro.faults.plan.FaultPlan` on both host links, runs a
sequence-stamped verified workload, and returns a :class:`ChaosResult`
whose :meth:`~ChaosResult.violations` checks the contract the system
must keep **under any wire fault**:

* every byte the application sent is delivered exactly once, intact
  (TCP's loss/corruption/duplication/reordering recovery);
* every posted WR eventually completes — success or a typed error CQE,
  never silence;
* the run is deterministic: the same seed and plan give an identical
  completion trace (:func:`check_determinism`).

Kill scenarios (``kill="rst"`` / ``kill="dma"``) murder the transfer
mid-flight and check the failure semantics instead: the QP lands in
ERROR, *all* outstanding WRs come back as error CQEs, and the
application survives to count them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bench.configs import build_qpip_pair
from ..core import QPTransport
from ..core.qp import QPState
from ..core.wr import WRStatus
from ..errors import QPStateError, VerbsError
from ..net.addresses import Endpoint
from ..sim import RngHub, Simulator
from .inject import install_on_link
from .nicfaults import NicFaultController
from .plan import FaultPlan

CHAOS_PORT = 5099
SEQ_HDR = 8           # big-endian sequence number stamped into each message

KILL_MODES = ("none", "rst", "dma")
WORKLOADS = ("ttcp", "pingpong")
RECOVER_WORKLOADS = ("ttcp", "pingpong", "kvstore")


def message_bytes(seq: int, size: int) -> bytes:
    """The verified payload for message ``seq``: an 8-byte sequence stamp
    followed by a seq-derived fill pattern.  Any undetected corruption,
    loss, duplication, or reordering shows up as a stamp or pattern
    mismatch at the receiver."""
    if size < SEQ_HDR:
        raise VerbsError(f"chaos message size {size} < {SEQ_HDR}")
    fill = (seq * 31 + 7) & 0xFF
    return seq.to_bytes(SEQ_HDR, "big") + bytes([fill]) * (size - SEQ_HDR)


@dataclass
class ChaosResult:
    """Everything one chaos run observed, plus the invariant checker."""

    workload: str
    seed: int
    plan: str
    kill: str
    messages: int
    msg_size: int
    elapsed_us: float = 0.0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    messages_delivered: int = 0
    duplicate_messages: int = 0
    payload_mismatches: int = 0
    client_posted: int = 0
    client_completed: int = 0
    server_posted: int = 0
    server_completed: int = 0
    error_completions: int = 0
    client_qp_state: str = ""
    cqe_trace: List[Tuple] = field(default_factory=list)
    tcp_stats: Dict[str, int] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    recover: bool = False
    forced_restarts: int = 0
    recovery: Dict[str, object] = field(default_factory=dict)
    recovery_trace: List[str] = field(default_factory=list)

    @property
    def killed(self) -> bool:
        return self.kill != "none"

    def violations(self) -> List[str]:
        """Check the chaos invariants; empty list means the run is clean."""
        bad: List[str] = []
        if self.duplicate_messages:
            bad.append(f"{self.duplicate_messages} duplicate deliveries")
        if self.payload_mismatches:
            bad.append(f"{self.payload_mismatches} corrupted deliveries")
        if self.recover:
            # Self-healing contract: every application op succeeds exactly
            # once *despite* the forced QP restarts, and each restart was
            # an actual ERROR transition that the recovery layer healed.
            if self.bytes_delivered != self.bytes_sent:
                bad.append(f"delivered {self.bytes_delivered}B of "
                           f"{self.bytes_sent}B sent")
            if self.messages_delivered != self.messages:
                bad.append(f"delivered {self.messages_delivered} of "
                           f"{self.messages} messages")
            if self.forced_restarts:
                transitions = self.recovery.get("qp_error_transitions", 0)
                if transitions < self.forced_restarts:
                    bad.append(f"only {transitions} QP ERROR transitions "
                               f"for {self.forced_restarts} forced restarts")
                recoveries = self.recovery.get("recoveries", 0)
                if recoveries < self.forced_restarts:
                    bad.append(f"only {recoveries} recoveries for "
                               f"{self.forced_restarts} forced restarts")
            return bad
        if self.client_completed != self.client_posted:
            bad.append(f"client WRs leaked: {self.client_posted} posted, "
                       f"{self.client_completed} completed")
        if self.server_completed != self.server_posted:
            bad.append(f"server WRs leaked: {self.server_posted} posted, "
                       f"{self.server_completed} completed")
        if not self.killed:
            if self.bytes_delivered != self.bytes_sent:
                bad.append(f"delivered {self.bytes_delivered}B of "
                           f"{self.bytes_sent}B sent")
            if self.messages_delivered != self.messages:
                bad.append(f"delivered {self.messages_delivered} of "
                           f"{self.messages} messages")
            if self.error_completions:
                bad.append(f"{self.error_completions} unexpected error CQEs")
        else:
            if self.client_qp_state != QPState.ERROR.name:
                bad.append(f"killed QP ended {self.client_qp_state}, "
                           f"not ERROR")
            if self.bytes_delivered > self.bytes_sent:
                bad.append("delivered more bytes than were sent")
        return bad

    @property
    def ok(self) -> bool:
        return not self.violations()

    def trace_key(self) -> Tuple:
        """The determinism fingerprint: the full completion trace, the
        client connection's TCP counters, and (in ``--recover`` runs) the
        recovery trace and counters."""
        return (tuple(self.cqe_trace), tuple(sorted(self.tcp_stats.items())),
                tuple(self.recovery_trace),
                tuple(sorted((k, v) for k, v in self.recovery.items()
                             if not isinstance(v, dict))))

    def summary(self) -> str:
        mode = f"recover({self.forced_restarts} restarts)" if self.recover \
            else f"kill={self.kill}"
        lines = [
            f"chaos[{self.workload}] seed={self.seed} {mode}",
            f"  plan: {self.plan}",
            f"  {self.messages_delivered}/{self.messages} messages, "
            f"{self.bytes_delivered}/{self.bytes_sent} bytes, "
            f"{self.elapsed_us / 1000.0:.2f} ms",
        ]
        if self.recover:
            rec = self.recovery
            lines.append(
                f"  recovery: {rec.get('qp_error_transitions', 0)} QP "
                f"errors, {rec.get('recoveries', 0)} heals, "
                f"{rec.get('attempts', 0)} connect attempts, "
                f"{rec.get('replayed_wrs', 0)} WRs replayed, "
                f"breaker opens {rec.get('breaker_opens', 0)}, "
                f"watchdog aborts {rec.get('watchdog_aborts', 0)}")
            if self.recovery_trace:
                lines.append("  trace: " + " ".join(self.recovery_trace))
        else:
            lines.append(
                f"  WRs: client {self.client_completed}/{self.client_posted},"
                f" server {self.server_completed}/{self.server_posted}, "
                f"{self.error_completions} errors; QP {self.client_qp_state}")
        if self.fault_counts:
            faults = ", ".join(f"{k}={v}" for k, v in
                               sorted(self.fault_counts.items()) if v)
            lines.append(f"  faults: {faults or 'none fired'}")
        retrans = self.tcp_stats.get("retransmitted_segs", 0)
        rto = self.tcp_stats.get("rto_timeouts", 0)
        lines.append(f"  tcp: {self.tcp_stats.get('segs_out', 0)} segs out, "
                     f"{retrans} retransmitted, {rto} RTOs")
        verdict = self.violations()
        lines.append("  INVARIANTS OK" if not verdict
                     else "  VIOLATIONS: " + "; ".join(verdict))
        return "\n".join(lines)


class _Receiver:
    """Shared receive-side bookkeeping: stamp/pattern verification."""

    def __init__(self, result: ChaosResult):
        self.result = result
        self.seen = set()
        self.next_echo: List[int] = []     # pingpong: seqs owed an echo

    def consume(self, data: bytes) -> None:
        res = self.result
        res.bytes_delivered += len(data)
        res.messages_delivered += 1
        if len(data) < SEQ_HDR:
            res.payload_mismatches += 1
            return
        seq = int.from_bytes(data[:SEQ_HDR], "big")
        if seq in self.seen:
            res.duplicate_messages += 1
            return
        self.seen.add(seq)
        if data != message_bytes(seq, len(data)):
            res.payload_mismatches += 1
        self.next_echo.append(seq)


def run_chaos(seed: int = 1,
              workload: str = "ttcp",
              plan: Optional[FaultPlan] = None,
              messages: int = 64,
              msg_size: int = 4096,
              kill: str = "none",
              kill_at: float = 5_000.0,
              queue_depth: int = 8,
              recv_buffers: int = 16,
              mtu: int = 16384,
              deadline: float = 600_000_000.0,
              recover: bool = False,
              restarts: int = 3) -> ChaosResult:
    """One chaos run.  See the module docstring for the contract.

    ``kill="rst"`` aborts the server's connection at ``kill_at`` (the
    client sees an RST); ``kill="dma"`` breaks the client NIC's host-DMA
    engine from ``kill_at`` on.  Both must leave the client QP in ERROR
    with every posted WR completed.

    ``recover=True`` runs the workload over the self-healing session
    layer (:mod:`repro.recovery`) instead, forcing ``restarts`` QP
    aborts at deterministic points mid-transfer.  The contract inverts:
    the QP *does* die, repeatedly, and every application op must still
    succeed exactly once — bit-for-bit reproducibly per seed.
    """
    if recover:
        if workload not in RECOVER_WORKLOADS:
            raise VerbsError(f"unknown recover workload {workload!r} "
                             f"(one of {RECOVER_WORKLOADS})")
        if kill != "none":
            raise VerbsError("recover mode schedules its own QP restarts; "
                             "combine with a FaultPlan, not with kill=")
        return _run_chaos_recover(seed=seed, workload=workload,
                                  plan=plan if plan is not None
                                  else FaultPlan(),
                                  messages=messages, msg_size=msg_size,
                                  restarts=restarts, mtu=mtu,
                                  deadline=deadline)
    if workload not in WORKLOADS:
        raise VerbsError(f"unknown chaos workload {workload!r} "
                         f"(one of {WORKLOADS})")
    if kill not in KILL_MODES:
        raise VerbsError(f"unknown kill mode {kill!r} (one of {KILL_MODES})")
    plan = plan if plan is not None else FaultPlan()
    sim = Simulator()
    hub = RngHub(seed)
    node_a, node_b, fabric = build_qpip_pair(sim, mtu=mtu)
    result = ChaosResult(workload=workload, seed=seed, plan=plan.describe(),
                         kill=kill, messages=messages, msg_size=msg_size)
    injectors = []
    if len(plan):
        for name, node in (("h0", node_a), ("h1", node_b)):
            injectors.append(install_on_link(
                fabric.host_link(name), node.nic.attachment, plan,
                hub.stream(f"fault.{name}")))
    nic_faults = NicFaultController(node_a.nic, node_a.firmware,
                                    hub.stream("fault.nic"))
    if kill == "dma":
        nic_faults.fail_dma(rate=1.0, start=kill_at)

    trace = result.cqe_trace
    state: dict = {}
    receiver = _Receiver(result)

    def record(side: str, cqe) -> None:
        trace.append((round(sim.now, 3), side, cqe.qp_num, cqe.opcode.value,
                      cqe.status.value, cqe.byte_len))

    def server():
        iface = node_b.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(
            QPTransport.TCP, cq, max_recv_wr=recv_buffers + 4,
            max_send_wr=queue_depth + 4)
        state["server_qp"] = qp
        bufs = []
        for _ in range(recv_buffers):
            buf = yield from iface.register_memory(max(msg_size, 4096))
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        result.server_posted = recv_buffers
        echo_buf = yield from iface.register_memory(max(msg_size, 4096))
        listener = yield from iface.listen(CHAOS_PORT)
        yield from iface.accept(listener, qp)
        state["server_conn"] = node_b.firmware.endpoints[qp.qp_num].conn
        ring = 0            # recv WRs complete in posting order
        dead = False
        while True:
            done = result.messages_delivered >= messages
            if result.server_completed >= result.server_posted \
                    and (done or dead):
                break
            cqes = yield from iface.wait(cq)
            for cqe in cqes:
                result.server_completed += 1
                record("s", cqe)
                if not cqe.ok:
                    if cqe.status is not WRStatus.FLUSHED:
                        result.error_completions += 1
                    dead = True
                    continue
                if cqe.opcode.value != "RECV":
                    continue        # pingpong echo-send completions
                buf = bufs[ring % recv_buffers]
                ring += 1
                receiver.consume(buf.read(cqe.byte_len))
                if workload == "pingpong" and receiver.next_echo:
                    seq = receiver.next_echo.pop(0)
                    echo_buf.write(message_bytes(seq, msg_size))
                    try:
                        yield from iface.post_send(
                            qp, [echo_buf.sge(0, msg_size)])
                        result.server_posted += 1
                    except (QPStateError, VerbsError):
                        dead = True
                if result.messages_delivered < messages and not dead:
                    try:
                        yield from iface.post_recv(qp, [buf.sge()])
                        result.server_posted += 1
                    except (QPStateError, VerbsError):
                        dead = True

    def client():
        iface = node_a.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(
            QPTransport.TCP, cq, max_send_wr=queue_depth + 4,
            max_recv_wr=queue_depth + 4)
        state["client_qp"] = qp
        sbufs = []
        for _ in range(queue_depth):
            sbufs.append((yield from iface.register_memory(msg_size)))
        pong_bufs = []
        if workload == "pingpong":
            for _ in range(min(queue_depth, messages)):
                buf = yield from iface.register_memory(max(msg_size, 4096))
                yield from iface.post_recv(qp, [buf.sge()])
                pong_bufs.append(buf)
        yield sim.timeout(1000)
        yield from iface.connect(qp, Endpoint(node_b.addr, CHAOS_PORT))
        state["client_conn"] = node_a.firmware.endpoints[qp.qp_num].conn
        state["t_start"] = sim.now
        result.client_posted = len(pong_bufs)
        seq = 0
        pongs = 0
        sends_out = 0       # pipelining gate: outstanding *send* WRs only
        dead = False
        while True:
            while (not dead and seq < messages
                   and sends_out < queue_depth):
                buf = sbufs[seq % queue_depth]
                buf.write(message_bytes(seq, msg_size))
                try:
                    yield from iface.post_send(qp, [buf.sge(0, msg_size)])
                except (QPStateError, VerbsError):
                    dead = True
                    break
                result.client_posted += 1
                sends_out += 1
                seq += 1
                result.bytes_sent += msg_size
            if result.client_completed >= result.client_posted and (dead or (
                    seq >= messages
                    and (workload != "pingpong" or pongs >= messages))):
                break
            cqes = yield from iface.wait(cq)
            for cqe in cqes:
                result.client_completed += 1
                record("c", cqe)
                if not cqe.ok:
                    if cqe.status is not WRStatus.FLUSHED:
                        result.error_completions += 1
                    dead = True
                    continue
                if cqe.opcode.value != "RECV":
                    sends_out -= 1
                if cqe.opcode.value == "RECV":
                    pongs += 1
                    if pongs + len(pong_bufs) <= messages and not dead:
                        buf = pong_bufs[(pongs - 1) % len(pong_bufs)]
                        try:
                            yield from iface.post_recv(qp, [buf.sge()])
                            result.client_posted += 1
                        except (QPStateError, VerbsError):
                            dead = True
        state["t_end"] = sim.now
        if not dead:
            yield from iface.disconnect(qp)

    if kill == "rst":
        def do_rst():
            conn = state.get("server_conn")
            if conn is not None:
                conn.abort()
        sim.call_later(kill_at, do_rst)

    procs = [sim.process(server()), sim.process(client())]
    sim.run(until=sim.now + deadline)
    for proc in procs:
        if not proc.triggered:
            raise RuntimeError(
                f"chaos workload hung (seed={seed}, kill={kill}): "
                f"the invariant 'all WRs eventually complete' is broken "
                f"(client {result.client_completed}/{result.client_posted}, "
                f"server {result.server_completed}/{result.server_posted} "
                f"at t={sim.now:.0f}us)")
        if not proc.ok:
            raise proc.value

    result.elapsed_us = state.get("t_end", sim.now) - state.get("t_start", 0.0)
    qp = state.get("client_qp")
    result.client_qp_state = qp.state.name if qp is not None else "NONE"
    conn = state.get("client_conn")
    if conn is not None:
        result.tcp_stats = dataclasses.asdict(conn.stats)
    counts: Dict[str, int] = dict(nic_faults.counts())
    for injector in injectors:
        for key, value in injector.counts().items():
            if key != "seen":
                counts[f"wire_{key}"] = counts.get(f"wire_{key}", 0) + value
    counts["checksum_drops"] = (node_a.firmware.stack.checksum_errors
                                + node_b.firmware.stack.checksum_errors)
    result.fault_counts = counts
    return result


def _run_chaos_recover(seed: int, workload: str, plan: FaultPlan,
                       messages: int, msg_size: int, restarts: int,
                       mtu: int, deadline: float) -> ChaosResult:
    """Chaos with the self-healing layer in the loop.

    Forced restarts are placed at deterministic *progress* points (after
    every ``ops/(restarts+1)``-th application op), not wall-clock times,
    so every restart is guaranteed to land mid-transfer regardless of
    how fast the workload runs under the fault plan.
    """
    sim = Simulator()
    hub = RngHub(seed)
    node_a, node_b, fabric = build_qpip_pair(sim, mtu=mtu)
    result = ChaosResult(workload=workload, seed=seed, plan=plan.describe(),
                         kill="none", messages=messages, msg_size=msg_size,
                         recover=True)
    injectors = []
    if len(plan):
        for name, node in (("h0", node_a), ("h1", node_b)):
            injectors.append(install_on_link(
                fabric.host_link(name), node.nic.attachment, plan,
                hub.stream(f"fault.{name}")))
    state: dict = {}
    if workload == "kvstore":
        procs, finish = _recover_kvstore(sim, hub, node_a, node_b, result,
                                         messages, msg_size, restarts, state)
    else:
        procs, finish = _recover_stream(sim, hub, node_a, node_b, result,
                                        workload, messages, msg_size,
                                        restarts, state)
    sim.run(until=sim.now + deadline)
    for proc in procs:
        if not proc.triggered:
            raise RuntimeError(
                f"chaos recover workload hung (seed={seed}, "
                f"workload={workload}): "
                f"{result.messages_delivered}/{messages} delivered "
                f"at t={sim.now:.0f}us")
        if not proc.ok:
            raise proc.value
    finish()
    result.elapsed_us = state.get("t_end", sim.now) - state.get("t_start", 0.0)
    counts: Dict[str, int] = {}
    for injector in injectors:
        for key, value in injector.counts().items():
            if key != "seen":
                counts[f"wire_{key}"] = counts.get(f"wire_{key}", 0) + value
    counts["checksum_drops"] = (node_a.firmware.stack.checksum_errors
                                + node_b.firmware.stack.checksum_errors)
    result.fault_counts = counts
    return result


def _recover_stream(sim, hub, node_a, node_b, result, workload, messages,
                    msg_size, restarts, state):
    """ttcp/pingpong over a RecoveryManager session with forced restarts."""
    from ..recovery import RecoveryAcceptor, RecoveryManager, RetryPolicy
    receiver = _Receiver(result)
    kill_after = {((k + 1) * messages) // (restarts + 1)
                  for k in range(restarts)}

    def handler(_sid, payload):
        receiver.consume(bytes(payload))
        return payload if workload == "pingpong" else None

    acceptor = RecoveryAcceptor(node_b, port=CHAOS_PORT, handler=handler,
                                max_msg=max(msg_size, 64), name="chaos-srv")
    manager = RecoveryManager(node_a, Endpoint(node_b.addr, CHAOS_PORT),
                              session_id=1,
                              policy=RetryPolicy(max_attempts=12),
                              rng=hub.stream("recovery.client"),
                              max_msg=max(msg_size, 64),
                              heartbeat_interval=10_000.0,
                              name="chaos-cli")
    trace = result.cqe_trace

    def record(cqe):
        trace.append((round(sim.now, 3), "c", cqe.qp_num, cqe.opcode.value,
                      cqe.status.value, cqe.byte_len))

    killed_qps = set()

    def try_kill():
        # A kill only counts when it lands on a live, healthy incarnation
        # — aborting a QP that is already in ERROR (recovery in progress)
        # is a no-op and heals nothing new.  The killed_qps latch keeps
        # two pending kills from burning on one incarnation: the ERROR
        # transition rides the firmware action queue, so qp.state alone
        # cannot tell a just-aborted QP from a healthy one.
        if not manager.connected or manager.qp.state is QPState.ERROR \
                or manager.qp.qp_num in killed_qps:
            return False
        before = node_a.firmware.watchdog_aborts
        node_a.firmware.abort_qp(manager.qp)
        if node_a.firmware.watchdog_aborts == before:
            return False
        killed_qps.add(manager.qp.qp_num)
        result.forced_restarts += 1
        return True

    def client():
        yield from manager.start()
        manager.cq.observers.append(record)
        state["t_start"] = sim.now
        pending_kills = 0
        for seq in range(messages):
            payload = message_bytes(seq, msg_size)
            yield from manager.send(payload)
            result.bytes_sent += msg_size
            if workload == "pingpong":
                echo = yield from manager.recv()
                if echo != payload:
                    result.payload_mismatches += 1
            if (seq + 1) in kill_after:
                pending_kills += 1
            if pending_kills and try_kill():
                pending_kills -= 1
        while pending_kills:
            # A fast sender can outrun recovery; land the remaining kills
            # before draining so every requested restart is exercised.
            if try_kill():
                pending_kills -= 1
            else:
                yield sim.timeout(200.0)
        # Every forced restart must actually heal — a kill whose ledger
        # was already empty would otherwise let close() win the race
        # against the reconnect.
        while manager.report().get("heals", 0) < result.forced_restarts:
            yield sim.timeout(200.0)
        yield from manager.drain()
        state["t_end"] = sim.now
        yield from manager.close()

    def finish():
        rep = manager.report()
        rec = {k: v for k, v in rep.items()
               if isinstance(v, (int, float, str))}
        rec["recoveries"] = rep.get("heals", 0)
        rec["qp_error_transitions"] = node_a.firmware.qp_error_transitions
        rec["server_qp_error_transitions"] = \
            node_b.firmware.qp_error_transitions
        rec["watchdog_aborts"] = (node_a.firmware.watchdog_aborts
                                  + node_b.firmware.watchdog_aborts)
        srv = acceptor.report()
        rec["server_delivered"] = srv.get("delivered", 0)
        result.recovery = rec
        result.recovery_trace = list(manager.trace)
        result.client_posted = rep.get("wrs_posted", 0)
        result.client_completed = rep.get("wrs_completed", 0)
        result.client_qp_state = (manager.qp.state.name
                                  if manager.qp is not None else "NONE")

    sim.process(acceptor.run())
    return [sim.process(client())], finish


def _recover_kvstore(sim, hub, node_a, node_b, result, messages, msg_size,
                     restarts, state):
    """Replicated KV store with reconnect/failover under forced restarts.

    Two independent KvServer replicas run on the server node; the client
    is a :class:`~repro.apps.kvstore.FailoverKvClient`.  PUTs replicate
    to both; GETs alternate two-sided/one-sided and fail over when the
    preferred replica's QP is killed under them.
    """
    from ..apps.kvstore import FailoverKvClient, KvServer
    from ..recovery import RetryPolicy
    servers = [KvServer(node_b, port=CHAOS_PORT + 1 + i) for i in range(2)]
    total_ops = 2 * messages
    kill_after = {((k + 1) * total_ops) // (restarts + 1)
                  for k in range(restarts)}
    vsize = max(SEQ_HDR, min(msg_size, 128))

    killed_qps = set()

    def try_kill(fkv):
        client = fkv._clients.get(fkv.preferred)
        qp = getattr(client, "qp", None) if client is not None else None
        if qp is None or qp.state is QPState.ERROR \
                or qp.qp_num in killed_qps:
            return False
        before = node_a.firmware.watchdog_aborts
        node_a.firmware.abort_qp(qp)
        if node_a.firmware.watchdog_aborts == before:
            return False
        killed_qps.add(qp.qp_num)
        result.forced_restarts += 1
        return True

    def client():
        replicas = []
        for server in servers:
            info = yield server.ready
            replicas.append((node_b.addr, server.port, info))
        fkv = FailoverKvClient(node_a, replicas,
                               policy=RetryPolicy(max_attempts=12),
                               rng=hub.stream("recovery.kv"),
                               op_timeout=100_000.0)
        state["fkv"] = fkv
        op = 0
        pending_kills = 0
        state["t_start"] = sim.now
        for i in range(messages):
            key = b"chaos-%04d" % i
            yield from fkv.put(key, message_bytes(i, vsize))
            result.bytes_sent += vsize
            op += 1
            if op in kill_after:
                pending_kills += 1
            if pending_kills and try_kill(fkv):
                pending_kills -= 1
        for i in range(messages):
            key = b"chaos-%04d" % i
            want = message_bytes(i, vsize)
            if i % 2 == 0:
                got = yield from fkv.get(key)
            else:
                got = yield from fkv.get_rdma(key)
            op += 1
            if got == want:
                result.messages_delivered += 1
                result.bytes_delivered += len(got)
            elif got is not None:
                result.payload_mismatches += 1
            if op in kill_after:
                pending_kills += 1
            if pending_kills and try_kill(fkv):
                pending_kills -= 1
        state["t_end"] = sim.now
        yield from fkv.close()

    def finish():
        fkv = state["fkv"]
        retries = sum(1 for entry in fkv.trace if ":retry:" in entry)
        rec = dict(failovers=fkv.failovers,
                   reconnects=fkv.reconnects,
                   op_attempts=fkv.op_attempts,
                   # Every forced restart must show up as a failed op that
                   # subsequently succeeded: a same-replica retry (PUT
                   # path) or a ring failover (GET path).
                   recoveries=fkv.failovers + retries,
                   qp_error_transitions=node_a.firmware.qp_error_transitions,
                   server_qp_error_transitions=(
                       node_b.firmware.qp_error_transitions),
                   watchdog_aborts=(node_a.firmware.watchdog_aborts
                                    + node_b.firmware.watchdog_aborts),
                   server_reconnects=sum(s.stats.reconnects
                                         for s in servers))
        result.recovery = rec
        result.recovery_trace = list(fkv.trace)

    for server in servers:
        sim.process(server.run())
    return [sim.process(client())], finish


def check_determinism(seed: int = 1, **kwargs) -> Tuple[ChaosResult,
                                                        ChaosResult]:
    """Run the same scenario twice; raise if the traces differ.

    Identical seeds must give bit-identical completion traces and TCP
    counters — the property that makes any chaos failure replayable.
    """
    first = run_chaos(seed=seed, **kwargs)
    second = run_chaos(seed=seed, **kwargs)
    if first.trace_key() != second.trace_key():
        raise AssertionError(
            f"chaos run is not deterministic for seed {seed}: "
            f"trace lengths {len(first.cqe_trace)} vs "
            f"{len(second.cqe_trace)}")
    return first, second
