"""NIC-level fault injection.

Wire faults (see :mod:`repro.faults.inject`) exercise the transport;
these faults exercise the *interface*: the firmware core, the host-DMA
engines, the doorbell FIFO, and the finite SRAM resources the paper's
LANai 9 actually has (§4.1: 2 MB SRAM holding firmware, queues, and the
translation table).

All knobs route through :class:`NicFaultController` so a chaos scenario
can arm them declaratively and read the resulting counters back.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.firmware import QpipFirmware
from ..hw.lanai import ProgrammableNic


@dataclass
class DmaFaultWindow:
    """Fault host-DMA ``data`` transfers inside a time window.

    ``rate``   per-transfer failure probability;
    ``start``/``stop``  active window (µs; stop=None: forever);
    ``count``  at most this many faults (None: unlimited).

    Completion-queue writes (DMA kind ``"cqe"``) are deliberately never
    faulted: CQEs are how errors are *reported*, and the flush guarantee
    (every posted WR gets a completion) depends on them landing.
    """

    rate: float = 1.0
    start: float = 0.0
    stop: Optional[float] = None
    count: Optional[int] = None


class NicFaultController:
    """Arms NIC faults on one interface.

    * :meth:`fail_dma` — host-DMA transfer errors (surface as
      ``LOCAL_DMA_ERROR`` completions and a QP flush);
    * :meth:`stall` / :meth:`stall_at` — wedge the serial firmware core,
      delaying every FSM behind the stall;
    * :meth:`limit_doorbell_fifo` — bound the SRAM doorbell FIFO so
      posted writes can be lost (firmware recovers by rescanning);
    * :meth:`limit_qps` / :meth:`limit_memory_regions` — SRAM resource
      exhaustion: further ``create_qp`` / ``register_memory`` mgmt
      commands fail with :class:`repro.errors.ResourceExhausted`.
    """

    def __init__(self, nic: ProgrammableNic,
                 firmware: Optional[QpipFirmware] = None,
                 rng: Optional[random.Random] = None):
        self.nic = nic
        self.firmware = firmware
        self.rng = rng or random.Random(0)
        self._dma_windows: List[DmaFaultWindow] = []
        nic.dma_fault_hook = self._dma_hook

    # -- DMA faults --------------------------------------------------------

    def _dma_hook(self, kind: str, nbytes: int) -> bool:
        if kind != "data":
            return False      # never fault CQE/notification writes
        now = self.nic.sim.now
        for window in self._dma_windows:
            if now < window.start:
                continue
            if window.stop is not None and now >= window.stop:
                continue
            if window.count is not None and window.count <= 0:
                continue
            if self.rng.random() >= window.rate:
                continue
            if window.count is not None:
                window.count -= 1
            return True
        return False

    def fail_dma(self, rate: float = 1.0, start: float = 0.0,
                 stop: Optional[float] = None,
                 count: Optional[int] = None) -> DmaFaultWindow:
        window = DmaFaultWindow(rate=rate, start=start, stop=stop,
                                count=count)
        self._dma_windows.append(window)
        return window

    # -- firmware stalls ---------------------------------------------------

    def stall(self, duration: float) -> None:
        """Wedge the firmware core for ``duration`` µs, starting now."""
        self.nic.stall(duration)

    def stall_at(self, at: float, duration: float) -> None:
        """Schedule a firmware stall at absolute sim time ``at``."""
        delay = max(0.0, at - self.nic.sim.now)
        self.nic.sim.call_later(delay, self.nic.stall, duration)

    # -- resource limits ---------------------------------------------------

    def limit_doorbell_fifo(self, capacity: Optional[int]) -> None:
        self.nic.doorbell_capacity = capacity

    def _fw(self) -> QpipFirmware:
        if self.firmware is None:
            raise ValueError("NicFaultController needs the firmware handle "
                             "for resource-limit faults")
        return self.firmware

    def limit_qps(self, max_qps: Optional[int]) -> None:
        self._fw().max_qps = max_qps

    def limit_memory_regions(self, max_regions: Optional[int]) -> None:
        self._fw().max_regions = max_regions

    # -- observability -----------------------------------------------------

    def counts(self) -> dict:
        counters = {
            "dma_faults": self.nic.dma_faults,
            "stalls_injected": self.nic.stalls_injected,
            "doorbells_dropped": self.nic.doorbells_dropped,
        }
        if self.firmware is not None:
            counters["mgmt_rejections"] = self.firmware.mgmt_rejections
            counters["dma_wr_errors"] = self.firmware.dma_wr_errors
        return counters
