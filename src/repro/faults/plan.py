"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries.
Each spec names one fault kind and scopes it by probability, burst
length, active time window, and an optional packet predicate.  Plans are
pure data: the same plan can be installed on several injection points,
each with its own RNG stream (see :mod:`repro.faults.inject`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError
from ..net.packet import Packet

FAULT_KINDS = ("drop", "duplicate", "reorder", "delay", "corrupt")


@dataclass
class FaultSpec:
    """One scripted fault.

    ``kind``    one of :data:`FAULT_KINDS`.  ``reorder`` and ``delay``
                are the same mechanism (extra delivery delay lets later
                traffic overtake); they are kept distinct for counters
                and intent.
    ``rate``    per-packet trigger probability in [0, 1].
    ``start``/``stop``  active sim-time window in µs (stop=None: forever).
    ``burst``   once triggered, also hit the next ``burst - 1`` matching
                packets unconditionally (correlated loss / error bursts).
    ``delay``/``jitter``  base extra delay plus uniform jitter (µs), for
                ``delay`` and ``reorder`` kinds.
    ``copies``  extra deliveries for ``duplicate``.
    ``match``   optional predicate on the :class:`Packet`; None = all.
    """

    kind: str
    rate: float = 1.0
    start: float = 0.0
    stop: Optional[float] = None
    burst: int = 1
    delay: float = 0.0
    jitter: float = 0.0
    copies: int = 1
    match: Optional[Callable[[Packet], bool]] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r} "
                              f"(one of {FAULT_KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate {self.rate} outside [0, 1]")
        if self.burst < 1:
            raise ConfigError("burst must be >= 1")
        if self.copies < 1:
            raise ConfigError("copies must be >= 1")
        if self.delay < 0 or self.jitter < 0:
            raise ConfigError("delay and jitter must be non-negative")
        if self.stop is not None and self.stop < self.start:
            raise ConfigError("fault window ends before it starts")

    def active(self, now: float) -> bool:
        return now >= self.start and (self.stop is None or now < self.stop)

    def matches(self, pkt: Packet) -> bool:
        return self.match is None or bool(self.match(pkt))

    def describe(self) -> str:
        window = ""
        if self.start or self.stop is not None:
            stop = "inf" if self.stop is None else f"{self.stop:g}"
            window = f" @[{self.start:g},{stop})us"
        extra = ""
        if self.kind in ("delay", "reorder"):
            extra = f" +{self.delay:g}us" + \
                (f"~{self.jitter:g}" if self.jitter else "")
        elif self.kind == "duplicate" and self.copies > 1:
            extra = f" x{self.copies}"
        burst = f" burst={self.burst}" if self.burst > 1 else ""
        return f"{self.kind} p={self.rate:g}{extra}{burst}{window}"


class FaultPlan:
    """An ordered collection of fault specs with a builder interface::

        plan = (FaultPlan()
                .drop(0.02)
                .corrupt(0.01, start=5_000, stop=50_000)
                .reorder(0.05, delay=40.0, jitter=20.0))
    """

    def __init__(self, specs: Optional[List[FaultSpec]] = None):
        self.specs: List[FaultSpec] = list(specs or [])

    # -- builder -----------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def drop(self, rate: float, **kw) -> "FaultPlan":
        return self.add(FaultSpec("drop", rate=rate, **kw))

    def duplicate(self, rate: float, copies: int = 1, **kw) -> "FaultPlan":
        return self.add(FaultSpec("duplicate", rate=rate, copies=copies, **kw))

    def reorder(self, rate: float, delay: float, jitter: float = 0.0,
                **kw) -> "FaultPlan":
        return self.add(FaultSpec("reorder", rate=rate, delay=delay,
                                  jitter=jitter, **kw))

    def delay(self, rate: float, delay: float, jitter: float = 0.0,
              **kw) -> "FaultPlan":
        return self.add(FaultSpec("delay", rate=rate, delay=delay,
                                  jitter=jitter, **kw))

    def corrupt(self, rate: float, **kw) -> "FaultPlan":
        return self.add(FaultSpec("corrupt", rate=rate, **kw))

    # -- container protocol ------------------------------------------------

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def describe(self) -> str:
        if not self.specs:
            return "no faults"
        return "; ".join(s.describe() for s in self.specs)

    def __repr__(self):
        return f"<FaultPlan {self.describe()}>"


@dataclass(frozen=True)
class FaultEntry:
    """A pure-data, hashable twin of :class:`FaultSpec` (no predicate).

    This is the form fault plans take inside frozen cluster/scenario
    specs: picklable across worker processes and loadable from
    YAML/JSON.  :meth:`to_spec` compiles it back into the live form.
    """

    kind: str
    rate: float = 1.0
    start: float = 0.0
    stop: Optional[float] = None
    burst: int = 1
    delay: float = 0.0
    jitter: float = 0.0
    copies: int = 1

    def __post_init__(self):
        self.to_spec()          # reuse FaultSpec's validation

    def to_spec(self) -> FaultSpec:
        return FaultSpec(kind=self.kind, rate=self.rate, start=self.start,
                         stop=self.stop, burst=self.burst, delay=self.delay,
                         jitter=self.jitter, copies=self.copies)

    def to_dict(self) -> Dict[str, object]:
        """Minimal dict form: defaults are omitted (stable YAML/JSON)."""
        out: Dict[str, object] = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if f.name == "kind" or value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEntry":
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown fault entry keys {sorted(unknown)}")
        return cls(**data)


#: Valid injection-point directions per target kind.
_BINDING_DIRECTIONS = {"host": ("tx", "rx"), "trunk": ("a2b", "b2a")}


@dataclass(frozen=True)
class FaultBinding:
    """A fault plan bound to one named injection point, as pure data.

    ``where`` addresses a link direction in a blueprint fabric:

    * ``host:<name>:tx`` — the direction leaving host ``<name>``'s NIC;
    * ``host:<name>:rx`` — the direction arriving at the NIC;
    * ``trunk:<index>:a2b`` / ``:b2a`` — one direction of trunk
      ``<index>`` in blueprint order.

    The injector RNG stream is named after ``where``, so the same
    binding behaves bit-identically however the fabric is sharded.
    """

    where: str
    entries: Tuple[FaultEntry, ...]

    def __post_init__(self):
        self.target()           # validate the address
        if not self.entries:
            raise ConfigError(f"fault binding {self.where!r} has no entries")

    def target(self) -> Tuple[str, str, str]:
        """Parse ``where`` into ``(kind, selector, direction)``."""
        parts = self.where.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"bad fault binding {self.where!r} (want "
                f"host:<name>:tx|rx or trunk:<index>:a2b|b2a)")
        kind, selector, direction = parts
        if kind not in _BINDING_DIRECTIONS:
            raise ConfigError(f"bad fault target kind {kind!r} in "
                              f"{self.where!r}")
        if direction not in _BINDING_DIRECTIONS[kind]:
            raise ConfigError(
                f"bad direction {direction!r} for {kind} binding "
                f"{self.where!r} (one of {_BINDING_DIRECTIONS[kind]})")
        if kind == "trunk" and not selector.isdigit():
            raise ConfigError(f"trunk selector must be an index: "
                              f"{self.where!r}")
        return kind, selector, direction

    def plan(self) -> FaultPlan:
        return FaultPlan([e.to_spec() for e in self.entries])

    def rng_stream_name(self) -> str:
        return f"fault.{self.where}"

    def to_dict(self) -> Dict[str, object]:
        return {"where": self.where,
                "plan": [e.to_dict() for e in self.entries]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultBinding":
        unknown = set(data) - {"where", "plan"}
        if unknown:
            raise ConfigError(f"unknown fault binding keys "
                              f"{sorted(unknown)}")
        if "where" not in data or "plan" not in data:
            raise ConfigError("fault binding needs 'where' and 'plan'")
        return cls(where=data["where"],
                   entries=tuple(FaultEntry.from_dict(e)
                                 for e in data["plan"]))
