"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries.
Each spec names one fault kind and scopes it by probability, burst
length, active time window, and an optional packet predicate.  Plans are
pure data: the same plan can be installed on several injection points,
each with its own RNG stream (see :mod:`repro.faults.inject`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..errors import ConfigError
from ..net.packet import Packet

FAULT_KINDS = ("drop", "duplicate", "reorder", "delay", "corrupt")


@dataclass
class FaultSpec:
    """One scripted fault.

    ``kind``    one of :data:`FAULT_KINDS`.  ``reorder`` and ``delay``
                are the same mechanism (extra delivery delay lets later
                traffic overtake); they are kept distinct for counters
                and intent.
    ``rate``    per-packet trigger probability in [0, 1].
    ``start``/``stop``  active sim-time window in µs (stop=None: forever).
    ``burst``   once triggered, also hit the next ``burst - 1`` matching
                packets unconditionally (correlated loss / error bursts).
    ``delay``/``jitter``  base extra delay plus uniform jitter (µs), for
                ``delay`` and ``reorder`` kinds.
    ``copies``  extra deliveries for ``duplicate``.
    ``match``   optional predicate on the :class:`Packet`; None = all.
    """

    kind: str
    rate: float = 1.0
    start: float = 0.0
    stop: Optional[float] = None
    burst: int = 1
    delay: float = 0.0
    jitter: float = 0.0
    copies: int = 1
    match: Optional[Callable[[Packet], bool]] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r} "
                              f"(one of {FAULT_KINDS})")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate {self.rate} outside [0, 1]")
        if self.burst < 1:
            raise ConfigError("burst must be >= 1")
        if self.copies < 1:
            raise ConfigError("copies must be >= 1")
        if self.delay < 0 or self.jitter < 0:
            raise ConfigError("delay and jitter must be non-negative")
        if self.stop is not None and self.stop < self.start:
            raise ConfigError("fault window ends before it starts")

    def active(self, now: float) -> bool:
        return now >= self.start and (self.stop is None or now < self.stop)

    def matches(self, pkt: Packet) -> bool:
        return self.match is None or bool(self.match(pkt))

    def describe(self) -> str:
        window = ""
        if self.start or self.stop is not None:
            stop = "inf" if self.stop is None else f"{self.stop:g}"
            window = f" @[{self.start:g},{stop})us"
        extra = ""
        if self.kind in ("delay", "reorder"):
            extra = f" +{self.delay:g}us" + \
                (f"~{self.jitter:g}" if self.jitter else "")
        elif self.kind == "duplicate" and self.copies > 1:
            extra = f" x{self.copies}"
        burst = f" burst={self.burst}" if self.burst > 1 else ""
        return f"{self.kind} p={self.rate:g}{extra}{burst}{window}"


class FaultPlan:
    """An ordered collection of fault specs with a builder interface::

        plan = (FaultPlan()
                .drop(0.02)
                .corrupt(0.01, start=5_000, stop=50_000)
                .reorder(0.05, delay=40.0, jitter=20.0))
    """

    def __init__(self, specs: Optional[List[FaultSpec]] = None):
        self.specs: List[FaultSpec] = list(specs or [])

    # -- builder -----------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def drop(self, rate: float, **kw) -> "FaultPlan":
        return self.add(FaultSpec("drop", rate=rate, **kw))

    def duplicate(self, rate: float, copies: int = 1, **kw) -> "FaultPlan":
        return self.add(FaultSpec("duplicate", rate=rate, copies=copies, **kw))

    def reorder(self, rate: float, delay: float, jitter: float = 0.0,
                **kw) -> "FaultPlan":
        return self.add(FaultSpec("reorder", rate=rate, delay=delay,
                                  jitter=jitter, **kw))

    def delay(self, rate: float, delay: float, jitter: float = 0.0,
              **kw) -> "FaultPlan":
        return self.add(FaultSpec("delay", rate=rate, delay=delay,
                                  jitter=jitter, **kw))

    def corrupt(self, rate: float, **kw) -> "FaultPlan":
        return self.add(FaultSpec("corrupt", rate=rate, **kw))

    # -- container protocol ------------------------------------------------

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def describe(self) -> str:
        if not self.specs:
            return "no faults"
        return "; ".join(s.describe() for s in self.specs)

    def __repr__(self):
        return f"<FaultPlan {self.describe()}>"
