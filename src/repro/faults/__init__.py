"""Deterministic fault injection (`repro.faults`).

The QPIP paper's reliability claims — "TCP/IP provides needed features
such as ... end-to-end flow control, congestion control, and a
well-provisioned protection model" (§1) — are only believable if the
simulated system is actually exercised under faults.  This package
provides three layers:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan`: scripted
  drop / duplicate / reorder / delay / corrupt specs with rates, bursts,
  time windows, and packet predicates;
* :mod:`repro.faults.inject` — compiles a plan plus a named
  :class:`repro.sim.RngHub` stream into a per-packet hook installable on
  any link direction or switch egress port;
* :mod:`repro.faults.nicfaults` — NIC-level faults: firmware stalls,
  host-DMA errors, doorbell-FIFO overflow, QP-slot / translation-entry
  exhaustion;
* :mod:`repro.faults.chaos` — a chaos harness: runs a workload under a
  plan and checks the invariants (delivered == sent, no duplicates, all
  WRs complete, identical seeds give identical traces).

Everything is driven by seeded RNG streams: the same seed and plan give
a bit-identical run.
"""

from .chaos import ChaosResult, check_determinism, run_chaos
from .inject import FaultInjector, corrupt_packet, install_on_link, \
    install_on_switch
from .nicfaults import DmaFaultWindow, NicFaultController
from .plan import FaultBinding, FaultEntry, FaultPlan, FaultSpec

__all__ = [
    "ChaosResult",
    "DmaFaultWindow",
    "FaultBinding",
    "FaultEntry",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NicFaultController",
    "check_determinism",
    "corrupt_packet",
    "install_on_link",
    "install_on_switch",
    "run_chaos",
]
