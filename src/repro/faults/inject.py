"""Compile a :class:`FaultPlan` into a per-packet hook.

A :class:`FaultInjector` is callable with the hook contract of
:func:`repro.fabric.link.run_packet_hooks`, so one class serves every
injection point in the system: either direction of any host or trunk
link, and any switch egress port.  All randomness comes from the RNG
stream handed in at construction (usually a named
:class:`repro.sim.RngHub` stream), so runs are reproducible.

Corruption never mutates a packet in place: payload and header objects
are shared with the sender's retransmission state, so the injector
substitutes a shallow copy carrying a bit-flipped payload.  The flipped
bit makes the real transport checksum fail at the receiver; the intact
original stays available for the retransmit that recovers the stream.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..fabric.link import FaultVerdict, Link
from ..net.packet import BytesPayload, Packet
from .plan import FaultPlan


def corrupt_packet(pkt: Packet, rng: random.Random) -> Packet:
    """A shallow copy of ``pkt`` with one payload bit flipped.

    Packets without payload bytes (pure ACKs, SYNs) get the
    ``corrupted`` flag instead, which forces the checksum check at the
    receiver to fail — modelling a header bit-flip without corrupting
    the shared header objects.
    """
    clone = pkt.copy_shallow()
    if pkt.payload.length > 0:
        data = bytearray(pkt.payload.to_bytes())
        index = rng.randrange(len(data))
        data[index] ^= 1 << rng.randrange(8)
        clone.payload = BytesPayload(bytes(data))
    else:
        clone.corrupted = True
    return clone


class FaultInjector:
    """A fault plan bound to one injection point and one RNG stream."""

    def __init__(self, sim, plan: FaultPlan, rng: random.Random):
        self.sim = sim
        self.plan = plan
        self.rng = rng
        self._burst_left: Dict[int, int] = {}
        self.packets_seen = 0
        self.drops = 0
        self.duplicates = 0
        self.delays = 0
        self.corruptions = 0
        self._detach = None

    def __call__(self, pkt: Packet) -> Optional[FaultVerdict]:
        self.packets_seen += 1
        now = self.sim.now
        copies = 0
        delay = 0.0
        replacement: Optional[Packet] = None
        corrupted = False
        current = pkt
        for index, spec in enumerate(self.plan.specs):
            if not spec.active(now) or not spec.matches(current):
                continue
            left = self._burst_left.get(index, 0)
            if left > 0:
                self._burst_left[index] = left - 1
            else:
                if self.rng.random() >= spec.rate:
                    continue
                if spec.burst > 1:
                    self._burst_left[index] = spec.burst - 1
            if spec.kind == "drop":
                self.drops += 1
                return FaultVerdict(drop=True)
            if spec.kind == "duplicate":
                copies += spec.copies
                self.duplicates += spec.copies
            elif spec.kind in ("delay", "reorder"):
                extra = spec.delay
                if spec.jitter:
                    extra += self.rng.random() * spec.jitter
                delay += extra
                self.delays += 1
            elif spec.kind == "corrupt":
                current = corrupt_packet(current, self.rng)
                replacement = current
                corrupted = True
                self.corruptions += 1
        if copies or delay or replacement is not None:
            return FaultVerdict(copies=copies, delay=delay,
                                packet=replacement, corrupted=corrupted)
        return None

    def remove(self) -> None:
        """Uninstall from wherever :func:`install_on_link` /
        :func:`install_on_switch` put this injector."""
        if self._detach is not None:
            self._detach()
            self._detach = None

    def counts(self) -> Dict[str, int]:
        return {"seen": self.packets_seen, "drops": self.drops,
                "duplicates": self.duplicates, "delays": self.delays,
                "corruptions": self.corruptions}

    def __repr__(self):
        return (f"<FaultInjector {self.plan.describe()} "
                f"seen={self.packets_seen} drop={self.drops} "
                f"dup={self.duplicates} delay={self.delays} "
                f"corrupt={self.corruptions}>")


def install_on_link(link: Link, from_attachment, plan: FaultPlan,
                    rng: random.Random) -> FaultInjector:
    """Install a plan on the link direction leaving ``from_attachment``."""
    injector = FaultInjector(link.sim, plan, rng)
    link.add_hook(from_attachment, injector)
    injector._detach = lambda: link.remove_hook(from_attachment, injector)
    return injector


def install_on_switch(switch, port: int, plan: FaultPlan,
                      rng: random.Random) -> FaultInjector:
    """Install a plan on a switch egress port (Myrinet or Ethernet)."""
    injector = FaultInjector(switch.sim, plan, rng)
    switch.add_egress_hook(port, injector)
    injector._detach = lambda: switch.remove_egress_hook(port, injector)
    return injector
