"""Scatter/gather entries and registered buffer convenience wrappers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..errors import MemoryRegistrationError
from .address_space import AddressSpace, VirtualRange
from .registration import Access, MemoryRegion, TranslationTable


@dataclass(frozen=True, slots=True)
class SGE:
    """Scatter/gather entry: (virtual address, length, registration key)."""

    addr: int
    length: int
    lkey: int

    def __post_init__(self):
        if self.length < 0:
            raise MemoryRegistrationError("SGE length must be non-negative")


def sg_total(sges: Iterable[SGE]) -> int:
    return sum(sge.length for sge in sges)


class RegisteredBuffer:
    """A registered, page-backed buffer — the common-case WR target.

    Wraps allocation + registration and offers read/write by offset.
    """

    def __init__(self, aspace: AddressSpace, table: TranslationTable,
                 nbytes: int, access: Access = Access.local()):
        self.aspace = aspace
        self.range: VirtualRange = aspace.alloc(nbytes)
        self.region: MemoryRegion = table.register(
            aspace, self.range.addr, nbytes, access)

    @property
    def addr(self) -> int:
        return self.range.addr

    @property
    def length(self) -> int:
        return self.range.length

    @property
    def lkey(self) -> int:
        return self.region.lkey

    def sge(self, offset: int = 0, length: int | None = None) -> SGE:
        if length is None:
            length = self.length - offset
        if offset < 0 or offset + length > self.length:
            raise MemoryRegistrationError("SGE outside buffer bounds")
        return SGE(self.addr + offset, length, self.lkey)

    def write(self, data: bytes, offset: int = 0) -> None:
        if offset + len(data) > self.length:
            raise MemoryRegistrationError("write beyond buffer end")
        self.aspace.write(self.addr + offset, data)

    def read(self, length: int | None = None, offset: int = 0) -> bytes:
        if length is None:
            length = self.length - offset
        if offset + length > self.length:
            raise MemoryRegistrationError("read beyond buffer end")
        return self.aspace.read(self.addr + offset, length)


class BufferPool:
    """A pool of equal-size registered buffers (receive rings use this)."""

    def __init__(self, aspace: AddressSpace, table: TranslationTable,
                 count: int, size: int, access: Access = Access.local()):
        if count <= 0 or size <= 0:
            raise MemoryRegistrationError("pool needs positive count and size")
        self.buffers: List[RegisteredBuffer] = [
            RegisteredBuffer(aspace, table, size, access) for _ in range(count)]
        self._free = list(reversed(range(count)))

    @property
    def available(self) -> int:
        return len(self._free)

    def take(self) -> RegisteredBuffer:
        if not self._free:
            raise MemoryRegistrationError("buffer pool exhausted")
        return self.buffers[self._free.pop()]

    def give_back(self, buf: RegisteredBuffer) -> None:
        idx = self.buffers.index(buf)
        if idx in self._free:
            raise MemoryRegistrationError("double free of pool buffer")
        self._free.append(idx)
