"""Virtual address spaces over sparse physical memory.

The QPIP driver registers application buffers and hands the NIC a
virtual→physical translation table (paper §4.1: "a facility for
translating virtual addresses in WRs to physical addresses for use in
DMA transactions").  We model that faithfully:

* a per-host :class:`PhysicalMemory` allocates page frames;
* each process owns an :class:`AddressSpace` with a page table;
* frames hold real bytes, but **sparsely** — pages never written read as
  zeros and cost nothing, so multi-hundred-megabyte benchmark transfers
  stay cheap while data-integrity tests remain bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import MemoryRegistrationError

PAGE_SIZE = 4096
PAGE_SHIFT = 12


@dataclass(frozen=True)
class VirtualRange:
    """A contiguous range of virtual addresses."""

    addr: int
    length: int

    @property
    def end(self) -> int:
        return self.addr + self.length

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.addr <= addr and addr + length <= self.end


class PhysicalMemory:
    """Sparse physical memory: frames materialize on first write."""

    def __init__(self, size_bytes: int = 1 << 30, name: str = "mem"):
        self.name = name
        self.size_bytes = size_bytes
        self.total_frames = size_bytes >> PAGE_SHIFT
        self._next_frame = 0
        self._frames: Dict[int, bytearray] = {}

    @property
    def frames_allocated(self) -> int:
        return self._next_frame

    @property
    def frames_materialized(self) -> int:
        return len(self._frames)

    def alloc_frames(self, count: int) -> List[int]:
        if self._next_frame + count > self.total_frames:
            raise MemoryRegistrationError(
                f"{self.name}: out of physical memory "
                f"({self._next_frame}+{count} > {self.total_frames} frames)")
        frames = list(range(self._next_frame, self._next_frame + count))
        self._next_frame += count
        return frames

    def write_frame(self, ppn: int, offset: int, data: bytes) -> None:
        if not 0 <= offset <= PAGE_SIZE or offset + len(data) > PAGE_SIZE:
            raise MemoryRegistrationError("frame write out of bounds")
        frame = self._frames.get(ppn)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[ppn] = frame
        frame[offset:offset + len(data)] = data

    def read_frame(self, ppn: int, offset: int, length: int) -> Optional[bytes]:
        """Read from a frame; None means the frame is all zeros (never written)."""
        if not 0 <= offset <= PAGE_SIZE or offset + length > PAGE_SIZE:
            raise MemoryRegistrationError("frame read out of bounds")
        frame = self._frames.get(ppn)
        if frame is None:
            return None
        return bytes(frame[offset:offset + length])


class AddressSpace:
    """A process's virtual address space with an on-demand page table."""

    _BASE_VA = 0x1000_0000

    def __init__(self, phys: PhysicalMemory, name: str = "proc"):
        self.phys = phys
        self.name = name
        self._page_table: Dict[int, int] = {}
        self._next_va = self._BASE_VA
        self.allocations: List[VirtualRange] = []

    def alloc(self, nbytes: int, align: int = PAGE_SIZE) -> VirtualRange:
        """Allocate a page-backed virtual range (always page aligned)."""
        if nbytes <= 0:
            raise MemoryRegistrationError(f"allocation size must be positive, got {nbytes}")
        if align % PAGE_SIZE:
            raise MemoryRegistrationError("alignment must be a multiple of the page size")
        va = (self._next_va + align - 1) // align * align
        npages = (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT
        frames = self.phys.alloc_frames(npages)
        first_vpn = va >> PAGE_SHIFT
        for i, ppn in enumerate(frames):
            self._page_table[first_vpn + i] = ppn
        self._next_va = va + npages * PAGE_SIZE
        rng = VirtualRange(va, nbytes)
        self.allocations.append(rng)
        return rng

    def is_mapped(self, va: int, length: int) -> bool:
        if length <= 0:
            return False
        first = va >> PAGE_SHIFT
        last = (va + length - 1) >> PAGE_SHIFT
        return all(vpn in self._page_table for vpn in range(first, last + 1))

    def translate(self, va: int) -> int:
        """Virtual address -> physical address (single byte)."""
        vpn = va >> PAGE_SHIFT
        if vpn not in self._page_table:
            raise MemoryRegistrationError(
                f"{self.name}: unmapped virtual address {va:#x}")
        return (self._page_table[vpn] << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def fragments(self, va: int, length: int) -> List[Tuple[int, int]]:
        """Split [va, va+length) into physically-contiguous (pa, len) runs."""
        out: List[Tuple[int, int]] = []
        remaining = length
        cursor = va
        while remaining > 0:
            page_off = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - page_off)
            pa = self.translate(cursor)
            if out and out[-1][0] + out[-1][1] == pa:
                out[-1] = (out[-1][0], out[-1][1] + chunk)
            else:
                out.append((pa, chunk))
            cursor += chunk
            remaining -= chunk
        return out

    # -- data access ------------------------------------------------------

    def write(self, va: int, data: bytes) -> None:
        cursor = va
        pos = 0
        while pos < len(data):
            page_off = cursor & (PAGE_SIZE - 1)
            chunk = min(len(data) - pos, PAGE_SIZE - page_off)
            vpn = cursor >> PAGE_SHIFT
            if vpn not in self._page_table:
                raise MemoryRegistrationError(
                    f"{self.name}: write to unmapped address {cursor:#x}")
            self.phys.write_frame(self._page_table[vpn], page_off,
                                  data[pos:pos + chunk])
            cursor += chunk
            pos += chunk

    def read(self, va: int, length: int) -> bytes:
        out = bytearray(length)
        cursor = va
        pos = 0
        any_data = False
        while pos < length:
            page_off = cursor & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - page_off)
            vpn = cursor >> PAGE_SHIFT
            if vpn not in self._page_table:
                raise MemoryRegistrationError(
                    f"{self.name}: read from unmapped address {cursor:#x}")
            data = self.phys.read_frame(self._page_table[vpn], page_off, chunk)
            if data is not None:
                out[pos:pos + chunk] = data
                any_data = True
            cursor += chunk
            pos += chunk
        return bytes(out) if any_data or length == 0 else bytes(length)

    def is_all_zero(self, va: int, length: int) -> bool:
        """True when no page in the range was ever written (fast path)."""
        first = va >> PAGE_SHIFT
        last = (va + length - 1) >> PAGE_SHIFT if length else first
        for vpn in range(first, last + 1):
            ppn = self._page_table.get(vpn)
            if ppn is None:
                raise MemoryRegistrationError(
                    f"{self.name}: query of unmapped address {vpn << PAGE_SHIFT:#x}")
            if ppn in self.phys._frames:
                return False
        return True
