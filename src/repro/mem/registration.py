"""Memory registration: the contract between verbs users and the NIC.

Work requests may only reference *registered* memory.  Registration pins
the pages and installs virtual→physical translations in a per-NIC
:class:`TranslationTable` (the paper's management FSM handles
"establishment of registered memory bindings").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Flag, auto
from typing import Dict, List, Tuple

from ..errors import MemoryRegistrationError
from .address_space import AddressSpace


class Access(Flag):
    """Access rights attached to a memory region."""

    LOCAL_READ = auto()
    LOCAL_WRITE = auto()
    REMOTE_READ = auto()
    REMOTE_WRITE = auto()

    @classmethod
    def local(cls) -> "Access":
        return cls.LOCAL_READ | cls.LOCAL_WRITE


@dataclass(frozen=True)
class MemoryRegion:
    """A registered region; ``lkey`` names it in work requests."""

    lkey: int
    aspace: AddressSpace = field(repr=False)
    addr: int
    length: int
    access: Access

    @property
    def end(self) -> int:
        return self.addr + self.length

    def covers(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end


class TranslationTable:
    """The NIC-resident registry of registered regions."""

    def __init__(self, name: str = "tpt"):
        self.name = name
        self._regions: Dict[int, MemoryRegion] = {}
        self._keys = itertools.count(0x100)

    def __len__(self) -> int:
        return len(self._regions)

    def register(self, aspace: AddressSpace, addr: int, length: int,
                 access: Access = Access.local()) -> MemoryRegion:
        if length <= 0:
            raise MemoryRegistrationError("cannot register an empty region")
        if not aspace.is_mapped(addr, length):
            raise MemoryRegistrationError(
                f"{self.name}: region [{addr:#x},+{length}) is not fully mapped")
        region = MemoryRegion(next(self._keys), aspace, addr, length, access)
        self._regions[region.lkey] = region
        return region

    def deregister(self, lkey: int) -> None:
        if lkey not in self._regions:
            raise MemoryRegistrationError(f"{self.name}: unknown lkey {lkey:#x}")
        del self._regions[lkey]

    def lookup(self, lkey: int) -> MemoryRegion:
        region = self._regions.get(lkey)
        if region is None:
            raise MemoryRegistrationError(f"{self.name}: unknown lkey {lkey:#x}")
        return region

    def check(self, lkey: int, addr: int, length: int, access: Access) -> MemoryRegion:
        """Validate an access; raises on bad key, bounds, or rights."""
        region = self.lookup(lkey)
        if not region.covers(addr, length):
            raise MemoryRegistrationError(
                f"{self.name}: access [{addr:#x},+{length}) outside region "
                f"[{region.addr:#x},+{region.length})")
        if access & ~region.access:
            raise MemoryRegistrationError(
                f"{self.name}: access {access} not permitted on region {lkey:#x}")
        return region

    def translate(self, lkey: int, addr: int, length: int,
                  access: Access) -> List[Tuple[int, int]]:
        """Return (physical addr, length) DMA fragments for a checked access."""
        region = self.check(lkey, addr, length, access)
        return region.aspace.fragments(addr, length)
