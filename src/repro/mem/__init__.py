"""Memory subsystem: address spaces, registration, scatter/gather buffers."""

from .address_space import (PAGE_SIZE, AddressSpace, PhysicalMemory,
                            VirtualRange)
from .buffers import SGE, BufferPool, RegisteredBuffer, sg_total
from .registration import Access, MemoryRegion, TranslationTable

__all__ = [
    "PAGE_SIZE", "AddressSpace", "PhysicalMemory", "VirtualRange",
    "SGE", "BufferPool", "RegisteredBuffer", "sg_total",
    "Access", "MemoryRegion", "TranslationTable",
]
