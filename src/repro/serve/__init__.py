"""Simulation-as-a-service: a supervised, self-healing job server.

``repro serve`` is the ROADMAP's "millions of users" pillar made
operational: a long-running, stdlib-only HTTP JSON service that accepts
:class:`~repro.gate.ScenarioSpec` jobs and executes them on a pool of
forked, supervised workers — the same crash-isolation machinery the
gate and cluster layers use, with the robustness the paper argues
hardware offload buys a host: stay responsive *under* load, don't
collapse *because of* it.

The pieces (each its own module, each independently testable):

* :mod:`~repro.serve.job` — the job model and service configuration;
* :mod:`~repro.serve.store` — crash-safe journal + snapshot store;
* :mod:`~repro.serve.admission` — bounded queue, per-client caps,
  ``Retry-After`` load shedding;
* :mod:`~repro.serve.supervisor` — forked attempts, backoff restarts,
  deadline escalation, poison-job quarantine;
* :mod:`~repro.serve.server` — the HTTP front end, drain, recovery;
* :mod:`~repro.serve.client` / :mod:`~repro.serve.loadgen` — the API
  client and the open-loop Poisson load generator.

See docs/serve.md for the API and the failure matrix.
"""

from .admission import AdmissionQueue
from .client import JobTimeout, ServeClient, ServeUnavailable
from .job import (DONE, FAILED, INTERRUPTED, QUARANTINED, QUEUED, RUNNING,
                  Job, ServeConfig, job_error)
from .loadgen import (calibrate, merge_into_bench_report, render_loadgen,
                      run_loadgen)
from .server import ReproServer
from .store import JobStore, read_journal
from .supervisor import Supervisor, WorkerAttempt, exec_scenario

__all__ = [
    "Job", "ServeConfig", "job_error",
    "QUEUED", "RUNNING", "DONE", "FAILED", "QUARANTINED", "INTERRUPTED",
    "JobStore", "read_journal",
    "AdmissionQueue",
    "Supervisor", "WorkerAttempt", "exec_scenario",
    "ReproServer",
    "ServeClient", "ServeUnavailable", "JobTimeout",
    "run_loadgen", "calibrate", "merge_into_bench_report",
    "render_loadgen",
]
