"""A small stdlib HTTP client for the serve API.

Used by ``repro serve submit``/``status``, the Poisson load generator,
the CI smoke test, and the chaos tests — one implementation of the
JSON-over-HTTP contract instead of four.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Dict, Optional, Tuple
from urllib.parse import urlparse

from ..errors import ReproError


class ServeUnavailable(ReproError):
    """The server did not answer (connection refused, socket error)."""


class JobTimeout(ReproError):
    """A job did not reach a terminal state within the wait budget."""


class ServeClient:
    """One server endpoint; a fresh connection per request (the load
    generator runs many of these concurrently across threads)."""

    def __init__(self, url: str, timeout_s: float = 10.0):
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ReproError(f"serve url must be http://host:port, "
                             f"got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout_s = timeout_s

    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> Tuple[int, Dict, Dict]:
        """Returns (status, parsed JSON body, response headers)."""
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout_s)
        try:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} \
                if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"ok": False, "raw": raw.decode(errors="replace")}
            return resp.status, data, dict(resp.getheaders())
        except (ConnectionError, OSError) as exc:
            raise ServeUnavailable(
                f"{method} {self.host}:{self.port}{path}: {exc}") from exc
        finally:
            conn.close()

    # -- the API surface -------------------------------------------------

    def submit(self, scenario: Dict, key: Optional[str] = None,
               client: Optional[str] = None) -> Tuple[int, Dict, Dict]:
        body: Dict = {"scenario": scenario}
        if key is not None:
            body["key"] = key
        if client is not None:
            body["client"] = client
        return self.request("POST", "/jobs", body)

    def job(self, job_id: str) -> Tuple[int, Dict]:
        status, data, _ = self.request("GET", f"/jobs/{job_id}")
        return status, data

    def jobs(self) -> Dict:
        return self.request("GET", "/jobs")[1]

    def wait(self, job_id: str, timeout_s: float = 60.0,
             poll_s: float = 0.05) -> Dict:
        """Poll until the job is terminal; returns the job dict."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status, data = self.job(job_id)
            if status == 200:
                job = data["job"]
                if job["state"] not in ("queued", "running"):
                    return job
            time.sleep(poll_s)
        raise JobTimeout(f"job {job_id} not terminal after {timeout_s}s")

    def healthz(self) -> Tuple[int, Dict]:
        status, data, _ = self.request("GET", "/healthz")
        return status, data

    def readyz(self) -> Tuple[int, Dict]:
        status, data, _ = self.request("GET", "/readyz")
        return status, data

    def metricz(self) -> Dict:
        return self.request("GET", "/metricz")[1]

    def drain(self) -> Tuple[int, Dict]:
        status, data, _ = self.request("POST", "/drain")
        return status, data

    def wait_ready(self, timeout_s: float = 15.0) -> None:
        deadline = time.monotonic() + timeout_s
        last = "no answer"
        while time.monotonic() < deadline:
            try:
                status, _ = self.readyz()
                if status == 200:
                    return
                last = f"readyz={status}"
            except ServeUnavailable as exc:
                last = str(exc)
            time.sleep(0.05)
        raise ServeUnavailable(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout_s}s ({last})")
