"""The supervisor: forked job attempts, restarts, backoff, quarantine.

Each job attempt runs in its own forked worker process (the same
crash-isolation machinery as :mod:`repro.gate`'s corpus runner and
:class:`repro.cluster.ClusterRunner`'s shard workers) so a crashing or
wedging scenario can never take the service down.  The supervisor
watches every attempt's pipe and deadline and applies, in order:

* **worker death** (SIGKILL, segfault, OOM) → the scenario's circuit
  breaker (:class:`repro.recovery.CircuitBreaker` on a wall-clock shim)
  records a failure; while it stays closed the job is re-queued with
  exponential backoff + jitter (:class:`repro.recovery.RetryPolicy`
  semantics, interpreted in seconds);
* **wedge** (per-job deadline exceeded) → terminate, escalate to
  SIGKILL, then treated exactly like a death;
* **poison job** — ``breaker_deaths`` consecutive deaths of one
  scenario trip the breaker: the job is *quarantined* (terminal,
  structured error) instead of crash-looping the pool, and further
  jobs of that scenario are quarantined at dispatch until the cooldown
  admits a half-open probe;
* **in-worker exception / invariant violation** — deterministic
  failures are terminal immediately (a retry would reproduce them) and
  do not count against the breaker: the worker process was healthy.

Everything terminal is recorded exactly once via the store's
terminal-state guard, no matter how attempts raced.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

from ..gate.runner import KILL_GRACE_S, run_scenario
from ..gate.spec import ScenarioSpec
from ..recovery.breaker import BreakerState, CircuitBreaker
from ..recovery.policy import RetryPolicy
from .admission import AdmissionQueue
from .job import (DONE, FAILED, INTERRUPTED, QUARANTINED, QUEUED, RUNNING,
                  Job, ServeConfig, job_error)
from .store import JobStore


def _death_detail(exitcode) -> str:
    """Render an exit status the way :class:`~repro.cluster.WorkerDied`
    does: name the killing signal when there was one."""
    if isinstance(exitcode, int) and exitcode < 0:
        import signal as _signal
        try:
            return f"killed by {_signal.Signals(-exitcode).name}"
        except ValueError:  # pragma: no cover - unknown signal
            return f"killed by signal {-exitcode}"
    return f"exitcode={exitcode}"


def exec_scenario(spec_dict: Dict) -> Dict:
    """The default executor: validate and run one scenario in-process
    (the gate's single-scenario entry point), returning its bundle."""
    return run_scenario(ScenarioSpec.from_dict(spec_dict))


def _attempt_child(conn, spec_dict: Dict, executor) -> None:
    """Forked attempt body: run, report, exit."""
    try:
        conn.send(("done", executor(spec_dict)))
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__,
                       f"{exc}\n{traceback.format_exc(limit=8)}"))
        except (BrokenPipeError, OSError):  # pragma: no cover - defensive
            pass
    finally:
        conn.close()


class WorkerAttempt:
    """One forked execution attempt of one job."""

    def __init__(self, job: Job, executor):
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        self.job = job
        self.t0 = time.monotonic()
        self.deadline = self.t0 + job.timeout_s
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_attempt_child,
                                args=(child, job.spec, executor),
                                daemon=True)
        self.proc.start()
        child.close()

    @property
    def pid(self) -> int:
        return self.proc.pid

    def wall(self) -> float:
        return time.monotonic() - self.t0

    def kill(self) -> None:
        """Terminate → grace → SIGKILL → join: the attempt WILL die."""
        self.proc.terminate()
        self.proc.join(timeout=KILL_GRACE_S)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join()

    def close(self) -> None:
        self.conn.close()
        self.proc.join(timeout=KILL_GRACE_S)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.kill()


class _WallClockUs:
    """Adapts the wall clock to the sim-clock interface (µs ``now``)
    that :class:`~repro.recovery.CircuitBreaker` expects."""

    @property
    def now(self) -> float:
        return time.monotonic() * 1e6


class Supervisor:
    """Owns the worker pool; the only writer of job state transitions."""

    def __init__(self, store: JobStore, queue: AdmissionQueue,
                 metrics, config: ServeConfig, executor=None):
        self.store = store
        self.queue = queue
        self.metrics = metrics
        self.config = config
        self.executor = executor or exec_scenario
        self.policy = RetryPolicy(
            base_delay=config.retry_base_s,
            max_delay=config.retry_max_s,
            multiplier=2.0, jitter="full",
            max_attempts=max(2, config.max_attempts),
            first_delay=config.retry_base_s / 2.0)
        self._rng = random.Random(config.seed)
        self._clock = _WallClockUs()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._delays: Dict[str, object] = {}      # job id -> delay iter
        self._running: Dict[object, WorkerAttempt] = {}  # conn -> attempt
        self._retries: List[Tuple[float, int, Job]] = []  # (due, n, job)
        self._retry_n = 0
        self._stop = threading.Event()
        self._frozen = False
        self._draining = False
        self._last_snapshot = time.monotonic()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._loop,
                                        name="serve-supervisor",
                                        daemon=True)
        self._thread.start()

    def running_jobs(self) -> List[Job]:
        return [a.job for a in list(self._running.values())]

    def worker_pids(self) -> List[int]:
        return [a.pid for a in list(self._running.values())]

    def breaker(self, scenario: str) -> CircuitBreaker:
        b = self._breakers.get(scenario)
        if b is None:
            b = CircuitBreaker(
                self._clock,
                failure_threshold=self.config.breaker_deaths,
                reset_timeout=self.config.breaker_reset_s * 1e6,
                name=f"serve.{scenario}")
            self._breakers[scenario] = b
        return b

    def drain(self, timeout_s: Optional[float] = None) -> int:
        """Graceful shutdown: no new dispatches, wait for running jobs,
        then kill stragglers as ``interrupted``.  Returns the straggler
        count (0 = fully clean)."""
        timeout_s = (self.config.drain_timeout_s
                     if timeout_s is None else timeout_s)
        self._draining = True
        self.queue.close()
        deadline = time.monotonic() + timeout_s
        while self._running and time.monotonic() < deadline:
            time.sleep(0.02)
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s + KILL_GRACE_S * 2)
        stragglers = list(self._running.values())
        for attempt in stragglers:
            attempt.kill()
            self._finish(
                attempt.job, INTERRUPTED,
                error=job_error("drain_timeout",
                                f"still running after the "
                                f"{timeout_s:g}s drain window"))
            attempt.close()
        self._running.clear()
        self.store.snapshot()
        return len(stragglers)

    def freeze_and_kill(self) -> None:
        """The in-process stand-in for SIGKILLing the whole server
        (tests): stop supervising *without* any further journal writes,
        then kill the orphan-to-be workers."""
        self._frozen = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=KILL_GRACE_S * 4)
        for attempt in self._running.values():
            attempt.proc.kill()
            attempt.proc.join()
            attempt.conn.close()
        self._running.clear()

    # -- the supervision loop --------------------------------------------

    def _loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait
        while not self._stop.is_set():
            if self._frozen:
                return
            self._dispatch()
            timeout = self._tick_timeout()
            conns = list(self._running)
            if conns:
                ready = set(conn_wait(conns, timeout=timeout))
            else:
                time.sleep(timeout)
                ready = set()
            if self._frozen:
                return
            now = time.monotonic()
            for conn, attempt in list(self._running.items()):
                if conn in ready:
                    self._reap(attempt)
                elif now >= attempt.deadline:
                    self._wedged(attempt)
            self._gauges()
            if (time.monotonic() - self._last_snapshot
                    >= self.config.snapshot_interval_s):
                self.store.snapshot()
                self._last_snapshot = time.monotonic()

    def _tick_timeout(self) -> float:
        timeout = 0.05
        now = time.monotonic()
        for attempt in self._running.values():
            timeout = min(timeout, attempt.deadline - now)
        if self._retries:
            timeout = min(timeout, self._retries[0][0] - now)
        return max(0.005, timeout)

    def _due_retry(self) -> Optional[Job]:
        if self._retries and self._retries[0][0] <= time.monotonic():
            return heapq.heappop(self._retries)[2]
        return None

    def _dispatch(self) -> None:
        while len(self._running) < self.config.pool_size:
            job = self._due_retry()
            if job is None and not self._draining:
                job = self.queue.take()
            if job is None:
                return
            if not self.breaker(job.scenario).allow():
                b = self.breaker(job.scenario)
                self._finish(job, QUARANTINED, error=job_error(
                    "quarantined",
                    f"scenario {job.scenario!r} is quarantined after "
                    f"{b.consecutive_failures} consecutive worker "
                    f"deaths; cooldown "
                    f"{b.cooldown_remaining / 1e6:.1f}s remains"))
                continue
            job.attempts += 1
            attempt = WorkerAttempt(job, self.executor)
            self.store.transition(
                job.id, RUNNING, attempts=job.attempts,
                started_at=time.time(), worker_pid=attempt.pid)
            self._running[attempt.conn] = attempt
            if job.attempts == 1:
                self.metrics.histogram("serve.wait_s").add(
                    max(0.0, time.time() - job.submitted_at))

    def _reap(self, attempt: WorkerAttempt) -> None:
        job = attempt.job
        try:
            msg = attempt.conn.recv()
        except (EOFError, ConnectionResetError):
            # Join first: before it, exitcode can still read None even
            # though the process is dead (the pipe EOF races the wait).
            attempt.proc.join(timeout=KILL_GRACE_S)
            self._attempt_died(
                attempt, f"worker died without reporting "
                         f"({_death_detail(attempt.proc.exitcode)})",
                wedged=False)
            return
        del self._running[attempt.conn]
        attempt.close()
        self.breaker(job.scenario).record_success()
        self.queue.note_service_time(attempt.wall())
        if msg[0] == "done":
            result = msg[1]
            violations = (result or {}).get("violations")
            if violations:
                self._finish(job, FAILED, result=result,
                             error=job_error("invariant_failed",
                                             "; ".join(violations)))
            else:
                self._finish(job, DONE, result=result)
        else:   # ("error", kind, message): deterministic, no retry
            self._finish(job, FAILED,
                         error=job_error(msg[1], msg[2]))

    def _wedged(self, attempt: WorkerAttempt) -> None:
        attempt.kill()
        self.metrics.counter("serve.worker_wedged").add()
        self._attempt_died(
            attempt,
            f"wedged: exceeded the {attempt.job.timeout_s:g}s attempt "
            f"deadline; terminated", wedged=True)

    def _attempt_died(self, attempt: WorkerAttempt, detail: str,
                      wedged: bool) -> None:
        job = attempt.job
        del self._running[attempt.conn]
        attempt.close()
        self.metrics.counter("serve.worker_deaths").add()
        breaker = self.breaker(job.scenario)
        breaker.record_failure()
        if breaker.state is BreakerState.OPEN:
            self._finish(job, QUARANTINED, error=job_error(
                "quarantined",
                f"scenario {job.scenario!r} quarantined: "
                f"{breaker.consecutive_failures} consecutive worker "
                f"deaths (last: {detail})"))
            return
        if job.attempts >= job.max_attempts:
            self._finish(job, FAILED, error=job_error(
                "retry_exhausted",
                f"attempt {job.attempts}/{job.max_attempts} died: "
                f"{detail}"))
            return
        delays = self._delays.get(job.id)
        if delays is None:
            delays = self._delays[job.id] = self.policy.delays(self._rng)
        try:
            delay = next(delays)
        except StopIteration:  # pragma: no cover - attempts cap first
            delay = self.policy.max_delay
        self.store.transition(job.id, QUEUED, worker_pid=None,
                              error=job_error("retrying", detail))
        self._retry_n += 1
        heapq.heappush(self._retries,
                       (time.monotonic() + delay, self._retry_n, job))
        self.metrics.counter("serve.retries").add()

    def _finish(self, job: Job, state: str, result=None,
                error=None) -> None:
        changed = self.store.transition(
            job.id, state, finished_at=time.time(), worker_pid=None,
            result=result, error=error)
        self._delays.pop(job.id, None)
        if not changed:     # already terminal: the exactly-once guard
            return
        self.queue.release_client(job.client)
        self.metrics.counter(f"serve.{state}").add()
        self.metrics.histogram("serve.total_s").add(
            max(0.0, time.time() - job.submitted_at))

    def _gauges(self) -> None:
        self.metrics.gauge("serve.queue_depth").set(self.queue.depth())
        self.metrics.gauge("serve.running").set(len(self._running))
