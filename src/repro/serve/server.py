"""`repro serve`: the long-running simulation service (stdlib-only).

A :class:`ReproServer` wires the crash-safe :class:`~.store.JobStore`,
the :class:`~.admission.AdmissionQueue`, and the
:class:`~.supervisor.Supervisor` behind a threaded HTTP JSON API:

==========================  ===========================================
``POST /jobs``              submit ``{"key", "client", "scenario"}``;
                            202 accepted / 200 already-known (idempotent
                            by ``key``) / 409 same key, different spec /
                            400 invalid spec / 429 shed (+``Retry-After``)
                            / 503 draining
``GET /jobs``               summary list (``?key=`` looks one up)
``GET /jobs/<id>``          one job's full record
``GET /healthz``            liveness: 200 while the process runs
``GET /readyz``             readiness: 503 while draining or supervisor
                            dead — load balancers stop routing here
``GET /metricz``            service metrics snapshot
``POST /drain``             start a graceful drain (same as SIGTERM)
==========================  ===========================================

On boot the server recovers from the journal: completed results load
as-is, queued jobs re-enter the queue, and jobs caught mid-run by the
previous crash are re-queued (attempts permitting) or marked
``interrupted``.  On SIGTERM it drains: readiness flips, submissions
get 503, running jobs finish (bounded), the store snapshots, then the
process exits 0.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import ReproError
from ..gate.spec import ScenarioSpec
from ..obs.metrics import MetricsRegistry
from .admission import AdmissionQueue
from .job import (INTERRUPTED, QUEUED, RUNNING, Job, ServeConfig,
                  job_error)
from .store import JobStore
from .supervisor import Supervisor

ENDPOINT_FILE = "serve.json"

_BRIEF_FIELDS = ("id", "key", "client", "scenario", "state", "attempts")


class ReproServer:
    """The service: store + admission + supervisor + HTTP front end."""

    def __init__(self, config: ServeConfig, executor=None,
                 fsync: bool = True):
        self.config = config
        self.metrics = MetricsRegistry()
        self.store = JobStore(config.data_dir, fsync=fsync)
        self.queue = AdmissionQueue(config.max_queue, config.client_cap,
                                    config.pool_size)
        self.supervisor = Supervisor(self.store, self.queue, self.metrics,
                                     config, executor=executor)
        self.draining = False
        self._stopped = False
        self._submit_lock = threading.Lock()
        self._recover()
        self.http = ThreadingHTTPServer((config.host, config.port),
                                        _Handler)
        self.http.daemon_threads = True
        self.http.repro = self
        self._http_thread: Optional[threading.Thread] = None

    # -- boot recovery ---------------------------------------------------

    def _recover(self) -> None:
        """Re-queue or mark-interrupted whatever the last life left."""
        for job in self.store.all_jobs():
            if job.state == RUNNING:
                if job.attempts < job.max_attempts:
                    self.store.transition(
                        job.id, QUEUED, worker_pid=None,
                        error=job_error("interrupted_retry",
                                        "server restarted mid-run; "
                                        "re-queued"))
                    self.queue.restore(job)
                    self.metrics.counter("serve.recovered_requeued").add()
                else:
                    self.store.transition(
                        job.id, INTERRUPTED, worker_pid=None,
                        finished_at=time.time(),
                        error=job_error("interrupted",
                                        "server restarted mid-run with "
                                        "no attempts left"))
                    self.metrics.counter(
                        "serve.recovered_interrupted").add()
            elif job.state == QUEUED:
                self.queue.restore(job)
                self.metrics.counter("serve.recovered_requeued").add()

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        return self.http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReproServer":
        self.supervisor.start()
        self._http_thread = threading.Thread(
            target=self.http.serve_forever, kwargs={"poll_interval": 0.1},
            name="serve-http", daemon=True)
        self._http_thread.start()
        endpoint = os.path.join(self.config.data_dir, ENDPOINT_FILE)
        with open(endpoint, "w", encoding="utf-8") as f:
            json.dump({"url": self.url, "host": self.config.host,
                       "port": self.port, "pid": os.getpid()}, f)
            f.write("\n")
        return self

    def drain_and_stop(self, timeout_s: Optional[float] = None) -> int:
        """Graceful shutdown; returns straggler count (0 = clean).
        Idempotent: the SIGTERM path and ``POST /drain`` may both call
        it."""
        with self._submit_lock:
            if self._stopped:
                return 0
            self._stopped = True
        self.draining = True
        stragglers = self.supervisor.drain(timeout_s)
        self.http.shutdown()
        self.http.server_close()
        self.store.close()
        return stragglers

    def simulate_crash(self) -> None:
        """Tests' stand-in for ``SIGKILL`` of the whole server: stop
        everything abruptly with no drain, no snapshot, and no further
        journal writes, leaving only what was already fsync'd."""
        self.supervisor.freeze_and_kill()
        self.http.shutdown()
        self.http.server_close()
        self.store._journal.close()

    # -- request handling ------------------------------------------------

    def handle(self, method: str, path: str,
               body: Optional[bytes]) -> Tuple[int, Dict, Dict]:
        parsed = urlparse(path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        if method == "GET":
            if parts == ["healthz"]:
                return 200, {"ok": True, "pid": os.getpid()}, {}
            if parts == ["readyz"]:
                return self._readyz()
            if parts == ["metricz"]:
                return self._metricz()
            if parts == ["jobs"]:
                if "key" in query:
                    job = self.store.lookup_key(query["key"][0])
                    if job is None:
                        return 404, _err("not_found",
                                         "no job with that key"), {}
                    return 200, {"ok": True, "job": job.to_dict()}, {}
                return self._jobs_index()
            if len(parts) == 2 and parts[0] == "jobs":
                job = self.store.get(parts[1])
                if job is None:
                    return 404, _err("not_found",
                                     f"no job {parts[1]!r}"), {}
                return 200, {"ok": True, "job": job.to_dict()}, {}
            return 404, _err("not_found", f"no route {parsed.path!r}"), {}
        if method == "POST":
            if parts == ["jobs"]:
                return self._submit(body)
            if parts == ["drain"]:
                threading.Thread(target=self._deferred_drain,
                                 daemon=True).start()
                return 202, {"ok": True, "draining": True}, {}
            return 404, _err("not_found", f"no route {parsed.path!r}"), {}
        return 405, _err("method_not_allowed", f"no {method} here"), {}

    def _deferred_drain(self) -> None:
        time.sleep(0.1)     # let the 202 flush first
        self.drain_and_stop()

    def _readyz(self) -> Tuple[int, Dict, Dict]:
        alive = (self.supervisor._thread is not None
                 and self.supervisor._thread.is_alive())
        ready = alive and not self.draining
        body = {"ok": ready, "draining": self.draining,
                "supervisor_alive": alive,
                "pool_size": self.config.pool_size,
                "max_queue": self.config.max_queue,
                "queue_depth": self.queue.depth()}
        return (200 if ready else 503), body, {}

    def _metricz(self) -> Tuple[int, Dict, Dict]:
        body = {"ok": True,
                "metrics": self.metrics.snapshot(),
                "queue_depth": self.queue.depth(),
                "queue_high_water": self.queue.high_water,
                "jobs": self.store.counts()}
        return 200, body, {}

    def _jobs_index(self) -> Tuple[int, Dict, Dict]:
        jobs = [{f: getattr(j, f) for f in _BRIEF_FIELDS}
                for j in self.store.all_jobs()]
        return 200, {"ok": True, "counts": self.store.counts(),
                     "jobs": jobs}, {}

    def _submit(self, body: Optional[bytes]) -> Tuple[int, Dict, Dict]:
        try:
            payload = json.loads(body or b"")
        except json.JSONDecodeError as exc:
            return 400, _err("bad_json", f"request body: {exc}"), {}
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("scenario"), dict):
            return 400, _err("bad_request",
                             'body must be {"scenario": {...}, '
                             '"key": opt, "client": opt}'), {}
        raw = payload["scenario"]
        try:
            spec = ScenarioSpec.from_dict(raw)
        except ReproError as exc:
            return 400, _err(type(exc).__name__, str(exc)), {}
        if self.draining:
            return 503, _err("draining",
                             "server is draining; not accepting jobs",
                             retry_after_s=60), {"Retry-After": "60"}
        client = str(payload.get("client", "anonymous"))
        timeout_s = float(raw.get("timeout_s",
                                  self.config.default_timeout_s))
        with self._submit_lock:
            key = str(payload.get("key") or f"job-{spec.name}-"
                      f"{self.store._next_job}")
            existing = self.store.lookup_key(key)
            if existing is not None:
                if existing.spec != spec.to_dict():
                    return 409, _err(
                        "key_conflict",
                        f"key {key!r} was already submitted with a "
                        f"different scenario spec",
                        job_id=existing.id), {}
                self.metrics.counter("serve.duplicate").add()
                return 200, {"ok": True, "duplicate": True,
                             "job": existing.to_dict()}, {}
            job = Job(id=self.store.new_job_id(), key=key, client=client,
                      scenario=spec.name, spec=spec.to_dict(),
                      max_attempts=self.config.max_attempts,
                      timeout_s=timeout_s, submitted_at=time.time())
            shed = self.queue.check(job)
            if shed is not None:
                self.metrics.counter(
                    f"serve.shed.{shed['kind']}").add()
                retry = shed.get("retry_after_s", 1)
                return (429, {"ok": False, "error": shed},
                        {"Retry-After": str(retry)})
            self.store.submit(job)
            self.queue.restore(job)
            self.metrics.counter("serve.accepted").add()
            return 202, {"ok": True, "job": job.to_dict()}, {}


def _err(kind: str, message: str, **extra) -> Dict:
    return {"ok": False, "error": job_error(kind, message, **extra)}


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    def log_message(self, *args) -> None:    # quiet: metrics, not stderr
        pass

    def _dispatch(self, method: str) -> None:
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            body = self.rfile.read(length)
        try:
            code, payload, headers = self.server.repro.handle(
                method, self.path, body)
        except Exception as exc:   # noqa: BLE001 - the 500 boundary
            code, payload, headers = 500, _err(
                "internal", f"{type(exc).__name__}: {exc}"), {}
        data = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:        # JSON 405, not http.server's
        self._dispatch("PUT")        # HTML 501

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")
