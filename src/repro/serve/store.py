"""Crash-safe job store: append-only JSONL journal + atomic snapshot.

Durability model (the server may be SIGKILLed at any instant):

* every state change is one JSON line appended to ``journal.jsonl`` and
  fsync'd before the change is acknowledged anywhere — the journal is
  the source of truth;
* ``snapshot.json`` is a periodic compaction written atomically
  (tmp file + fsync + rename) recording the journal sequence number it
  incorporates; recovery loads the snapshot, then replays only journal
  records with a higher sequence number;
* a torn final journal line (the crash landed mid-append) is detected
  by the JSON parse and replay stops there — everything acknowledged
  before the crash is intact; recovery then truncates the journal back
  to the last intact record, because a fragment left in place would
  have the next append concatenated onto it, producing a merged line
  that a later boot would misread as a fresh torn tail (silently
  dropping an acknowledged record) or reject as interior corruption.

Exactly-once results ride on the same mechanism: a job in a terminal
state refuses further transitions, so a duplicate "done" from a racing
or retried worker is dropped, and the journal holds at most one ``done``
record per job id.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional

from ..errors import ConfigError
from .job import TERMINAL_STATES, Job

JOURNAL = "journal.jsonl"
SNAPSHOT = "snapshot.json"

#: Job fields a "state" journal record may carry besides the state.
_STATE_FIELDS = ("attempts", "started_at", "finished_at", "result",
                 "error", "worker_pid")


class JobStore:
    """All known jobs, indexed by id and idempotency key, persisted."""

    def __init__(self, root: str, fsync: bool = True):
        self.root = root
        self.fsync = fsync
        self.jobs: Dict[str, Job] = {}
        self.by_key: Dict[str, str] = {}
        self._lock = threading.RLock()
        self._seq = 0
        self._next_job = 1
        self.recovered_torn_tail = False
        os.makedirs(root, exist_ok=True)
        self._recover()
        self._journal = open(self.journal_path, "a", encoding="utf-8")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, JOURNAL)

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, SNAPSHOT)

    # -- persistence -----------------------------------------------------

    def _append(self, record: Dict) -> None:
        self._seq += 1
        record["seq"] = self._seq
        self._journal.write(json.dumps(record, sort_keys=True) + "\n")
        self._journal.flush()
        if self.fsync:
            os.fsync(self._journal.fileno())

    def snapshot(self) -> str:
        """Atomically persist the full in-memory state (compaction)."""
        with self._lock:
            payload = {
                "version": 1,
                "seq": self._seq,
                "next_job": self._next_job,
                "jobs": [self.jobs[j].to_dict()
                         for j in sorted(self.jobs)],
            }
            tmp = self.snapshot_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(payload, f, sort_keys=True)
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.snapshot_path)
            return self.snapshot_path

    def _recover(self) -> None:
        snap_seq = 0
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, encoding="utf-8") as f:
                snap = json.load(f)
            snap_seq = self._seq = snap["seq"]
            self._next_job = snap["next_job"]
            for data in snap["jobs"]:
                job = Job.from_dict(data)
                self.jobs[job.id] = job
                self.by_key[job.key] = job.id
        valid_bytes = 0
        for record, end in _scan_journal(self.journal_path,
                                         tolerate_torn_tail=True):
            if record is None:          # torn final line: crash mid-append
                self.recovered_torn_tail = True
                break
            valid_bytes = end
            if record["seq"] <= snap_seq:
                continue                # already in the snapshot
            self._seq = max(self._seq, record["seq"])
            self._apply(record)
        if self.recovered_torn_tail:
            # The fragment was written but never fsync-acknowledged, so
            # dropping it loses nothing — and it MUST go before the
            # journal reopens for append (see the module docstring).
            with open(self.journal_path, "r+b") as f:
                f.truncate(valid_bytes)
                os.fsync(f.fileno())

    def _apply(self, record: Dict) -> None:
        if record["ev"] == "submit":
            job = Job.from_dict(record["job"])
            if job.id not in self.jobs:
                self.jobs[job.id] = job
                self.by_key[job.key] = job.id
            num = _job_number(job.id)
            if num is not None:
                self._next_job = max(self._next_job, num + 1)
        elif record["ev"] == "state":
            job = self.jobs.get(record["id"])
            if job is None or job.state in TERMINAL_STATES:
                return
            job.state = record["state"]
            for fld in _STATE_FIELDS:
                if fld in record:
                    setattr(job, fld, record[fld])

    # -- mutation (live path) --------------------------------------------

    def new_job_id(self) -> str:
        with self._lock:
            jid = f"j{self._next_job}"
            self._next_job += 1
            return jid

    def submit(self, job: Job) -> Job:
        """Register a new job (caller holds the idempotency decision)."""
        with self._lock:
            if job.id in self.jobs:
                raise ConfigError(f"duplicate job id {job.id!r}")
            if job.key in self.by_key:
                raise ConfigError(f"duplicate job key {job.key!r}")
            self.jobs[job.id] = job
            self.by_key[job.key] = job.id
            self._append({"ev": "submit", "job": job.to_dict()})
            return job

    def transition(self, job_id: str, state: str, **fields) -> bool:
        """Move a job to ``state``; False when it is already terminal
        (the exactly-once guard) or unknown."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.state in TERMINAL_STATES:
                return False
            record = {"ev": "state", "id": job_id, "state": state}
            job.state = state
            for fld, value in fields.items():
                if fld not in _STATE_FIELDS:
                    raise ConfigError(f"transition: unknown field {fld!r}")
                setattr(job, fld, value)
                record[fld] = value
            self._append(record)
            return True

    # -- queries ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    def lookup_key(self, key: str) -> Optional[Job]:
        with self._lock:
            jid = self.by_key.get(key)
            return self.jobs.get(jid) if jid is not None else None

    def all_jobs(self) -> List[Job]:
        with self._lock:
            return [self.jobs[j] for j in sorted(self.jobs, key=_sort_key)]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for job in self.jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def close(self) -> None:
        with self._lock:
            self._journal.close()


def _job_number(job_id: str) -> Optional[int]:
    if job_id.startswith("j") and job_id[1:].isdigit():
        return int(job_id[1:])
    return None


def _sort_key(job_id: str):
    num = _job_number(job_id)
    return (0, num, job_id) if num is not None else (1, 0, job_id)


def read_journal(path: str, tolerate_torn_tail: bool = False):
    """Yield journal records in order; with ``tolerate_torn_tail`` a
    non-final corrupt line raises but a torn *final* line yields one
    ``None`` sentinel (the crash signature) and stops."""
    for record, _ in _scan_journal(path, tolerate_torn_tail):
        yield record


def _scan_journal(path: str, tolerate_torn_tail: bool = False):
    """Yield ``(record, end_offset)`` per journal line, ``end_offset``
    being the byte offset just past the line — what recovery truncates
    back to when the *next* line turns out to be torn.  A torn final
    line yields ``(None, <offset of its start>)`` and stops."""
    if not os.path.exists(path):
        return
    with open(path, "rb") as f:
        lines = f.readlines()
    offset = 0
    for i, line in enumerate(lines):
        start, offset = offset, offset + len(line)
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            if tolerate_torn_tail and i == len(lines) - 1:
                yield None, start
                return
            raise ConfigError(f"{path}:{i + 1}: corrupt journal record")
        yield record, offset
