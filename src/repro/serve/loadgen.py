"""Open-loop Poisson load generator: prove degradation is graceful.

Closed-loop clients (submit, wait, repeat) slow themselves down exactly
when the server slows down, hiding overload.  An *open-loop* generator
keeps firing on a Poisson arrival process no matter what the server
does — the honest model of a population of independent users — so
driving the arrival rate past measured capacity answers the question
that matters for ``repro serve``: does the service shed cleanly (429 +
``Retry-After``, bounded queue, bounded accepted-job latency) or does
it collapse?

The report merges into ``BENCH_perf.json`` under ``"serve_load"``,
next to the kernel and cluster numbers.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from typing import Dict, Iterable, List, Optional

from ..obs.metrics import ExactHistogram
from .client import JobTimeout, ServeClient, ServeUnavailable

#: Open-loop sanity cap: past this the generator itself (thread spawn +
#: HTTP round trip per arrival) becomes the bottleneck being measured.
MAX_RATE_PER_S = 200.0


def calibrate(client: ServeClient, spec: Dict, runs: int = 2,
              timeout_s: float = 60.0, nonce: str = "") -> Dict:
    """Measure per-job service time on an idle server (closed loop)."""
    ready = client.readyz()[1]
    pool = int(ready.get("pool_size", 1))
    wall = []
    for i in range(runs):
        t0 = time.monotonic()
        status, data, _ = client.submit(spec, key=f"{nonce}calibrate-{i}",
                                        client="loadgen-calibrate")
        if status == 200:
            # An idempotency-key replay completes near-instantly — its
            # timing would report a wildly inflated capacity.
            raise ServeUnavailable(
                f"calibration key {nonce}calibrate-{i!r} already known "
                f"to the server; pass a fresh nonce to re-calibrate "
                f"against a long-lived server")
        if status != 202:
            raise ServeUnavailable(
                f"calibration submit got {status}: {data}")
        client.wait(data["job"]["id"], timeout_s=timeout_s)
        wall.append(time.monotonic() - t0)
    service_s = sum(wall) / len(wall)
    return {
        "runs": runs,
        "service_s": round(service_s, 4),
        "pool_size": pool,
        "capacity_jobs_per_s": round(pool / max(service_s, 1e-6), 3),
    }


def run_phase(client: ServeClient, spec: Dict, rate_per_s: float,
              duration_s: float, seed: int, phase: str,
              wait_timeout_s: float = 60.0, nonce: str = "") -> Dict:
    """One open-loop burst at ``rate_per_s`` for ``duration_s``."""
    rng = random.Random(seed)
    lock = threading.Lock()
    submit_ms = ExactHistogram("submit_ms")
    accepted: List[str] = []
    counts = {"offered": 0, "accepted": 0, "shed": 0, "errors": 0,
              "duplicates": 0, "shed_with_retry_after": 0}
    max_depth = [0]
    stop_sampling = threading.Event()

    def sample_depth() -> None:
        while not stop_sampling.is_set():
            try:
                depth = client.metricz().get("queue_depth", 0)
                max_depth[0] = max(max_depth[0], depth)
            except ServeUnavailable:  # pragma: no cover - server gone
                return
            stop_sampling.wait(0.05)

    def fire(i: int) -> None:
        t0 = time.monotonic()
        try:
            status, data, headers = client.submit(
                spec, key=f"{nonce}{phase}-{seed}-{i}",
                client=f"loadgen-{phase}")
        except ServeUnavailable:
            with lock:
                counts["errors"] += 1
            return
        ms = (time.monotonic() - t0) * 1e3
        with lock:
            submit_ms.add(ms)
            if status == 202:
                counts["accepted"] += 1
                accepted.append(data["job"]["id"])
            elif status == 200:
                # Already-done work replayed from the store: counting it
                # as accepted (near-instant 200s) would inflate the
                # measured capacity and corrupt the load curves.
                counts["duplicates"] += 1
            elif status == 429:
                counts["shed"] += 1
                if "Retry-After" in headers:
                    counts["shed_with_retry_after"] += 1
            else:
                counts["errors"] += 1

    sampler = threading.Thread(target=sample_depth, daemon=True)
    sampler.start()
    threads: List[threading.Thread] = []
    t_end = time.monotonic() + duration_s
    next_t = time.monotonic()
    i = 0
    while next_t < t_end:
        delay = next_t - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        t = threading.Thread(target=fire, args=(i,), daemon=True)
        t.start()
        threads.append(t)
        counts["offered"] += 1
        i += 1
        next_t += rng.expovariate(rate_per_s)
    for t in threads:
        t.join(timeout=10.0)

    # Open loop ends here; now wait (bounded) for the accepted backlog.
    latency_s = ExactHistogram("latency_s")
    deadline = time.monotonic() + wait_timeout_s
    unfinished = 0
    for job_id in accepted:
        budget = deadline - time.monotonic()
        if budget <= 0:
            unfinished += 1
            continue
        try:
            job = client.wait(job_id, timeout_s=budget)
        except JobTimeout:
            unfinished += 1
            continue
        if job.get("finished_at") and job.get("submitted_at"):
            latency_s.add(job["finished_at"] - job["submitted_at"])
    stop_sampling.set()
    sampler.join(timeout=1.0)

    report = dict(counts)
    report.update({
        "phase": phase,
        "rate_per_s": round(rate_per_s, 3),
        "duration_s": duration_s,
        "max_queue_depth": max_depth[0],
        "unfinished_after_wait": unfinished,
        "submit_ms": submit_ms.summary() if submit_ms.count
        else {"count": 0},
        "latency_s": latency_s.summary() if latency_s.count
        else {"count": 0},
    })
    return report


def run_loadgen(url: str, spec: Dict, duration_s: float = 4.0,
                multipliers: Iterable[float] = (0.5, 2.0),
                seed: int = 1,
                rate_per_s: Optional[float] = None,
                nonce: Optional[str] = None) -> Dict:
    """Calibrate, then sweep arrival rates around measured capacity.

    ``rate_per_s`` overrides the sweep with one explicit rate.
    ``nonce`` distinguishes this run's idempotency keys; without one a
    fresh value is generated so re-running bench against a long-lived
    server measures real work, not replayed 200s.
    """
    if nonce is None:
        nonce = f"{os.getpid():x}.{time.time_ns():x}"
    prefix = f"{nonce}-"
    client = ServeClient(url)
    cal = calibrate(client, spec, nonce=prefix)
    report: Dict = {"url": url, "scenario": spec.get("name"),
                    "seed": seed, "nonce": nonce,
                    "calibration": cal, "phases": []}
    if rate_per_s is not None:
        plan = [("fixed", float(rate_per_s))]
    else:
        plan = [(f"{m:g}x", m * cal["capacity_jobs_per_s"])
                for m in multipliers]
    for phase, rate in plan:
        capped = rate > MAX_RATE_PER_S
        rate = min(rate, MAX_RATE_PER_S)
        entry = run_phase(client, spec, rate, duration_s, seed, phase,
                          nonce=prefix)
        if capped:
            entry["rate_capped"] = True
        report["phases"].append(entry)
    return report


def merge_into_bench_report(report: Dict,
                            path: str = "BENCH_perf.json") -> str:
    """Record the load curves alongside the kernel/cluster numbers."""
    merged = {}
    if os.path.exists(path):
        with open(path) as f:
            merged = json.load(f)
    merged["serve_load"] = report
    with open(path, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def render_loadgen(report: Dict) -> str:
    cal = report["calibration"]
    lines = [
        f"serve load: scenario {report['scenario']!r} @ {report['url']}",
        f"  calibration: service={cal['service_s']:.3f}s x "
        f"{cal['pool_size']} worker(s) -> capacity "
        f"{cal['capacity_jobs_per_s']:.2f} jobs/s",
        f"  {'phase':>7} {'rate/s':>8} {'offered':>8} {'accepted':>9} "
        f"{'shed':>6} {'maxQ':>5} {'p50 lat':>9} {'p99 lat':>9}",
    ]
    for ph in report["phases"]:
        lat = ph["latency_s"]
        p50 = f"{lat['p50']:.2f}s" if lat.get("count") else "-"
        p99 = f"{lat['p99']:.2f}s" if lat.get("count") else "-"
        lines.append(
            f"  {ph['phase']:>7} {ph['rate_per_s']:>8.2f} "
            f"{ph['offered']:>8} {ph['accepted']:>9} {ph['shed']:>6} "
            f"{ph['max_queue_depth']:>5} {p50:>9} {p99:>9}")
    return "\n".join(lines)
