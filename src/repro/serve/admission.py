"""Admission control: shed load at the door, never collapse inside.

The service keeps a *bounded* job queue.  When it is full, a submission
is rejected with a structured shed decision (HTTP 429 + ``Retry-After``)
instead of being buffered without bound — the same argument the paper
makes for NIC-resident protocol state: a system that accepts more work
than it can retire does not degrade, it collapses.  Two independent
gates:

* **queue depth** — at most ``max_queue`` jobs waiting; the
  ``Retry-After`` estimate is the backlog drained at the measured
  (EWMA) per-job service time across the worker pool;
* **per-client in-flight cap** — one client cannot occupy the whole
  queue; its queued+running jobs are capped at ``client_cap``.

Jobs re-entering after a supervised retry or a server restart bypass
the gates (:meth:`AdmissionQueue.restore`): they were already admitted
once, and re-shedding them would turn recovery into data loss.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, Optional

from .job import Job, job_error

#: Retry-After clamp (seconds): always at least 1, never absurd.
RETRY_AFTER_MIN_S = 1
RETRY_AFTER_MAX_S = 60


class AdmissionQueue:
    """Bounded FIFO of queued jobs plus the client in-flight ledger."""

    def __init__(self, max_queue: int, client_cap: int, pool_size: int,
                 service_time_guess_s: float = 1.0):
        self.max_queue = max_queue
        self.client_cap = client_cap
        self.pool_size = pool_size
        self._queue: deque = deque()
        self._inflight: Dict[str, int] = {}   # client -> queued+running
        self._lock = threading.RLock()        # offer() nests check()
        self._ewma_service_s = service_time_guess_s
        self.high_water = 0
        self.closed = False

    # -- the admission decision ------------------------------------------

    def check(self, job: Job) -> Optional[Dict]:
        """The admission decision alone: None = admissible, else a
        structured shed reason.  The server journals the job *between*
        ``check`` and ``restore`` (under its submit lock, so the queue
        can only shrink in that window) — a job must never be visible
        to the supervisor before it is durable."""
        with self._lock:
            if self.closed:
                return job_error("draining",
                                 "server is draining; not accepting jobs",
                                 retry_after_s=RETRY_AFTER_MAX_S)
            if len(self._queue) >= self.max_queue:
                return job_error(
                    "queue_full",
                    f"job queue is at capacity ({self.max_queue})",
                    retry_after_s=self._retry_after_locked())
            if self._inflight.get(job.client, 0) >= self.client_cap:
                return job_error(
                    "client_cap",
                    f"client {job.client!r} already has "
                    f"{self.client_cap} jobs in flight",
                    retry_after_s=self._retry_after_locked())
            return None

    def offer(self, job: Job) -> Optional[Dict]:
        """Admit ``job`` or return a structured shed decision."""
        with self._lock:
            shed = self.check(job)
            if shed is None:
                self._admit_locked(job)
            return shed

    def restore(self, job: Job) -> None:
        """Re-admit bypassing the gates (retry / restart recovery)."""
        with self._lock:
            self._admit_locked(job)

    def _admit_locked(self, job: Job) -> None:
        self._queue.append(job)
        self._inflight[job.client] = self._inflight.get(job.client, 0) + 1
        self.high_water = max(self.high_water, len(self._queue))

    # -- the worker side -------------------------------------------------

    def take(self) -> Optional[Job]:
        """Pop the next queued job (non-blocking; None when empty)."""
        with self._lock:
            return self._queue.popleft() if self._queue else None

    def push_front(self, job: Job) -> None:
        """Put a job back at the head (dispatch could not start it)."""
        with self._lock:
            self._queue.appendleft(job)

    def release_client(self, client: str) -> None:
        """A job of ``client`` reached a terminal state."""
        with self._lock:
            left = self._inflight.get(client, 0) - 1
            if left > 0:
                self._inflight[client] = left
            else:
                self._inflight.pop(client, None)

    def note_service_time(self, seconds: float) -> None:
        """Fold one completed job's wall time into the EWMA estimate."""
        with self._lock:
            self._ewma_service_s += 0.2 * (seconds - self._ewma_service_s)

    # -- introspection ---------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def retry_after_s(self) -> int:
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> int:
        backlog = len(self._queue) + self.pool_size  # waiting + running
        est = backlog * self._ewma_service_s / max(1, self.pool_size)
        return max(RETRY_AFTER_MIN_S,
                   min(RETRY_AFTER_MAX_S, math.ceil(est)))

    def close(self) -> None:
        """Stop admitting (drain); queued jobs remain takeable."""
        with self._lock:
            self.closed = True
