"""The unit of service work: one submitted scenario run.

A :class:`Job` is the server-side record of a client submission — the
validated scenario spec, the client-supplied idempotency ``key``, and
everything the service learns while executing it (attempts, timestamps,
the result bundle or a structured error).  Jobs are plain data: the
exact dict :meth:`to_dict` returns is what the HTTP API serves, what
the journal persists, and what a recovered server reloads.

State machine (terminal states in caps)::

    queued -> running -> DONE
                 |-----> FAILED        (invariant violation, bad spec,
                 |                      retry budget exhausted)
                 |-----> QUARANTINED   (circuit breaker: poison job)
                 |-----> INTERRUPTED   (drain/crash, not retryable)
                 '-----> queued        (worker died/wedged; supervised
                                        retry with backoff)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..errors import ConfigError

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
INTERRUPTED = "interrupted"

STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED, INTERRUPTED)
TERMINAL_STATES = frozenset((DONE, FAILED, QUARANTINED, INTERRUPTED))


@dataclass
class Job:
    """One submission and its lifecycle record."""

    id: str
    key: str                       # client idempotency key
    client: str                    # per-client in-flight caps
    scenario: str                  # spec name: the quarantine unit
    spec: Dict                     # canonical ScenarioSpec dict
    state: str = QUEUED
    attempts: int = 0              # execution attempts started
    max_attempts: int = 3
    timeout_s: float = 60.0        # per-attempt wall-clock deadline
    submitted_at: float = 0.0      # wall epoch seconds
    started_at: Optional[float] = None    # latest attempt start
    finished_at: Optional[float] = None
    result: Optional[Dict] = None  # digests/violations bundle when done
    error: Optional[Dict] = None   # {"kind", "message"} when not
    worker_pid: Optional[int] = None      # live attempt's forked pid

    def __post_init__(self):
        if self.state not in STATES:
            raise ConfigError(f"job {self.id}: bad state {self.state!r}")
        if self.max_attempts < 1:
            raise ConfigError(f"job {self.id}: max_attempts must be >= 1")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "Job":
        fields = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - fields
        if unknown:
            raise ConfigError(f"job record: unknown keys {sorted(unknown)}")
        return cls(**data)


def job_error(kind: str, message: str, **extra) -> Dict:
    """The one structured error shape jobs and HTTP responses share."""
    return dict(extra, kind=kind, message=message)


@dataclass
class ServeConfig:
    """Service tuning knobs (one place, all defaults overridable)."""

    data_dir: str = "serve-data"
    host: str = "127.0.0.1"
    port: int = 0                        # 0 = ephemeral; see serve.json
    pool_size: int = 2                   # concurrent forked workers
    max_queue: int = 64                  # admission: bounded job queue
    client_cap: int = 8                  # admission: per-client in-flight
    max_attempts: int = 3                # supervised retries per job
    default_timeout_s: float = 60.0      # per-attempt deadline fallback
    breaker_deaths: int = 3              # consecutive deaths -> quarantine
    breaker_reset_s: float = 30.0        # quarantine cooldown
    retry_base_s: float = 0.2            # backoff: first retry delay
    retry_max_s: float = 5.0             # backoff cap
    drain_timeout_s: float = 30.0        # SIGTERM: wait for running jobs
    snapshot_interval_s: float = 5.0     # periodic store snapshots
    seed: int = 1                        # retry-jitter RNG seed

    def __post_init__(self):
        if self.pool_size < 1 or self.max_queue < 1 or self.client_cap < 1:
            raise ConfigError("pool_size/max_queue/client_cap must be >= 1")
        if self.max_attempts < 1 or self.breaker_deaths < 1:
            raise ConfigError("max_attempts/breaker_deaths must be >= 1")

    def to_dict(self) -> Dict:
        return asdict(self)
