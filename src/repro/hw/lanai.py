"""Programmable NIC chassis (LANai-9-class).

Provides the mechanical resources the QPIP firmware runs on:

* a single RISC core, modelled as a serial :class:`WorkQueue` whose busy
  accounting *is* the paper's "network interface occupancy";
* a doorbell FIFO fed by posted PCI writes (the LANai's "specialized
  doorbell mechanism where writes to a region of PCI address space are
  stored in a FIFO in the interface SRAM", §4.1);
* two host-DMA engines sharing the PCI bus, and send/receive wire engines;
* a cycle counter for per-stage instrumentation (the paper's Tables 2 & 3
  were measured "using the LANai 9 cycle counter").

The firmware program itself lives in :mod:`repro.core.firmware`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from .. import fastpath as _fastpath
from .. import obs
from ..errors import DmaError
from ..fabric.link import Attachment
from ..net.packet import Packet
from ..sim import Event, Simulator, WorkQueue
from .host import Host
from .timing import LanaiTiming

LANAI_MHZ = 133.0


class CycleCounter:
    """Per-stage time attribution, read like the LANai cycle counter.

    ``enabled=False`` makes instrumentation free: hot callers check the
    flag before calling :meth:`record`, so a disabled counter costs one
    attribute read per stage instead of four dict operations.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.enabled = True
        self.by_stage: dict = {}
        self.samples: dict = {}

    def record(self, stage: str, duration: float) -> None:
        self.by_stage[stage] = self.by_stage.get(stage, 0.0) + duration
        self.samples[stage] = self.samples.get(stage, 0) + 1

    def mean(self, stage: str) -> float:
        n = self.samples.get(stage, 0)
        return self.by_stage.get(stage, 0.0) / n if n else 0.0

    def reset(self) -> None:
        self.by_stage.clear()
        self.samples.clear()


class ProgrammableNic:
    """The hardware substrate for an on-NIC protocol implementation."""

    def __init__(self, sim: Simulator, host: Host, timing: Optional[LanaiTiming] = None,
                 mtu: int = 16384, name: str = "qpnic", sram_bytes: int = 2 << 20,
                 doorbell_capacity: Optional[int] = None):
        self.sim = sim
        self.host = host
        self.timing = timing or LanaiTiming()
        self.mtu = mtu
        self.name = name
        self.sram_bytes = sram_bytes
        # NIC firmware submits are always plain (no callback, default
        # priority), so the serial core can use the eager busy-horizon
        # fast path in WorkQueue.
        self.processor = WorkQueue(sim, name=f"{host.name}.{name}.fw", eager=True)
        self.cycles = CycleCounter(sim)
        self.attachment = Attachment(f"{host.name}.{name}", self._on_wire_receive)
        self.attachment.mtu = mtu
        self.doorbell_fifo: Deque = deque()
        self.rx_queue: Deque[Packet] = deque()
        self.mgmt_queue: Deque = deque()
        # The firmware installs this to be poked when new work appears.
        self.wake: Optional[Callable[[], None]] = None
        self.doorbells_rung = 0
        self.packets_rx = 0
        self.packets_tx = 0
        # -- fault machinery (see repro.faults) --------------------------
        # Bounded SRAM doorbell FIFO: None = unbounded (ideal hardware).
        self.doorbell_capacity = doorbell_capacity
        self.doorbells_dropped = 0
        self.doorbell_overflow = False     # sticky status bit; fw rescans
        # Called as hook(kind, nbytes) before each host DMA; returning
        # True fails the transfer with DmaError.  kind is "data" for
        # payload movement, "cqe" for completion/notification writes.
        self.dma_fault_hook: Optional[Callable[[str, int], bool]] = None
        self.dma_faults = 0
        self.stalls_injected = 0

    # -- host-facing mechanisms (costs charged by the caller on host CPU) --

    def ring_doorbell(self, token) -> None:
        """Posted PCI write into the doorbell FIFO."""
        self.doorbells_rung += 1
        if (self.doorbell_capacity is not None
                and len(self.doorbell_fifo) >= self.doorbell_capacity):
            # SRAM FIFO full: the posted write is lost.  Set the sticky
            # overflow bit so the firmware knows to rescan its QPs.
            self.doorbells_dropped += 1
            self.doorbell_overflow = True
            self._poke()
            return
        self.doorbell_fifo.append(token)
        self._poke()

    def post_mgmt(self, command) -> None:
        """Privileged command from the kernel driver (management FSM input)."""
        self.mgmt_queue.append(command)
        self._poke()

    # -- firmware-facing mechanisms -----------------------------------------

    def record_stage(self, name: str, duration: float) -> None:
        """Cycle-counter and obs bookkeeping for one stage, without
        charging the core — burst paths charge separately and call this
        at each span's start time."""
        cyc = self.cycles
        if cyc.enabled:
            cyc.record(name, duration)
        rec = obs.RECORDER
        if rec is not None:
            rec.complete("fw.stage", name, duration,
                         track=f"{self.host.name}.{self.name}.core")
            rec.metrics.histogram(f"fw.stage_us.{name}").add(duration)

    def stage(self, name: str, duration: float):
        """Run one timed FSM stage on the NIC core.

        Returns a yieldable wait: a plain delay on the fast path, a
        completion event otherwise."""
        self.record_stage(name, duration)
        return self.processor.submit_wait(duration, category=name)

    def stages(self, pairs):
        """Run several back-to-back FSM stages as one core occupancy.

        ``pairs`` is ``[(name, duration), ...]``.  The core is busy for
        the summed duration — identical start/finish times to yielding
        each stage in turn — while the cycle counter still attributes
        time per stage.  Only legal when nothing observable happens
        between the stages (the firmware's parse/build sequences).
        With fast paths disabled each stage is a separate submission,
        exactly like the reference implementation.
        """
        cyc = self.cycles
        if cyc.enabled:
            for name, duration in pairs:
                cyc.record(name, duration)
        rec = obs.RECORDER
        if rec is not None:
            track = f"{self.host.name}.{self.name}.core"
            for name, duration in pairs:
                rec.complete("fw.stage", name, duration, track=track)
                rec.metrics.histogram(f"fw.stage_us.{name}").add(duration)
        if _fastpath.ENABLED:
            total = 0.0
            for _name, duration in pairs:
                total += duration
            return self.processor.submit_wait(total, category=pairs[0][0])
        done = None
        for name, duration in pairs:
            done = self.processor.submit(duration, category=name)
        return done

    def stages_burst(self, pairs, boundary_fn, post_pairs):
        """One core walk for two merged stage spans with a callback at
        the boundary — the batched form of::

            yield self.stages(pairs)
            boundary_fn()
            yield self.stages(post_pairs)

        The whole walk costs one heap push and a single suspension of
        the calling process.  Both spans are charged on the serial core
        up front, which is legal because the firmware process is the
        core's only submitter: the horizon advances exactly as if the
        second span were charged at the boundary.  ``boundary_fn`` runs
        at the exact boundary time, and the second span's cycle/obs
        records are made there too, so wire timestamps, trace records,
        and per-stage attribution are identical to the unbatched path.

        Returns a walker the caller must ``yield``, or ``None`` when the
        fast path does not apply (caller falls back to the plain form;
        nothing has been charged or recorded).
        """
        if not _fastpath.ENABLED or self.processor._busy:
            return None
        d_pre = self.stages(pairs)          # records pre-span cycles/obs now
        total = 0.0
        for _name, duration in post_pairs:
            total += duration
        d_post = self.processor.try_charge(total, category=post_pairs[0][0])
        if d_post is None:  # pragma: no cover - eager queue, guarded above
            return None

        def boundary():
            boundary_fn()
            cyc = self.cycles
            if cyc.enabled:
                for name, duration in post_pairs:
                    cyc.record(name, duration)
            rec = obs.RECORDER
            if rec is not None:
                track = f"{self.host.name}.{self.name}.core"
                for name, duration in post_pairs:
                    rec.complete("fw.stage", name, duration, track=track)
                    rec.metrics.histogram(f"fw.stage_us.{name}").add(duration)

        return self.sim.burst(((d_pre, boundary), (d_post, None)))

    def dma_to_host(self, nbytes: int, kind: str = "data") -> Event:
        self._dma_check(kind, nbytes)
        return self.host.pci.dma(nbytes, category=f"{self.name}.dma-rx",
                                 setup=self.timing.dma_setup)

    def dma_to_host_call(self, nbytes: int, fn: Callable,
                         kind: str = "data") -> None:
        """Posted host-write whose completion calls ``fn`` — the CQE/
        notification path.  One deferred-call heap item on the fast path
        instead of a timer handle plus an Event with one callback."""
        self._dma_check(kind, nbytes)
        self.host.pci.dma_call(nbytes, fn, category=f"{self.name}.dma-rx",
                               setup=self.timing.dma_setup)

    def dma_from_host(self, nbytes: int, kind: str = "data") -> Event:
        self._dma_check(kind, nbytes)
        return self.host.pci.dma(nbytes, category=f"{self.name}.dma-tx",
                                 setup=self.timing.dma_setup)

    def _dma_check(self, kind: str, nbytes: int) -> None:
        if self.dma_fault_hook is not None and self.dma_fault_hook(kind, nbytes):
            self.dma_faults += 1
            raise DmaError(f"{self.name}: DMA fault ({kind}, {nbytes}B)")

    def stall(self, duration: float):
        """Occupy the firmware core for ``duration`` µs (injected stall:
        a wedged firmware loop, an SRAM ECC scrub, a debug interrupt).
        All FSM stages queue behind it on the serial core."""
        self.stalls_injected += 1
        if self.cycles.enabled:
            self.cycles.record("fault_stall", duration)
        return self.processor.submit_wait(duration, category="fault_stall")

    def wire_time(self, pkt: Packet) -> float:
        """Serialization time of a packet on the attached link."""
        link = self.attachment.link
        if link is None:
            return 0.0
        return pkt.wire_size / link.direction_from(self.attachment).bandwidth

    def wire_transmit(self, pkt: Packet) -> None:
        self.packets_tx += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("nic", "nic.tx", track=f"{self.attachment.name}.wire",
                      pkt=pkt.trace_id, bytes=pkt.wire_size)
            rec.metrics.counter(f"nic.{self.attachment.name}.tx_pkts").add()
        self.attachment.transmit(pkt)

    def _on_wire_receive(self, pkt: Packet, _at: Attachment) -> None:
        self.packets_rx += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("nic", "nic.rx", track=f"{self.attachment.name}.wire",
                      pkt=pkt.trace_id, bytes=pkt.wire_size)
            rec.metrics.counter(f"nic.{self.attachment.name}.rx_pkts").add()
        self.rx_queue.append(pkt)
        self._poke()

    def _poke(self) -> None:
        if self.wake is not None:
            self.wake()

    # -- instrumentation -------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of time the NIC core was busy since last reset."""
        return self.processor.utilization()

    def reset_stats(self) -> None:
        self.processor.reset_stats()
        self.cycles.reset()
