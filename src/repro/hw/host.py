"""The host machine: CPU with utilization accounting, PCI bus, memory.

All kernel/application "work" charges time on the CPU work queue, so CPU
utilization — the paper's headline metric — is measured, not asserted.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..mem import AddressSpace, PhysicalMemory
from ..sim import Event, Simulator, WorkQueue
from .timing import HostTiming, PciTiming

INTERRUPT_PRIORITY = -10     # interrupts preempt queued process work


class PciBus:
    """Shared PCI segment: DMA transfers serialize at bus bandwidth."""

    def __init__(self, sim: Simulator, timing: PciTiming, name: str = "pci"):
        self.sim = sim
        self.timing = timing
        # DMA submissions are plain (no callback, default priority), so
        # the bus can use WorkQueue's eager busy-horizon fast path.
        self.queue = WorkQueue(sim, name=name, eager=True)
        self.bytes_moved = 0

    def dma(self, nbytes: int, category: str = "dma",
            setup: float = 0.0) -> Event:
        """Move ``nbytes`` across the bus; event fires at completion."""
        self.bytes_moved += nbytes
        duration = setup + nbytes / self.timing.bandwidth
        return self.queue.submit(duration, category=category)

    def dma_call(self, nbytes: int, fn: Callable, category: str = "dma",
                 setup: float = 0.0) -> None:
        """Like :meth:`dma`, but completion is delivered by calling
        ``fn`` — one deferred-call heap item on the fast path instead of
        a timer handle plus an Event with one callback.  Same transfer
        time and tie ordering in both modes."""
        self.bytes_moved += nbytes
        duration = setup + nbytes / self.timing.bandwidth
        self.queue.submit_call(duration, fn, category=category)

    def doorbell_cost(self) -> float:
        return self.timing.doorbell_write


class Host:
    """A processor/memory complex with one accounted CPU and a PCI bus."""

    def __init__(self, sim: Simulator, name: str,
                 timing: Optional[HostTiming] = None,
                 pci_timing: Optional[PciTiming] = None,
                 memory_bytes: int = 1 << 30):
        self.sim = sim
        self.name = name
        self.timing = timing or HostTiming()
        self.cpu = WorkQueue(sim, name=f"{name}.cpu")
        self.pci = PciBus(sim, pci_timing or PciTiming(), name=f"{name}.pci")
        self.memory = PhysicalMemory(memory_bytes, name=f"{name}.mem")
        self.interrupts_delivered = 0

    def new_address_space(self, label: str) -> AddressSpace:
        return AddressSpace(self.memory, name=f"{self.name}.{label}")

    # -- CPU convenience -----------------------------------------------------

    def cpu_work(self, duration: float, category: str,
                 fn: Optional[Callable] = None, priority: int = 0) -> Event:
        return self.cpu.submit(duration, category=category, fn=fn,
                               priority=priority)

    def raise_interrupt(self, handler: Callable, category: str = "interrupt") -> Event:
        """Deliver an interrupt: entry cost then the handler, ahead of
        queued process-context work."""
        self.interrupts_delivered += 1
        return self.cpu.submit(self.timing.interrupt_entry, category=category,
                               fn=handler, priority=INTERRUPT_PRIORITY)

    def copy_cost(self, nbytes: int) -> float:
        return nbytes * self.timing.copy_per_byte

    def checksum_cost(self, nbytes: int) -> float:
        return nbytes * self.timing.checksum_per_byte

    # -- measurement ---------------------------------------------------------

    def reset_cpu_stats(self) -> None:
        self.cpu.reset_stats()

    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    def __repr__(self):
        return f"<Host {self.name}>"
