"""Timing calibration tables.

These constants are the *component-level* inputs of the reproduction.
LANai stage costs are taken directly from the paper's measured Tables
2 & 3; host-side costs are calibrated so Table 1's loopback overhead
(~29.9 µs per send+receive) and Figure 4's utilization emerge.  End-to-end
results (RTT, throughput, CPU%) are **never** set here — they fall out of
the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class LanaiTiming:
    """Per-stage firmware occupancy on the LANai-9-class NIC (µs).

    Transmit stages are paper Table 2, receive stages Table 3 (1-byte
    message baseline; bulk data additionally pays DMA time).
    """

    # Transmit FSM (Table 2).
    doorbell_process: float = 1.0
    schedule: float = 2.0
    get_wr: float = 5.5
    get_data: float = 4.5            # descriptor-sized DMA setup + fetch
    build_tcp_hdr: float = 5.0
    build_ip_hdr: float = 1.0
    media_send: float = 1.0
    tx_update: float = 1.5

    # Receive FSM (Table 3).
    media_recv: float = 1.0
    ip_parse: float = 1.5
    tcp_parse_data: float = 7.0
    tcp_parse_ack: float = 14.0      # RTT-estimator multiplies in software
    put_data: float = 4.5
    rx_update_data: float = 1.5
    rx_update_ack: float = 9.0       # WR and QP state update

    # UDP costs (no ACK machinery; cheaper than TCP).
    build_udp_hdr: float = 2.0
    udp_parse: float = 3.0

    # Payload movement beyond the 1-byte baseline (PCI DMA).
    dma_setup: float = 0.8
    # Receive-side IP checksum in firmware (the Myrinet artifact, §4.2):
    # None = hardware-assisted (free); else µs per payload byte.
    rx_checksum_per_byte: float | None = None
    # Management command handling.
    mgmt_command: float = 10.0
    # Collective offload engine (repro.collectives): per-frame handling
    # and the firmware combine loop (µs per payload byte).  The combine
    # rate is deliberately in the same league as the host's copy rate —
    # the offload wins by eliminating per-step host WRs, doorbells and
    # CQEs, not by magic arithmetic.
    coll_frame: float = 2.0
    coll_combine_per_byte: float = 0.004
    # Whether payload DMA overlaps firmware processing (Infiniband-class
    # hardware) or the firmware busy-waits on the DMA engines (prototype).
    overlap_dma: bool = False


def lanai_fw_checksum() -> LanaiTiming:
    """Prototype variant computing receive checksums in firmware."""
    return replace(LanaiTiming(), rx_checksum_per_byte=0.030)


def ib_class_timing() -> LanaiTiming:
    """§5.2: 'if the same degree of hardware support were to be applied to
    QPIP then an equivalent performance could be reached.'  Protocol
    engines in hardware: stage costs collapse, DMA overlaps."""
    return LanaiTiming(
        doorbell_process=0.1, schedule=0.1, get_wr=0.3, get_data=0.3,
        build_tcp_hdr=0.2, build_ip_hdr=0.1, media_send=0.1, tx_update=0.1,
        media_recv=0.1, ip_parse=0.1, tcp_parse_data=0.3, tcp_parse_ack=0.3,
        put_data=0.3, rx_update_data=0.1, rx_update_ack=0.2,
        build_udp_hdr=0.1, udp_parse=0.2, dma_setup=0.2,
        rx_checksum_per_byte=None, mgmt_command=2.0,
        coll_frame=0.2, coll_combine_per_byte=0.001, overlap_dma=True)


@dataclass(frozen=True)
class HostTiming:
    """Host kernel path costs for a ~550 MHz P-III running Linux 2.4 (µs)."""

    cpu_mhz: float = 550.0
    syscall: float = 1.2             # entry + exit
    socket_op: float = 1.6           # socket layer book-keeping per call
    copy_per_byte: float = 1 / 360.0     # ~360 MB/s user<->kernel copy
    checksum_per_byte: float = 1 / 380.0  # ~380 MB/s software checksum
    tcp_tx: float = 6.8              # tcp_output per segment
    tcp_rx_data: float = 7.5
    tcp_rx_ack: float = 4.0
    udp_tx: float = 4.0
    udp_rx: float = 5.0
    ip_tx: float = 1.6
    ip_rx: float = 2.0
    driver_tx: float = 3.0           # skb + descriptor ring write + doorbell
    driver_rx: float = 3.0           # ring reap + skb alloc per packet
    interrupt_entry: float = 6.0     # ISR + softirq dispatch
    wakeup: float = 2.5              # scheduler wakeup of a blocked process
    process_switch: float = 2.0


@dataclass(frozen=True)
class PciTiming:
    """64-bit/33 MHz PCI (the prototype hosts'): ~264 MB/s burst."""

    bandwidth: float = 200.0         # bytes/µs sustained (264 burst)
    doorbell_write: float = 0.3      # posted PIO write across PCI


@dataclass(frozen=True)
class QpipHostTiming:
    """Host-side verbs costs (Table 1: 2.5 µs / 1386 cycles total)."""

    post_descriptor: float = 0.7     # build WR in host memory
    doorbell: float = 0.3            # PIO write (PciTiming.doorbell_write)
    poll_cq: float = 0.6             # read + update CQ entry
    wait_block: float = 2.8          # blocking wait: sleep + wakeup (not in 2.5)
    completion_check: float = 0.9    # per-completion processing in the library


@dataclass(frozen=True)
class DumbNicTiming:
    """A conventional DMA ring NIC (Intel Pro1000-class)."""

    dma_setup: float = 0.5
    tx_fifo_latency: float = 1.0     # store-and-forward through the NIC FIFO
    rx_fifo_latency: float = 1.0
    interrupt_delay: float = 40.0    # coalescing timer (e1000 ITR-era)
    intr_assert: float = 20.0        # assertion latency even when idle
    per_packet: float = 1.0          # MAC/DMA engine per-packet overhead
    checksum_offload: bool = True    # Pro1000 does TCP checksums in hardware
    host_driver_rx_extra: float = 6.0   # e1000 ring/buffer recycling per packet
    host_driver_tx_extra: float = 2.0


@dataclass(frozen=True)
class GmNicTiming:
    """Myrinet LANai running GM 1.4 as a plain IP link layer (§4.2).

    The LANai's 133 MHz core forwards each packet in firmware, and the GM
    IP framing adds a staging copy on the host receive path.
    """

    dma_setup: float = 0.8
    fw_per_packet_tx: float = 5.0    # GM firmware send handling
    fw_per_packet_rx: float = 6.0
    interrupt_delay: float = 12.0
    intr_assert: float = 6.0         # GM's event delivery is leaner
    checksum_offload: bool = False   # IP over GM has no checksum assist
    rx_staging_copy: bool = True     # extra host copy through GM buffers
    host_driver_rx_extra: float = 4.0   # GM event/token handling per packet
    host_driver_tx_extra: float = 3.0
    staging_copy_factor: float = 2.2    # GM staging buffers are cache-cold
