"""Conventional (driver-managed) NICs: the baselines' hardware.

``DumbNic`` models a DMA-ring adapter: the host driver hands it packets;
it DMAs them over PCI and serializes onto the link.  Receive DMAs into
host memory and raises a throttled interrupt.  The GM variant adds the
LANai firmware as a serial per-packet processor, since IP-over-Myrinet
still flows through the programmable NIC.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..errors import ConfigError
from ..fabric.link import Attachment
from ..net.packet import Packet
from ..sim import Simulator, Timer, WorkQueue
from .host import Host
from .timing import DumbNicTiming, GmNicTiming


class _RxInterruptMixin:
    """Receive ring + throttled (ITR-style) interrupt delivery.

    Interrupts fire immediately when the line has been quiet; under load
    they are rate-limited to one per ``interrupt_delay``, batching packets
    — low latency for ping-pong, amortized cost for streams.
    """

    def _init_rx(self, sim: Simulator, name: str) -> None:
        self._rx_ring: Deque[Packet] = deque()
        self._intr_timer = Timer(sim, self._fire_interrupt, name=f"{name}.intr")
        self._last_intr = -1e18
        self.driver_rx: Optional[Callable[[Packet], None]] = None
        self.interrupts = 0

    def _rx_ready(self, pkt: Packet) -> None:
        self._rx_ring.append(pkt)
        if not self._intr_timer.armed:
            gap = self._last_intr + self.timing.interrupt_delay - self.sim.now
            self._intr_timer.start(max(self.timing.intr_assert, gap))

    def _fire_interrupt(self) -> None:
        if not self._rx_ring:
            return
        self.interrupts += 1
        self._last_intr = self.sim.now
        self.host.raise_interrupt(self._isr, category="net-intr")

    def _isr(self) -> None:
        if self.driver_rx is None:
            raise ConfigError(f"{self.name}: no driver bound")
        while self._rx_ring:
            self.driver_rx(self._rx_ring.popleft())


class DumbNic(_RxInterruptMixin):
    """An Intel Pro1000-class adapter."""

    def __init__(self, sim: Simulator, host: Host, mtu: int = 1500,
                 timing: Optional[DumbNicTiming] = None, name: str = "eth0",
                 mac=None):
        self.sim = sim
        self.host = host
        self.mtu = mtu
        self.timing = timing or DumbNicTiming()
        self.name = name
        self.mac = mac
        self.attachment = Attachment(f"{host.name}.{name}", self._on_wire_receive)
        self.attachment.mtu = mtu
        self.attachment.mac = mac
        self._init_rx(sim, name)
        self.tx_packets = 0
        self.rx_packets = 0

    @property
    def checksum_offload(self) -> bool:
        return self.timing.checksum_offload

    def transmit(self, pkt: Packet) -> None:
        """Driver handoff: DMA the frame from host memory, then onto the wire."""
        self.tx_packets += 1
        self.host.pci.dma_call(pkt.wire_size, lambda: self._tx_fifo(pkt),
                               category=f"{self.name}.tx",
                               setup=self.timing.dma_setup)

    def _tx_fifo(self, pkt: Packet) -> None:
        extra = self.timing.per_packet + self.timing.tx_fifo_latency
        self.sim.call_later(extra, self.attachment.transmit, pkt)

    def _on_wire_receive(self, pkt: Packet, _at: Attachment) -> None:
        self.rx_packets += 1
        self.host.pci.dma_call(pkt.wire_size, lambda: self._rx_ready(pkt),
                               category=f"{self.name}.rx",
                               setup=self.timing.dma_setup)


class GmNic(_RxInterruptMixin):
    """Myrinet LANai running GM 1.4 as an IP link layer (baseline #2).

    Same DMA-ring shape as :class:`DumbNic`, but every packet also crosses
    the 133 MHz firmware core, which serializes.
    """

    def __init__(self, sim: Simulator, host: Host, mtu: int = 9000,
                 timing: Optional[GmNicTiming] = None, name: str = "myri0",
                 mac=None):
        self.sim = sim
        self.host = host
        self.mtu = mtu
        self.timing = timing or GmNicTiming()
        self.name = name
        self.mac = mac
        self.attachment = Attachment(f"{host.name}.{name}", self._on_wire_receive)
        self.attachment.mtu = mtu
        self.attachment.mac = mac
        self.firmware = WorkQueue(sim, name=f"{host.name}.{name}.fw", eager=True)
        self._init_rx(sim, name)
        self.tx_packets = 0
        self.rx_packets = 0

    @property
    def checksum_offload(self) -> bool:
        return self.timing.checksum_offload

    def transmit(self, pkt: Packet) -> None:
        self.tx_packets += 1
        self.firmware.submit_call(self.timing.fw_per_packet_tx,
                                  lambda: self._tx_dma(pkt), category="gm-tx")

    def _tx_dma(self, pkt: Packet) -> None:
        self.host.pci.dma_call(pkt.wire_size,
                               lambda: self.attachment.transmit(pkt),
                               category=f"{self.name}.tx",
                               setup=self.timing.dma_setup)

    def _on_wire_receive(self, pkt: Packet, _at: Attachment) -> None:
        self.rx_packets += 1
        self.firmware.submit_call(self.timing.fw_per_packet_rx,
                                  lambda: self._rx_dma(pkt), category="gm-rx")

    def _rx_dma(self, pkt: Packet) -> None:
        self.host.pci.dma_call(pkt.wire_size, lambda: self._rx_ready(pkt),
                               category=f"{self.name}.rx",
                               setup=self.timing.dma_setup)
