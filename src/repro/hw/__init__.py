"""Hardware models: hosts, PCI, NICs, and timing calibration tables."""

from .host import Host, PciBus
from .lanai import LANAI_MHZ, CycleCounter, ProgrammableNic
from .nic import DumbNic, GmNic
from .timing import (DumbNicTiming, GmNicTiming, HostTiming, LanaiTiming,
                     PciTiming, QpipHostTiming, ib_class_timing,
                     lanai_fw_checksum)

__all__ = [
    "Host", "PciBus", "LANAI_MHZ", "CycleCounter", "ProgrammableNic",
    "DumbNic", "GmNic", "DumbNicTiming", "GmNicTiming", "HostTiming",
    "LanaiTiming", "PciTiming", "QpipHostTiming", "ib_class_timing",
    "lanai_fw_checksum",
]
