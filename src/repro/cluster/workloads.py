"""Per-flow workload drivers for cluster runs.

These mirror :mod:`repro.apps.ttcp` / :mod:`repro.apps.pingpong` but are
written for many concurrent flows on a shared fabric and they record the
full CQE stream — the observable the determinism guarantee is stated
over.  The oracle (1-process) and every shard run execute *these same
generators*, so any divergence is the sync protocol's fault, not the
workload's.

CQE records are ``(wr_id, qp_num, opcode, status, byte_len, time)``
tuples; ``qp_num`` is per-firmware, hence identical however the fabric
is sharded.
"""

from __future__ import annotations

from typing import Dict, Generator

from ..core import QPTransport
from ..faults.chaos import message_bytes
from ..net.addresses import Endpoint
from ..sim import Simulator
from .spec import FlowSpec


def _cqe_tuple(cqe, now: float):
    return (cqe.wr_id, cqe.qp_num, cqe.opcode.name, cqe.status.name,
            cqe.byte_len, now)


class _Verifier:
    """Receive-side payload auditor for ``verify`` flows.

    Every message carries an 8-byte sequence stamp plus a seq-derived
    fill (:func:`repro.faults.chaos.message_bytes`).  Whatever the wire
    did — corruption, duplication, reordering, loss-plus-retransmit —
    the application must observe the exact byte stream, in order,
    exactly once.  Counters land in the flow record and feed the gate's
    ``no_app_corruption`` invariant.
    """

    def __init__(self, record: Dict):
        self.record = record
        record["srv_verified"] = 0
        record["srv_mismatches"] = 0
        record["srv_dup"] = 0
        record["srv_ooo"] = 0
        self._next_seq = 0

    def consume(self, data: bytes) -> None:
        rec = self.record
        if len(data) < 8:
            rec["srv_mismatches"] += 1
            return
        seq = int.from_bytes(data[:8], "big")
        if seq < self._next_seq:
            rec["srv_dup"] += 1
            return
        if seq > self._next_seq:
            rec["srv_ooo"] += 1
        self._next_seq = seq + 1
        if data != message_bytes(seq, len(data)):
            rec["srv_mismatches"] += 1
        else:
            rec["srv_verified"] += 1


def ttcp_server(sim: Simulator, node, fs: FlowSpec,
                record: Dict) -> Generator:
    """Streaming receiver: posts a buffer ring, counts delivered bytes."""
    cqes = record.setdefault("server_cqes", [])
    iface = node.iface
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                    max_recv_wr=fs.recv_buffers + 4)
    bufs = []
    buf_size = max(fs.chunk, 4096)
    for _ in range(fs.recv_buffers):
        buf = yield from iface.register_memory(buf_size)
        yield from iface.post_recv(qp, [buf.sge()])
        bufs.append(buf)
    listener = yield from iface.listen(fs.port)
    yield from iface.accept(listener, qp)
    verifier = _Verifier(record) if fs.verify else None
    got = 0
    ring = 0
    nrecv = 0
    while got < fs.total_bytes:
        for cqe in (yield from iface.wait(cq)):
            cqes.append(_cqe_tuple(cqe, sim.now))
            got += cqe.byte_len
            if verifier is not None:
                # Recv WRs complete in posting order, so completion k
                # landed in the k-th posted buffer.
                verifier.consume(bufs[nrecv % len(bufs)].read(cqe.byte_len))
                nrecv += 1
            if got >= fs.total_bytes:
                break
            yield from iface.post_recv(qp, [bufs[ring].sge()])
            ring = (ring + 1) % len(bufs)
    record["rx_bytes"] = got
    record["rx_done"] = sim.now


def ttcp_client(sim: Simulator, node, peer_addr, fs: FlowSpec,
                record: Dict) -> Generator:
    """Streaming sender: pipelines ``queue_depth`` outstanding sends."""
    cqes = record.setdefault("client_cqes", [])
    iface = node.iface
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                    max_send_wr=fs.queue_depth + 4)
    if fs.verify:
        # One buffer per in-flight send: a shared buffer would be
        # overwritten under a WR the firmware has not yet DMAed.
        sbufs = []
        for _ in range(fs.queue_depth):
            sbufs.append((yield from iface.register_memory(fs.chunk)))
    else:
        sbuf = yield from iface.register_memory(fs.chunk)
    yield sim.timeout(1000.0 + fs.start)
    yield from iface.connect(qp, Endpoint(peer_addr, fs.port))
    max_msg = node.firmware.endpoints[qp.qp_num].conn.max_message
    record["t_start"] = sim.now
    sent = 0
    seq = 0
    inflight = 0
    while sent < fs.total_bytes or inflight > 0:
        while sent < fs.total_bytes and inflight < fs.queue_depth:
            n = min(fs.chunk, max_msg, fs.total_bytes - sent)
            if fs.verify:
                buf = sbufs[seq % fs.queue_depth]
                buf.write(message_bytes(seq, n))
                seq += 1
            else:
                buf = sbuf
            yield from iface.post_send(qp, [buf.sge(0, n)])
            sent += n
            inflight += 1
        for cqe in (yield from iface.wait(cq)):
            cqes.append(_cqe_tuple(cqe, sim.now))
            inflight -= 1
    record["tx_bytes"] = sent
    record["tx_done"] = sim.now


def pingpong_server(sim: Simulator, node, fs: FlowSpec,
                    record: Dict) -> Generator:
    """Echo server: answers ``iterations`` pings on a spinning CQ."""
    cqes = record.setdefault("server_cqes", [])
    iface = node.iface
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq)
    buf_size = max(4096, fs.msg_size)
    bufs = []
    for _ in range(4):
        buf = yield from iface.register_memory(buf_size)
        yield from iface.post_recv(qp, [buf.sge()])
        bufs.append(buf)
    sbuf = yield from iface.register_memory(buf_size)
    listener = yield from iface.listen(fs.port)
    yield from iface.accept(listener, qp)
    done = 0
    ring = 0
    while done < fs.iterations:
        for cqe in (yield from iface.spin(cq)):
            cqes.append(_cqe_tuple(cqe, sim.now))
            if cqe.opcode.value != "RECV":
                continue
            yield from iface.post_send(qp, [sbuf.sge(0, fs.msg_size)])
            yield from iface.post_recv(qp, [bufs[ring].sge()])
            ring = (ring + 1) % len(bufs)
            done += 1
    record["echoed"] = done


def pingpong_client(sim: Simulator, node, peer_addr, fs: FlowSpec,
                    record: Dict) -> Generator:
    """RTT sampler: one outstanding ping at a time."""
    cqes = record.setdefault("client_cqes", [])
    rtts = record.setdefault("rtts", [])
    iface = node.iface
    cq = yield from iface.create_cq()
    qp = yield from iface.create_qp(QPTransport.TCP, cq)
    buf_size = max(4096, fs.msg_size)
    bufs = []
    for _ in range(4):
        buf = yield from iface.register_memory(buf_size)
        yield from iface.post_recv(qp, [buf.sge()])
        bufs.append(buf)
    sbuf = yield from iface.register_memory(buf_size)
    yield sim.timeout(1000.0 + fs.start)
    yield from iface.connect(qp, Endpoint(peer_addr, fs.port))
    record["t_start"] = sim.now
    ring = 0
    for _ in range(fs.iterations):
        t0 = sim.now
        yield from iface.post_send(qp, [sbuf.sge(0, fs.msg_size)])
        got_pong = False
        while not got_pong:
            for cqe in (yield from iface.spin(cq)):
                cqes.append(_cqe_tuple(cqe, sim.now))
                if cqe.opcode.value == "RECV":
                    got_pong = True
                    rtts.append(sim.now - t0)
                    yield from iface.post_recv(qp, [bufs[ring].sge()])
                    ring = (ring + 1) % len(bufs)
    record["tx_done"] = sim.now


SERVER_DRIVERS = {"ttcp": ttcp_server, "pingpong": pingpong_server}
CLIENT_DRIVERS = {"ttcp": ttcp_client, "pingpong": pingpong_client}
