"""Cluster orchestration: conservative time-windowed parallel simulation.

The coordinator drives N shard workers through a sequence of sync
windows.  Each round:

1. compute the horizon-clamped window end
   ``T' = min(horizon, L + min_i(h_i))`` where ``h_i`` is shard *i*'s
   next pending event time (local heap or undelivered inbound message)
   and ``L`` is the cross-trunk lookahead;
2. hand every shard its inbound messages plus ``T'``; shards inject and
   run ``[now, T']`` concurrently;
3. collect each shard's new outbound messages and next event time.

Any message generated in a window ends strictly after that window
(``deliver_at > T'``: the lookahead is a strict under-estimate of
cut-through trunk latency), so all deliveries for a window are known at
its start — the protocol is conservative, never speculative, and the
merged run is bit-for-bit the single-process run.

Workers run either in-process (``processes=False``: same algorithm, one
OS process — the mode unit tests exercise) or as forked worker processes
connected by pipes.  Worker crashes propagate: the traceback is shipped
back and re-raised here as :class:`ClusterError`.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..tools.inspect import merge_metrics_dumps
from .partition import lookahead, partition_blueprint
from .shard import ClusterError, ShardWorker, TrunkMsg
from .spec import ClusterSpec

#: Forked-worker shutdown: grace period for a clean exit, then the
#: terminate/kill escalation ladder gets the same again per rung.
SHUTDOWN_GRACE_S = 5.0


class WorkerDied(ClusterError):
    """A forked shard worker exited without reporting a result.

    Distinguishes the *process-death* failure (crash, OOM kill, operator
    SIGTERM/SIGKILL) from an in-worker exception (plain
    :class:`ClusterError` carrying the shipped traceback).  ``signal``
    is the POSIX signal name when the worker died to one, else ``None``.
    """

    def __init__(self, shard_id: int, exitcode):
        sig = None
        if isinstance(exitcode, int) and exitcode < 0:
            import signal as _signal
            try:
                sig = _signal.Signals(-exitcode).name
            except ValueError:  # pragma: no cover - unknown signal
                sig = f"signal {-exitcode}"
        detail = f"killed by {sig}" if sig else f"exitcode={exitcode}"
        super().__init__(
            f"shard {shard_id}: worker died without reporting ({detail})")
        self.shard_id = shard_id
        self.exitcode = exitcode
        self.signal = sig


class WorkerHung(ClusterError):
    """A forked shard worker stopped responding.

    Carries the shard id and the last sync window end the worker
    acknowledged — the point up to which its results are known good.
    Raised when a step reply does not arrive within ``step_timeout``, or
    when shutdown had to escalate past a clean join.
    """

    def __init__(self, shard_id: int, last_window: float, detail: str):
        super().__init__(
            f"shard {shard_id} hung {detail} "
            f"(last acknowledged window end: {last_window:g}us)")
        self.shard_id = shard_id
        self.last_window = last_window


@dataclass
class ClusterResult:
    """Merged observables of a run (sharded or oracle)."""

    spec: ClusterSpec
    num_workers: int
    flows: Dict[int, dict]
    wire: Dict[str, list]
    metrics: Optional[Dict[str, dict]]      # merged registry dump
    events: int                             # sum of kernel events
    now: float
    barriers: int = 0
    trunk_msgs: int = 0
    wall_s: float = 0.0
    per_worker_events: List[int] = field(default_factory=list)
    fault_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


class _InProcessHandle:
    """Worker driven by direct calls (deterministic, coverage-friendly)."""

    def __init__(self, spec: ClusterSpec, shard_id: int, num_shards: int):
        self.shard_id = shard_id
        self._worker = ShardWorker(spec, shard_id, num_shards)
        self._state = None
        self._result = None

    def start(self) -> float:
        return self._worker.next_time()

    def send_step(self, until: float, msgs: List[TrunkMsg]) -> None:
        self._state = self._worker.step(until, msgs)

    def recv_state(self):
        return self._state

    def send_finish(self) -> None:
        self._result = self._worker.finish()

    def recv_result(self) -> dict:
        return self._result

    def close(self) -> None:
        pass


def _worker_main(conn, spec: ClusterSpec, shard_id: int,
                 num_shards: int) -> None:  # pragma: no cover - child process
    """Forked worker body: a step/finish loop over one pipe."""
    try:
        worker = ShardWorker(spec, shard_id, num_shards)
        conn.send(("ready", worker.next_time()))
        while True:
            msg = conn.recv()
            if msg[0] == "step":
                conn.send(("state",) + worker.step(msg[1], msg[2]))
            elif msg[0] == "finish":
                conn.send(("result", worker.finish()))
                return
            else:
                raise ClusterError(f"unknown command {msg[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _ProcessHandle:
    """Worker in a forked process; windows across shards overlap."""

    def __init__(self, spec: ClusterSpec, shard_id: int, num_shards: int,
                 step_timeout: Optional[float] = None):
        import multiprocessing as mp
        self.shard_id = shard_id
        self.step_timeout = step_timeout
        #: Last sync window end this worker acknowledged (``-inf`` until
        #: the first "state" reply) — shipped inside :class:`WorkerHung`.
        self.last_window = float("-inf")
        self._sent_window = float("-inf")
        self.escalated = False
        ctx = mp.get_context("fork")
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(target=_worker_main,
                                 args=(child, spec, shard_id, num_shards),
                                 daemon=True)
        self._proc.start()
        child.close()

    def _recv(self, want: str):
        if self.step_timeout is not None and \
                not self._conn.poll(self.step_timeout):
            raise WorkerHung(
                self.shard_id, self.last_window,
                f"awaiting {want!r} after {self.step_timeout:g}s")
        try:
            msg = self._conn.recv()
        except (EOFError, ConnectionResetError):
            # EOF when the pipe drained first; ECONNRESET when the kill
            # landed while we were mid-read.  Same fact either way.
            self._proc.join(timeout=SHUTDOWN_GRACE_S)
            raise WorkerDied(self.shard_id, self._proc.exitcode) from None
        if msg[0] == "error":
            raise ClusterError(
                f"shard {self.shard_id} crashed:\n{msg[1]}")
        if msg[0] != want:
            raise ClusterError(
                f"shard {self.shard_id}: expected {want!r}, got {msg[0]!r}")
        return msg[1:]

    def start(self) -> float:
        return self._recv("ready")[0]

    def _send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # A kill lands mid-write just as easily as mid-read; same
            # fact as the _recv EOF, same typed error.
            self._proc.join(timeout=SHUTDOWN_GRACE_S)
            raise WorkerDied(self.shard_id, self._proc.exitcode) from None

    def send_step(self, until: float, msgs: List[TrunkMsg]) -> None:
        self._sent_window = until
        self._send(("step", until, msgs))

    def recv_state(self):
        state = self._recv("state")
        self.last_window = self._sent_window
        return state

    def send_finish(self) -> None:
        self._send(("finish",))

    def recv_result(self) -> dict:
        return self._recv("result")[0]

    def close(self) -> None:
        """Shut the worker down, escalating if it will not die.

        Grace join → SIGTERM → grace join → SIGKILL → join.  Sets
        ``escalated`` when the clean join was not enough, so the runner
        can turn a leaked-process situation into a loud
        :class:`WorkerHung` instead of hiding it.
        """
        self._conn.close()
        deadline = time.monotonic() + SHUTDOWN_GRACE_S
        self._proc.join(timeout=max(0.0, deadline - time.monotonic()))
        if self._proc.is_alive():
            self.escalated = True
            self._proc.terminate()
            self._proc.join(timeout=SHUTDOWN_GRACE_S)
            if self._proc.is_alive():  # pragma: no cover - defensive
                self._proc.kill()
                self._proc.join()


class ClusterRunner:
    """Partition, spawn, synchronize, merge."""

    def __init__(self, spec: ClusterSpec, num_workers: int,
                 processes: bool = False,
                 step_timeout: Optional[float] = None):
        self.spec = spec
        self.num_workers = num_workers
        self.processes = processes
        self.step_timeout = step_timeout
        #: Live worker handles while :meth:`run` executes (the serve
        #: supervisor's signal tests and operators introspect pids here).
        self.handles: List = []
        bp = spec.blueprint()
        self.partition = partition_blueprint(bp, num_workers)
        self.lookahead = lookahead(bp, self.partition)
        self._bp = bp

    def run(self) -> ClusterResult:
        spec = self.spec
        if self.processes:
            handles = [_ProcessHandle(spec, i, self.num_workers,
                                      step_timeout=self.step_timeout)
                       for i in range(self.num_workers)]
        else:
            handles = [_InProcessHandle(spec, i, self.num_workers)
                       for i in range(self.num_workers)]
        self.handles = handles
        failed = True
        try:
            result = self._drive(handles)
            failed = False
        finally:
            for h in handles:
                h.close()
        # A worker that needed terminate/kill after a *clean* run is a
        # wedged shard: fail loudly rather than silently reap it.  (After
        # an error the original exception already tells the story.)
        if not failed:
            for h in handles:
                if getattr(h, "escalated", False):
                    raise WorkerHung(h.shard_id, h.last_window,
                                     "at shutdown; terminate/kill needed")
        return result

    def _shard_of_trunk_side(self, trunk: int, to_b: bool) -> int:
        a, _pa, b, _pb, _prop = self._bp.trunks[trunk]
        return self.partition.switch_shard[b if to_b else a]

    def _drive(self, handles) -> ClusterResult:
        spec = self.spec
        horizon = spec.horizon
        la = self.lookahead
        next_times = [h.start() for h in handles]
        t0 = time.perf_counter()   # exclude worker construction, as
        # run_single's wall clock excludes the oracle's build
        pending: Dict[int, List[TrunkMsg]] = {i: [] for i in
                                              range(len(handles))}
        barriers = 0
        trunk_msgs = 0
        while True:
            h_eff = min(
                min(next_times),
                min((m.deliver_at for msgs in pending.values()
                     for m in msgs), default=float("inf")))
            window_end = horizon if h_eff == float("inf") \
                else min(horizon, la + h_eff)
            for i, handle in enumerate(handles):
                handle.send_step(window_end, pending[i])
                pending[i] = []
            for i, handle in enumerate(handles):
                next_times[i], out = handle.recv_state()
                for msg in out:
                    dest = self._shard_of_trunk_side(msg.trunk, msg.to_b)
                    pending[dest].append(msg)
                    trunk_msgs += 1
            barriers += 1
            if window_end >= horizon:
                # Messages from the final window deliver after the
                # horizon (deliver_at > T' = horizon) — out of scope.
                break
        for handle in handles:
            handle.send_finish()
        results = [handle.recv_result() for handle in handles]
        wall = time.perf_counter() - t0
        merged = _merge_results(spec, results, self.num_workers)
        merged.barriers = barriers
        merged.trunk_msgs = trunk_msgs
        merged.wall_s = wall
        return merged


def _merge_results(spec: ClusterSpec, results: List[dict],
                   num_workers: int) -> ClusterResult:
    flows: Dict[int, dict] = {}
    for res in results:
        for fid, record in res["flows"].items():
            flows.setdefault(fid, {}).update(record)
    wire: Dict[str, list] = {}
    for res in results:
        wire.update(res["wire"])
    dumps = [res["metrics"] for res in results if res["metrics"] is not None]
    metrics = merge_metrics_dumps(dumps).dump() if dumps else None
    fault_counts: Dict[str, Dict[str, int]] = {}
    for res in results:
        # Each injection point lives in exactly one shard (the transmit
        # owner), so this union never collides.
        fault_counts.update(res.get("fault_counts", {}))
    return ClusterResult(
        spec=spec, num_workers=num_workers, flows=flows, wire=wire,
        metrics=metrics,
        events=sum(res["events"] for res in results),
        now=max(res["now"] for res in results),
        per_worker_events=[res["events"] for res in results],
        fault_counts=fault_counts)


def run_single(spec: ClusterSpec) -> ClusterResult:
    """The oracle: the whole fabric in one kernel, stock run loop."""
    worker = ShardWorker(spec, 0, 1)
    t0 = time.perf_counter()
    worker.run_to(spec.horizon)
    wall = time.perf_counter() - t0
    result = _merge_results(spec, [worker.finish()], 1)
    result.wall_s = wall
    return result


def run_cluster(spec: ClusterSpec, num_workers: int,
                processes: bool = False,
                step_timeout: Optional[float] = None) -> ClusterResult:
    if num_workers == 1 and not processes:
        return run_single(spec)
    return ClusterRunner(spec, num_workers, processes=processes,
                         step_timeout=step_timeout).run()


def assert_equivalent(oracle: ClusterResult, sharded: ClusterResult) -> None:
    """Bit-for-bit equivalence of the observables the paper cares about:
    CQE streams, wire traces (bytes *and* timestamps), merged metrics.

    Raises :class:`ClusterError` naming the first divergence.
    """
    if set(oracle.flows) != set(sharded.flows):
        raise ClusterError(f"flow sets differ: {sorted(oracle.flows)} "
                           f"vs {sorted(sharded.flows)}")
    for fid in sorted(oracle.flows):
        a, b = oracle.flows[fid], sharded.flows[fid]
        if set(a) != set(b):
            raise ClusterError(f"flow {fid}: record keys differ: "
                               f"{sorted(a)} vs {sorted(b)}")
        for key in sorted(a):
            if a[key] != b[key]:
                raise ClusterError(
                    f"flow {fid}: {key} diverges:\n  oracle : "
                    f"{a[key]!r}\n  sharded: {b[key]!r}")
    if set(oracle.wire) != set(sharded.wire):
        raise ClusterError("wiretapped host sets differ")
    for host in sorted(oracle.wire):
        ta, tb = oracle.wire[host], sharded.wire[host]
        if len(ta) != len(tb):
            raise ClusterError(f"wire trace {host}: {len(ta)} vs "
                               f"{len(tb)} records")
        for i, (ra, rb) in enumerate(zip(ta, tb)):
            if ra != rb:
                raise ClusterError(
                    f"wire trace {host}[{i}] diverges:\n  oracle : "
                    f"{ra!r}\n  sharded: {rb!r}")
    if (oracle.metrics is None) != (sharded.metrics is None):
        raise ClusterError("metrics present in one run only")
    if oracle.metrics is not None:
        norm_a = _normalize_metrics(oracle.metrics)
        norm_b = _normalize_metrics(sharded.metrics)
        if set(norm_a) != set(norm_b):
            only_a = set(norm_a) - set(norm_b)
            only_b = set(norm_b) - set(norm_a)
            raise ClusterError(f"metric names differ: only-oracle="
                               f"{sorted(only_a)} only-sharded="
                               f"{sorted(only_b)}")
        for name in sorted(norm_a):
            if norm_a[name] != norm_b[name]:
                raise ClusterError(
                    f"metric {name} diverges:\n  oracle : "
                    f"{norm_a[name]!r}\n  sharded: {norm_b[name]!r}")
    if oracle.fault_counts != sharded.fault_counts:
        raise ClusterError(
            f"fault counts diverge:\n  oracle : {oracle.fault_counts!r}\n"
            f"  sharded: {sharded.fault_counts!r}")
    if oracle.now != sharded.now:
        raise ClusterError(f"final times differ: {oracle.now} vs "
                           f"{sharded.now}")


def _normalize_metrics(dump: Dict[str, dict]) -> Dict[str, object]:
    """Shard-order-independent view: histogram samples as sorted lists,
    gauges by extremes (a global last-write does not survive sharding)."""
    out: Dict[str, object] = {}
    for name, entry in dump.items():
        kind = entry["type"]
        if kind == "counter":
            out[name] = ("counter", entry["value"])
        elif kind == "gauge":
            out[name] = ("gauge", entry["min"], entry["max"])
        else:
            out[name] = ("histogram", sorted(entry["samples"]))
    return out
