"""Declarative description of a cluster run.

A :class:`ClusterSpec` is a pure-data value (picklable, hashable pieces)
that fully determines a workload: topology, flows, horizon, seed.  Both
the single-process oracle and every shard worker rebuild their world
from the same spec, which is what makes the sharded run reproducible —
nothing about the construction depends on which process executes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..collectives.group import CollectiveWorkSpec
from ..errors import ConfigError
from ..fabric.topology import (FabricBlueprint, fat_tree_blueprint,
                               ring_blueprint)
from ..faults.plan import FaultBinding

#: Per-flow listener ports: flow ``i`` listens on ``FLOW_PORT_BASE + i``,
#: so any number of flows can share a destination host.
FLOW_PORT_BASE = 9000


@dataclass(frozen=True)
class FlowSpec:
    """One client/server pair riding the fabric."""

    flow_id: int
    kind: str                 # "ttcp" | "pingpong"
    src: int                  # client host index
    dst: int                  # server host index
    start: float = 0.0        # client-side start offset (us)
    total_bytes: int = 65536  # ttcp
    chunk: int = 8192
    queue_depth: int = 8
    recv_buffers: int = 16
    iterations: int = 10      # pingpong
    msg_size: int = 64
    verify: bool = False      # ttcp: seq-stamped payloads checked on receive

    @property
    def port(self) -> int:
        return FLOW_PORT_BASE + self.flow_id


@dataclass(frozen=True)
class ClusterSpec:
    """Everything a worker needs to rebuild its shard of the world."""

    topology: str = "fat-tree"          # "fat-tree" | "ring"
    hosts: int = 8
    hosts_per_edge: int = 4             # fat-tree
    spines: int = 2
    ring_switches: int = 4              # ring (hosts spread evenly)
    trunk_propagation: float = 1.0
    flows: Tuple[FlowSpec, ...] = ()
    horizon: float = 5_000_000.0        # us; must exceed flow completion
    seed: int = 1
    mtu: int = 16384
    capture_hosts: Tuple[str, ...] = () # host names to wiretap
    metrics: bool = False
    faults: Tuple[FaultBinding, ...] = ()  # wire faults, per injection point
    # One collective op across every host (rank i on host i); records
    # land under COLLECTIVE_FLOW_BASE + rank in the flow results.
    collective: Optional[CollectiveWorkSpec] = None

    def blueprint(self) -> FabricBlueprint:
        if self.topology == "fat-tree":
            return fat_tree_blueprint(
                self.hosts, hosts_per_edge=self.hosts_per_edge,
                spines=self.spines,
                trunk_propagation=self.trunk_propagation)
        if self.topology == "ring":
            if self.hosts % self.ring_switches:
                raise ConfigError("ring: hosts must divide evenly over "
                                  "ring_switches")
            return ring_blueprint(
                self.ring_switches,
                hosts_per_switch=self.hosts // self.ring_switches,
                trunk_propagation=self.trunk_propagation)
        raise ConfigError(f"unknown topology {self.topology!r}")


def make_flows(kind: str, hosts: int, count: int, seed: int = 1,
               total_bytes: int = 65536, chunk: int = 8192,
               iterations: int = 10, msg_size: int = 64,
               stagger: float = 200.0) -> Tuple[FlowSpec, ...]:
    """Deterministic flow list: host pairs drawn from ``seed``, start
    times staggered so connection handshakes do not all collide at t=0.

    Pairs are biased toward crossing the fabric (src and dst halves), the
    interesting case for trunk contention and shard cuts.
    """
    if hosts < 2:
        raise ConfigError("need at least 2 hosts for a flow")
    rng = random.Random(seed)
    flows = []
    for i in range(count):
        src = rng.randrange(hosts)
        dst = (src + hosts // 2 + rng.randrange(max(1, hosts // 4))) % hosts
        if dst == src:
            dst = (src + 1) % hosts
        flows.append(FlowSpec(
            flow_id=i, kind=kind, src=src, dst=dst,
            start=round(rng.uniform(0.0, stagger), 3),
            total_bytes=total_bytes, chunk=chunk,
            iterations=iterations, msg_size=msg_size))
    return tuple(flows)


def incast_flows(senders: int, hosts: int, dst: int = 0,
                 total_bytes: int = 16384, chunk: int = 4096,
                 stagger: float = 0.0, verify: bool = True,
                 queue_depth: int = 8) -> Tuple[FlowSpec, ...]:
    """N→1 incast: every host but ``dst`` streams to ``dst`` at once.

    ``stagger`` spreads the start offsets linearly (0 = the worst case:
    all senders fire together).  The returned flows are ttcp with
    verified payloads by default — incast collapse must never surface as
    corruption or loss, only as time.
    """
    if senders < 1:
        raise ConfigError("incast needs at least 1 sender")
    if senders >= hosts:
        raise ConfigError(f"incast {senders}->1 needs {senders + 1} hosts, "
                          f"have {hosts}")
    if not 0 <= dst < hosts:
        raise ConfigError(f"incast dst {dst} outside 0..{hosts - 1}")
    srcs = [h for h in range(hosts) if h != dst][:senders]
    return tuple(FlowSpec(
        flow_id=i, kind="ttcp", src=src, dst=dst,
        start=round(i * stagger, 3), total_bytes=total_bytes,
        chunk=chunk, verify=verify, queue_depth=queue_depth)
        for i, src in enumerate(srcs))
