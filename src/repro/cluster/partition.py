"""Partition a fabric blueprint into shards along trunk links.

The cut is host-driven: host-bearing switches are grouped contiguously
(by switch id) into ``num_shards`` groups of roughly equal host count,
and hostless switches (fat-tree spines) are round-robined across shards.
Only trunks may be cut — a host link never crosses a shard boundary, so
every NIC lives in the same kernel as its edge switch.

The conservative sync lookahead comes from the cut trunks themselves: a
packet entering a cut trunk at time *t* cannot be delivered before
``t + propagation + 1/bandwidth`` (cut-through switches forward after a
header flit of at least one byte; real Myrinet frames are far larger, so
the floor is strict, never tight — see docs/cluster.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError
from ..fabric.topology import FabricBlueprint


@dataclass
class Partition:
    """Switch → shard assignment plus the induced trunk cut."""

    num_shards: int
    switch_shard: Dict[int, int]
    cross_trunks: List[int]          # indices into blueprint.trunks

    def hosts_of(self, bp: FabricBlueprint, shard: int) -> List[int]:
        return [i for i, (_n, sid, _p) in enumerate(bp.hosts)
                if self.switch_shard[sid] == shard]


def partition_blueprint(bp: FabricBlueprint, num_shards: int) -> Partition:
    if num_shards < 1:
        raise ConfigError("num_shards must be >= 1")
    total_hosts = len(bp.hosts)
    if total_hosts == 0:
        raise ConfigError("cannot partition a fabric with no hosts")
    hosts_per_switch: Dict[int, int] = {}
    for _name, sid, _port in bp.hosts:
        hosts_per_switch[sid] = hosts_per_switch.get(sid, 0) + 1
    if num_shards > len(hosts_per_switch):
        raise ConfigError(
            f"{num_shards} shards but only {len(hosts_per_switch)} "
            "host-bearing switches (a host link cannot be cut)")
    switch_shard: Dict[int, int] = {}
    # Contiguous host-balanced grouping over host-bearing switches.
    cumulative = 0
    for sid in range(len(bp.switch_ports)):
        count = hosts_per_switch.get(sid, 0)
        if count:
            switch_shard[sid] = min(num_shards - 1,
                                    cumulative * num_shards // total_hosts)
            cumulative += count
    # Hostless switches (spines) round-robin for trunk-cut balance.
    spill = 0
    for sid in range(len(bp.switch_ports)):
        if sid not in switch_shard:
            switch_shard[sid] = spill % num_shards
            spill += 1
    cross = [i for i, (a, _pa, b, _pb, _prop) in enumerate(bp.trunks)
             if switch_shard[a] != switch_shard[b]]
    shards_used = set(switch_shard.values())
    if len(shards_used) != num_shards:
        raise ConfigError(f"partition produced only {len(shards_used)} "
                          f"non-empty shards of {num_shards}")
    return Partition(num_shards, switch_shard, cross)


def lookahead(bp: FabricBlueprint, part: Partition) -> float:
    """The sync window floor: minimum cross-trunk latency.

    Any packet crossing a cut trunk takes at least the trunk propagation
    plus one byte of cut-through serialization, so a window of this width
    can be simulated in parallel with all inbound deliveries known.
    """
    if not part.cross_trunks:
        return float("inf")
    return min(bp.trunks[i][4] for i in part.cross_trunks) \
        + 1.0 / bp.bandwidth
