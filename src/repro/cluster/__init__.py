"""Sharded parallel simulation of datacenter-scale QPIP fabrics.

The paper's scalability argument ("a large array of devices ... scalable
throughput", §1) needs topologies a single Python event loop cannot
reach in tolerable wall-clock time.  ``repro.cluster`` partitions a
fabric blueprint at trunk links into shards, runs each shard in its own
:class:`~repro.sim.Simulator` (optionally its own worker process), and
synchronizes them with a conservative time-windowed protocol whose
lookahead is the cut trunks' propagation + serialization floor.

The headline property is *bit-for-bit determinism*: a sharded run
produces exactly the CQE streams, wire traces, and metrics of the
single-process run — see docs/cluster.md for the protocol and the
tie-break interpolation that makes it hold.
"""

from .partition import Partition, lookahead, partition_blueprint
from .runner import (ClusterResult, ClusterRunner, WorkerDied, WorkerHung,
                     assert_equivalent, run_cluster, run_single)
from .shard import ClusterError, PortalDirection, PortalLink, ShardWorker, \
    TrunkMsg
from .spec import ClusterSpec, FlowSpec, incast_flows, make_flows

__all__ = [
    "ClusterSpec", "FlowSpec", "make_flows", "incast_flows",
    "Partition", "partition_blueprint", "lookahead",
    "ShardWorker", "TrunkMsg", "PortalLink", "PortalDirection",
    "ClusterRunner", "ClusterResult", "ClusterError", "WorkerDied",
    "WorkerHung",
    "run_cluster", "run_single", "assert_equivalent",
]
