"""One shard of a partitioned fabric: local switches, hosts, portals.

A :class:`ShardWorker` rebuilds *its* slice of the blueprint inside a
private :class:`~repro.sim.Simulator`.  Trunks whose far switch lives in
another shard are replaced by a :class:`PortalLink`: the transmit side
runs the normal link serialization (same busy-until FIFO, hooks, stats,
observability — byte-for-byte the code path of a real
:class:`~repro.fabric.link.Link` direction), but instead of scheduling
the delivery callback it appends a :class:`TrunkMsg` to the shard's
outbox.  The coordinator carries the message to the destination shard,
which injects it at the exact ``deliver_at`` the single-process run
would have used (see :meth:`repro.sim.Simulator.inject` for how the
tie-break is preserved).

Construction order is the determinism backbone: every shard iterates the
*global* blueprint and flow list, instantiating only local pieces — so
each kernel sees the same relative creation order (host index order,
then flow order, server before client) as the oracle, which pins the
t=0 bootstrap ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..collectives.group import COLLECTIVE_FLOW_BASE, peer_pairs
from ..collectives.runner import collective_rank_driver
from ..core import QpipFirmware, QpipInterface
from ..errors import ConfigError, ReproError
from ..fabric.link import Link, _Direction
from ..fabric.switch import MyrinetSwitch
from ..faults.inject import FaultInjector
from ..hw import Host, ProgrammableNic
from ..net.addresses import IPv6Address
from ..net.packet import Packet
from ..obs.trace import TraceRecorder
from ..sim import RngHub, Simulator
from ..tools.wiretap import Wiretap
from .partition import Partition, partition_blueprint
from .spec import ClusterSpec
from .workloads import CLIENT_DRIVERS, SERVER_DRIVERS


class ClusterError(ReproError):
    """A shard failed, a flow did not finish, or the sync protocol was
    violated; carries the offending shard id when known."""


@dataclass
class TrunkMsg:
    """A packet in flight across a cut trunk (picklable)."""

    trunk: int          # index into blueprint.trunks
    to_b: bool          # True: deliver at side b's switch port
    t_send: float       # when the transmit scheduled the delivery
    deliver_at: float   # exact simulated delivery timestamp
    pkt: Packet

    def sort_key(self) -> Tuple[float, int, bool]:
        return (self.t_send, self.trunk, self.to_b)


class _PortalPeer:
    """Stands in for the remote cut-through switch port on a cut trunk:
    just enough attachment surface for ``_Direction.transmit``."""

    __slots__ = ("name",)
    rx_mode = "cut_through"

    def __init__(self, name: str):
        self.name = name

    def on_receive(self, pkt, at):  # pragma: no cover - never scheduled
        raise ClusterError(f"{self.name}: portal peer cannot receive")


class PortalDirection(_Direction):
    """A link direction whose deliveries leave the process."""

    def __init__(self, sim: Simulator, bandwidth: float, propagation: float,
                 name: str, outbox: List[TrunkMsg], trunk: int, to_b: bool):
        super().__init__(sim, bandwidth, propagation,
                         _PortalPeer(f"{name}~peer"), name)
        self._outbox = outbox
        self._trunk = trunk
        self._to_b = to_b

    def _schedule_delivery(self, pkt: Packet, deliver_at: float,
                           copies: int) -> None:
        now = self.sim.now
        self._outbox.append(
            TrunkMsg(self._trunk, self._to_b, now, deliver_at, pkt))
        for _ in range(copies):
            self._outbox.append(TrunkMsg(self._trunk, self._to_b, now,
                                         deliver_at, pkt.copy_shallow()))


class PortalLink:
    """The local half of a cut trunk; mimics the Link surface the switch
    port needs (transmit / direction_from)."""

    def __init__(self, sim: Simulator, local, bandwidth: float,
                 propagation: float, name: str, direction_name: str,
                 outbox: List[TrunkMsg], trunk: int, to_b: bool):
        self.sim = sim
        self.name = name
        self.a = local
        self._dir = PortalDirection(sim, bandwidth, propagation,
                                    direction_name, outbox, trunk, to_b)
        local.link = self

    def transmit(self, pkt: Packet, src) -> None:
        self._dir.transmit(pkt)

    def direction_from(self, src) -> PortalDirection:
        return self._dir


@dataclass
class ShardNode:
    """A QPIP host living in this shard."""

    index: int
    host: Host
    nic: ProgrammableNic
    firmware: QpipFirmware
    iface: QpipInterface
    addr: IPv6Address
    name: str


class ShardWorker:
    """Builds and advances one shard (``num_shards == 1`` is the oracle)."""

    def __init__(self, spec: ClusterSpec, shard_id: int, num_shards: int):
        self.spec = spec
        self.shard_id = shard_id
        self.bp = spec.blueprint()
        self.part: Partition = partition_blueprint(self.bp, num_shards)
        self.sim = Simulator()
        self.outbox: List[TrunkMsg] = []
        self.recorder: Optional[TraceRecorder] = None
        if spec.metrics:
            self.recorder = TraceRecorder(self.sim, capacity=1_000_000)
        self.switches: Dict[int, MyrinetSwitch] = {}
        self.nodes: Dict[int, ShardNode] = {}
        self.results: Dict[int, dict] = {}
        self.taps: Dict[str, Wiretap] = {}
        self._flow_procs: List[Tuple[int, str, object]] = []
        # (trunk index, to_b) -> local switch-port attachment to inject at
        self._trunk_rx: Dict[Tuple[int, bool], object] = {}
        # trunk index -> locally-owned transmit directions by "a2b"/"b2a"
        self._trunk_dirs: Dict[int, Dict[str, _Direction]] = {}
        self.injectors: Dict[str, FaultInjector] = {}
        self._last_until = 0.0
        prev = obs.RECORDER
        obs.RECORDER = self.recorder
        try:
            self._build()
        finally:
            obs.RECORDER = prev

    # -- construction ----------------------------------------------------

    def _local_switch(self, sid: int) -> bool:
        return self.part.switch_shard[sid] == self.shard_id

    def _build(self) -> None:
        bp, sim = self.bp, self.sim
        for sid, num_ports in enumerate(bp.switch_ports):
            if self._local_switch(sid):
                self.switches[sid] = MyrinetSwitch(
                    sim, num_ports, name=f"myr-sw{sid}",
                    latency=bp.switch_latency)
        for idx, (a, pa, b, pb, prop) in enumerate(bp.trunks):
            name = f"trunk{a}.{pa}-{b}.{pb}"
            local_a, local_b = self._local_switch(a), self._local_switch(b)
            if local_a and local_b:
                link = Link(sim, self.switches[a].port(pa),
                            self.switches[b].port(pb),
                            bp.bandwidth, prop, name=name)
                self._trunk_dirs[idx] = {
                    "a2b": link.direction_from(link.a),
                    "b2a": link.direction_from(link.b)}
            elif local_a:
                port = self.switches[a].port(pa)
                pl = PortalLink(sim, port, bp.bandwidth, prop, name,
                                f"{name}:a->b", self.outbox, idx, to_b=True)
                self._trunk_rx[(idx, False)] = port
                self._trunk_dirs[idx] = {"a2b": pl.direction_from(port)}
            elif local_b:
                port = self.switches[b].port(pb)
                pl = PortalLink(sim, port, bp.bandwidth, prop, name,
                                f"{name}:b->a", self.outbox, idx, to_b=False)
                self._trunk_rx[(idx, True)] = port
                self._trunk_dirs[idx] = {"b2a": pl.direction_from(port)}
        # Hosts in global index order (bootstrap-order backbone).
        for i, (hname, sid, port) in enumerate(bp.hosts):
            if not self._local_switch(sid):
                continue
            host = Host(sim, f"qpip-host{i}")
            nic = ProgrammableNic(sim, host, mtu=self.spec.mtu, name="qpnic")
            addr = IPv6Address.from_index(i + 1)
            firmware = QpipFirmware(nic, addr, isn_seed=i)
            Link(sim, nic.attachment, self.switches[sid].port(port),
                 bp.bandwidth, bp.propagation, name=f"host-{hname}")
            iface = QpipInterface(firmware, host, process_name=f"app{i}")
            self.nodes[i] = ShardNode(i, host, nic, firmware, iface,
                                      addr, hname)
        # Routes (pure table writes, no events).
        if self.spec.collective is not None:
            coll = self.spec.collective
            for r_a, r_b in peer_pairs(self.spec.hosts, coll.algo,
                                       coll.variant):
                a_name = self.bp.hosts[r_a][0]
                b_name = self.bp.hosts[r_b][0]
                if r_a in self.nodes:
                    self.nodes[r_a].firmware.add_route(
                        IPv6Address.from_index(r_b + 1),
                        source_route=bp.route(a_name, b_name))
                if r_b in self.nodes:
                    self.nodes[r_b].firmware.add_route(
                        IPv6Address.from_index(r_a + 1),
                        source_route=bp.route(b_name, a_name))
        for fs in self.spec.flows:
            src_name, _s, _p = self.bp.hosts[fs.src]
            dst_name, _d, _q = self.bp.hosts[fs.dst]
            if fs.src in self.nodes:
                self.nodes[fs.src].firmware.add_route(
                    IPv6Address.from_index(fs.dst + 1),
                    source_route=bp.route(src_name, dst_name))
            if fs.dst in self.nodes:
                self.nodes[fs.dst].firmware.add_route(
                    IPv6Address.from_index(fs.src + 1),
                    source_route=bp.route(dst_name, src_name))
        # Fault bindings: pure hook installs, no events.  Every shard
        # validates every binding (errors must not depend on the cut),
        # but only the shard owning the transmit side installs it.
        self._install_faults()
        # Wiretaps before flows spawn, so t=0 traffic is captured too.
        capture = set(self.spec.capture_hosts)
        for i, node in self.nodes.items():
            if node.name in capture:
                tap = Wiretap(sim)
                tap.attach_qpip_nic(node.nic)
                self.taps[node.name] = tap
        # Flow drivers in global flow order, server before client.
        for fs in self.spec.flows:
            record = self.results.setdefault(fs.flow_id, {})
            if fs.dst in self.nodes:
                gen = SERVER_DRIVERS[fs.kind](sim, self.nodes[fs.dst],
                                              fs, record)
                self._flow_procs.append((fs.flow_id, "server",
                                         sim.process(gen)))
            if fs.src in self.nodes:
                gen = CLIENT_DRIVERS[fs.kind](
                    sim, self.nodes[fs.src],
                    IPv6Address.from_index(fs.dst + 1), fs, record)
                self._flow_procs.append((fs.flow_id, "client",
                                         sim.process(gen)))
        # Collective ranks after the flows, in rank order.
        if self.spec.collective is not None:
            coll = self.spec.collective
            for rank in range(self.spec.hosts):
                if rank not in self.nodes:
                    continue
                fid = COLLECTIVE_FLOW_BASE + rank
                record = self.results.setdefault(fid, {})
                gen = collective_rank_driver(sim, self.nodes[rank], rank,
                                             self.spec.hosts, coll, record)
                self._flow_procs.append((fid, "collective",
                                         sim.process(gen)))

    def _install_faults(self) -> None:
        """Bind the spec's fault plans to their local link directions.

        Each binding gets an RNG stream named after its injection point
        (derived from the spec seed), so a given direction sees the same
        fault decisions for the same packet sequence whether the fabric
        runs in one kernel or sharded — the injector state lives wholly
        in the shard that owns the transmit side.
        """
        if not self.spec.faults:
            return
        hub = RngHub(self.spec.seed)
        host_index = {name: i for i, (name, _sid, _port)
                      in enumerate(self.bp.hosts)}
        for binding in self.spec.faults:
            kind, selector, direction = binding.target()
            if kind == "trunk":
                idx = int(selector)
                if idx >= len(self.bp.trunks):
                    raise ConfigError(
                        f"fault binding {binding.where!r}: trunk {idx} "
                        f"not in blueprint ({len(self.bp.trunks)} trunks)")
                target = self._trunk_dirs.get(idx, {}).get(direction)
            else:
                if selector not in host_index:
                    raise ConfigError(
                        f"fault binding {binding.where!r}: unknown host "
                        f"{selector!r}")
                node = self.nodes.get(host_index[selector])
                if node is None:
                    target = None
                else:
                    link = node.nic.attachment.link
                    src = node.nic.attachment if direction == "tx" \
                        else link.b
                    target = link.direction_from(src)
            if target is None:
                continue            # transmit side lives in another shard
            injector = FaultInjector(self.sim, binding.plan(),
                                     hub.stream(binding.rng_stream_name()))
            target.add_hook(injector)
            self.injectors[binding.where] = injector

    # -- the conservative window protocol --------------------------------

    def next_time(self) -> float:
        return self.sim.next_live_time()

    def step(self, until: float,
             incoming: List[TrunkMsg]) -> Tuple[float, List[TrunkMsg]]:
        """Inject this window's deliveries, run to ``until``, and report
        (next local event time, messages generated this window)."""
        prev = obs.RECORDER
        obs.RECORDER = self.recorder
        try:
            for msg in sorted(incoming, key=TrunkMsg.sort_key):
                target = self._trunk_rx.get((msg.trunk, msg.to_b))
                if target is None:
                    raise ClusterError(
                        f"shard {self.shard_id}: message for trunk "
                        f"{msg.trunk} (to_b={msg.to_b}) has no local port")
                self.sim.inject(msg.deliver_at, msg.t_send,
                                target.on_receive, msg.pkt, target)
            self.sim.run_window(until)
        finally:
            obs.RECORDER = prev
        # Drain in place: the portal directions hold a reference to this
        # exact list, so rebinding would orphan them.
        out = list(self.outbox)
        self.outbox.clear()
        self.sim.trim_window_log(until)
        self._last_until = until
        return self.sim.next_live_time(), out

    def run_to(self, until: float) -> None:
        """Oracle path: the stock ``run()`` loop, no windowing."""
        prev = obs.RECORDER
        obs.RECORDER = self.recorder
        try:
            self.sim.run(until=until)
        finally:
            obs.RECORDER = prev

    # -- results ---------------------------------------------------------

    def finish(self) -> dict:
        unfinished = [(fid, side) for fid, side, proc in self._flow_procs
                      if not proc.triggered]
        if unfinished:
            raise ClusterError(
                f"shard {self.shard_id}: flows did not finish by the "
                f"horizon ({self.spec.horizon}us): {unfinished}")
        for fid, side, proc in self._flow_procs:
            if not proc.ok:
                raise proc.value
        wire = {
            name: [(rec.time, rec.direction,
                    b"".join(h.encode() for h in rec.packet.headers)
                    + rec.packet.payload.to_bytes())
                   for rec in tap.records]
            for name, tap in self.taps.items()}
        return {
            "shard": self.shard_id,
            "flows": self.results,
            "wire": wire,
            "metrics": (self.recorder.metrics.dump()
                        if self.recorder is not None else None),
            "fault_counts": {where: inj.counts()
                             for where, inj in self.injectors.items()},
            "events": self.sim._events_processed,
            "now": self.sim.now,
        }
