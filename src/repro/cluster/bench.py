"""Cluster scaling measurement: events/sec vs worker count.

Feeds the BENCH pipeline: results merge into ``BENCH_perf.json`` under
``"cluster_scaling"`` (alongside ``repro perf``'s kernel numbers) and
``benchmarks/bench_cluster_scaling.py`` renders them as a report.

Honesty note: events/sec here is total kernel events divided by
coordinator wall time, measured per worker count on the *same* spec.
Parallel speedup requires parallel hardware — the report records the
CPUs actually available (``sched_getaffinity``) so a flat curve on a
1-core container is attributable, and the determinism of the sharded
run is checked against the oracle regardless.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional

from .runner import assert_equivalent, run_cluster, run_single
from .spec import ClusterSpec, make_flows


def scaling_spec(hosts: int = 32, flows: int = 16,
                 total_bytes: int = 131072, chunk: int = 8192,
                 seed: int = 7, horizon: float = 20_000_000.0,
                 trunk_propagation: float = 5.0) -> ClusterSpec:
    """A ≥32-host fat-tree ttcp mix sized for the scaling benchmark.

    The inter-rack trunks are long (5us) — that widens the conservative
    sync window, so barrier IPC amortizes over real compute per round.
    """
    return ClusterSpec(
        topology="fat-tree", hosts=hosts,
        hosts_per_edge=max(2, hosts // 4), spines=2,
        trunk_propagation=trunk_propagation,
        flows=make_flows("ttcp", hosts, flows, seed=seed,
                         total_bytes=total_bytes, chunk=chunk),
        horizon=horizon, seed=seed)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_scaling(spec: Optional[ClusterSpec] = None,
                    worker_counts: Iterable[int] = (1, 2, 4),
                    processes: bool = True,
                    check_determinism: bool = True) -> Dict:
    """Run the spec at each worker count; return the scaling report."""
    spec = spec or scaling_spec()
    report: Dict = {
        "workload": "ttcp",
        "topology": spec.topology,
        "hosts": spec.hosts,
        "flows": len(spec.flows),
        "total_bytes_per_flow": spec.flows[0].total_bytes if spec.flows
        else 0,
        "processes": processes,
        "cpus_available": available_cpus(),
        "workers": {},
    }
    oracle = None
    if check_determinism:
        oracle = run_single(spec)
    baseline_eps = None
    for n in worker_counts:
        result = run_cluster(spec, n, processes=processes and n > 1)
        if oracle is not None:
            assert_equivalent(oracle, result)
        eps = result.events_per_sec
        if baseline_eps is None:
            baseline_eps = eps
        report["workers"][str(n)] = {
            "events": result.events,
            "wall_s": round(result.wall_s, 4),
            "events_per_sec": round(eps, 1),
            "speedup": round(eps / baseline_eps, 3) if baseline_eps else 0.0,
            "barriers": result.barriers,
            "trunk_msgs": result.trunk_msgs,
            "per_worker_events": result.per_worker_events,
        }
    if check_determinism:
        report["determinism"] = "sharded runs bit-identical to 1-process oracle"
    return report


def merge_into_bench_report(scaling: Dict,
                            path: str = "BENCH_perf.json") -> str:
    """Record the scaling numbers alongside the kernel perf report."""
    report = {}
    if os.path.exists(path):
        with open(path) as f:
            report = json.load(f)
    report["cluster_scaling"] = scaling
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def render_scaling(scaling: Dict) -> str:
    lines = [
        f"cluster scaling: {scaling['workload']} x{scaling['flows']} on "
        f"{scaling['hosts']}-host {scaling['topology']} "
        f"({scaling['cpus_available']} CPUs available, "
        f"{'processes' if scaling['processes'] else 'in-process'})",
        f"{'workers':>8} {'events':>10} {'wall s':>8} "
        f"{'events/s':>12} {'speedup':>8} {'barriers':>9}",
    ]
    for n in sorted(scaling["workers"], key=int):
        row = scaling["workers"][n]
        lines.append(
            f"{n:>8} {row['events']:>10,} {row['wall_s']:>8.3f} "
            f"{row['events_per_sec']:>12,.0f} {row['speedup']:>8.2f} "
            f"{row['barriers']:>9}")
    if "determinism" in scaling:
        lines.append(f"  determinism: {scaling['determinism']}")
    return "\n".join(lines)
