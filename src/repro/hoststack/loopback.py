"""Loopback pseudo-device.

Table 1's methodology: "overhead for the host-based inter-network stack
was determined by measuring RTT through the loopback interface" — the
loopback path exercises the whole stack minus the wire, so RTT/2 is a
lower bound on per-message host overhead.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.addresses import MacAddress
from ..net.packet import Packet
from ..sim import Simulator
from .kernel import HostKernel


class LoopbackNic:
    """lo: hands transmitted packets straight back to the receive path."""

    def __init__(self, sim: Simulator, mtu: int = 16436):
        self.sim = sim
        self.mtu = mtu
        self.mac = MacAddress.from_index(0x7F00)
        self.checksum_offload = True       # Linux skips checksums on lo
        self.timing = None
        # Table 1's methodology excludes NIC-driver work; lo is a pseudo
        # device with a trivial "driver".
        self.driver_rx_cost_override = 1.0
        self.driver_tx_cost_override = 1.0
        self.driver_rx: Optional[Callable[[Packet], None]] = None
        self.packets = 0

    def transmit(self, pkt: Packet) -> None:
        self.packets += 1
        # No DMA, no interrupt: the kernel requeues to the softirq path.
        self.driver_rx(pkt)


def attach_loopback(kernel: HostKernel, addr) -> LoopbackNic:
    """Create lo, bind ``addr`` to it, and route the address locally."""
    lo = LoopbackNic(kernel.sim)
    kernel.add_nic(lo, addr)
    kernel.add_route(addr, lo, next_mac=lo.mac)
    return lo
