"""The sockets API over the host kernel — the traditional interface the
paper compares against ("a series of read() and write() calls to a
socket", §3).

Sockets are coroutine-style: ``yield from sock.connect(...)``,
``yield from sock.send(...)``.  Every call pays syscall, socket-layer,
and copy costs on the host CPU; that is the point of the baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional, Tuple

from ..errors import SocketError
from ..net.addresses import Endpoint, IPAddress
from ..net.packet import EMPTY, Payload, concat
from ..net.tcp import TcpConfig, TcpConnection, TcpListener
from ..sim import Event
from .kernel import HostKernel


class _SocketCtx:
    """Connection context: kernel-side plumbing for one TCP socket."""

    def __init__(self, socket: "TcpSocket"):
        self.socket = socket
        self.kernel = socket.kernel

    def output_ready(self, conn) -> None:
        self.kernel.connection_ctx_drain(conn)

    def deliver(self, conn, payload, psh) -> None:
        self.socket._on_data(payload)

    def on_established(self, conn) -> None:
        self.socket._on_established(conn)

    def on_remote_fin(self, conn) -> None:
        self.socket._on_remote_fin()

    def on_closed(self, conn) -> None:
        self.socket._on_closed()

    def on_reset(self, conn, exc) -> None:
        self.socket._on_reset(exc)

    def on_send_complete(self, conn, msg_id) -> None:
        pass    # stream sockets have no message completions

    def on_send_buffer_space(self, conn) -> None:
        self.socket._on_send_space()


class TcpSocket:
    """A stream socket."""

    def __init__(self, kernel: HostKernel, local_addr: IPAddress,
                 config: Optional[TcpConfig] = None, in_kernel: bool = False):
        self.kernel = kernel
        self.sim = kernel.sim
        self.host = kernel.host
        self.local_addr = local_addr
        self.config = config
        self.in_kernel = in_kernel
        self.conn: Optional[TcpConnection] = None
        self.listener: Optional[TcpListener] = None
        self._rx: Deque[Payload] = deque()
        self._rx_bytes = 0
        self._rx_waiter: Optional[Event] = None
        self._space_waiter: Optional[Event] = None
        self._established: Optional[Event] = None
        self.remote_closed = False
        self.closed = False
        self.error: Optional[Exception] = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- cost helpers ------------------------------------------------------

    def _syscall_cost(self) -> float:
        t = self.host.timing
        return (0.0 if self.in_kernel else t.syscall) + t.socket_op

    def _charge(self, duration: float, category: str = "syscall") -> Event:
        return self.host.cpu.submit(duration, category=category)

    # -- configuration -----------------------------------------------------

    def _make_config(self, remote_addr: IPAddress) -> TcpConfig:
        if self.config is not None:
            return self.config
        mtu = self.kernel.mtu_to(remote_addr)
        ip_hdr = 40 if len(remote_addr.packed) == 16 else 20
        return TcpConfig(mss=mtu - ip_hdr - 20)

    # -- client ----------------------------------------------------------------

    def connect(self, remote: Endpoint, local_port: Optional[int] = None
                ) -> Generator:
        """Active open; completes when ESTABLISHED (raises on refusal)."""
        if self.conn is not None or self.listener is not None:
            raise SocketError("socket already in use")
        yield self._charge(self._syscall_cost())
        if local_port is None:
            local_port = self.kernel.stack.tcp.ephemeral_port()
        local = Endpoint(self.local_addr, local_port)
        self._established = Event(self.sim)
        self.conn = self.kernel.stack.tcp.connect(
            local, remote, self._make_config(remote.addr), _SocketCtx(self))
        yield self._established
        if self.error is not None:
            raise self.error

    # -- server -------------------------------------------------------------

    def listen(self, port: int, backlog: int = 8) -> None:
        if self.conn is not None or self.listener is not None:
            raise SocketError("socket already in use")
        local = Endpoint(self.local_addr, port)
        if self.config is not None:
            config = self.config
        else:
            mtu = self.kernel.mtu_of(self.local_addr)
            ip_hdr = 40 if len(self.local_addr.packed) == 16 else 20
            config = TcpConfig(mss=mtu - ip_hdr - 20)

        def ctx_factory():
            child = TcpSocket(self.kernel, self.local_addr,
                              config=config, in_kernel=self.in_kernel)
            ctx = _SocketCtx(child)
            return ctx

        self.listener = self.kernel.stack.tcp.listen(
            local, config, ctx_factory, backlog=backlog)

    def accept(self) -> Generator:
        """Yields the next established connection as a new TcpSocket."""
        if self.listener is None:
            raise SocketError("accept() on a non-listening socket")
        yield self._charge(self._syscall_cost())
        conn = yield self.listener.accept()
        sock = conn.ctx.socket
        sock.conn = conn
        return sock

    # -- data ------------------------------------------------------------------

    def send(self, payload: Payload) -> Generator:
        """Blocking send of the whole payload; returns bytes sent."""
        self._require_conn()
        yield self._charge(self._syscall_cost())
        offset = 0
        while offset < payload.length:
            if self.error is not None:
                raise self.error
            chunk = payload.slice(offset, payload.length - offset)
            taken = self.conn.send_stream(chunk)
            if taken:
                # user->kernel copy of what the send buffer accepted
                yield self._charge(self.host.copy_cost(taken), "copy")
                offset += taken
                self.bytes_sent += taken
            else:
                self._space_waiter = Event(self.sim)
                yield self._space_waiter
        return offset

    def recv(self, max_bytes: int) -> Generator:
        """Blocking receive; returns a Payload (EMPTY at orderly EOF)."""
        self._require_conn()
        yield self._charge(self._syscall_cost())
        while self._rx_bytes == 0:
            if self.error is not None:
                raise self.error
            if self.remote_closed or self.closed:
                return EMPTY
            self._rx_waiter = Event(self.sim)
            yield self._rx_waiter
        parts = []
        taken = 0
        while self._rx and taken < max_bytes:
            head = self._rx[0]
            want = max_bytes - taken
            if head.length <= want:
                parts.append(head)
                taken += head.length
                self._rx.popleft()
            else:
                parts.append(head.slice(0, want))
                self._rx[0] = head.slice(want, head.length - want)
                taken += want
        self._rx_bytes -= taken
        self.bytes_received += taken
        # kernel->user copy
        yield self._charge(self.host.copy_cost(taken), "copy")
        self.conn.app_consumed(taken)
        return concat(parts)

    def recv_exact(self, nbytes: int) -> Generator:
        """Receive exactly ``nbytes`` (raises on EOF mid-read)."""
        parts = []
        got = 0
        while got < nbytes:
            chunk = yield from self.recv(nbytes - got)
            if chunk.length == 0:
                raise SocketError(f"EOF after {got}/{nbytes} bytes")
            parts.append(chunk)
            got += chunk.length
        return concat(parts)

    def close(self) -> None:
        self.closed = True
        if self.listener is not None:
            self.listener.close()
        if self.conn is not None:
            self.conn.close()
        self._wake_all()

    def abort(self) -> None:
        self.closed = True
        if self.conn is not None:
            self.conn.abort()
        self._wake_all()

    # -- ctx callbacks -----------------------------------------------------------

    def _require_conn(self) -> None:
        if self.conn is None:
            raise SocketError("socket is not connected")
        if self.closed:
            raise SocketError("socket is closed")

    def _on_data(self, payload: Payload) -> None:
        self._rx.append(payload)
        self._rx_bytes += payload.length
        self._wake_rx()

    def _wake_rx(self) -> None:
        if self._rx_waiter is not None:
            waiter, self._rx_waiter = self._rx_waiter, None
            # Waking a blocked reader costs scheduler work.
            self.host.cpu.submit(self.host.timing.wakeup, category="wakeup",
                                 fn=waiter.succeed)

    def _on_send_space(self) -> None:
        if self._space_waiter is not None:
            waiter, self._space_waiter = self._space_waiter, None
            self.host.cpu.submit(self.host.timing.wakeup, category="wakeup",
                                 fn=waiter.succeed)

    def _on_established(self, conn) -> None:
        self.conn = conn
        if self._established is not None:
            self._established.succeed()

    def _on_remote_fin(self) -> None:
        self.remote_closed = True
        self._wake_rx_eof()

    def _on_closed(self) -> None:
        self.closed = True
        self._wake_all()

    def _on_reset(self, exc) -> None:
        self.error = exc
        self._wake_all()

    def _wake_rx_eof(self) -> None:
        if self._rx_waiter is not None:
            waiter, self._rx_waiter = self._rx_waiter, None
            waiter.succeed()

    def _wake_all(self) -> None:
        for attr in ("_rx_waiter", "_space_waiter", "_established"):
            waiter = getattr(self, attr)
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
            setattr(self, attr, None)


class UdpSocket:
    """A datagram socket."""

    def __init__(self, kernel: HostKernel, local_addr: IPAddress,
                 in_kernel: bool = False):
        self.kernel = kernel
        self.sim = kernel.sim
        self.host = kernel.host
        self.local_addr = local_addr
        self.in_kernel = in_kernel
        self.endpoint = None

    def bind(self, port: Optional[int] = None) -> int:
        self.endpoint = self.kernel.stack.udp.bind(port)
        return self.endpoint.port

    def _syscall_cost(self) -> float:
        t = self.host.timing
        return (0.0 if self.in_kernel else t.syscall) + t.socket_op

    def sendto(self, dst: Endpoint, payload: Payload) -> Generator:
        if self.endpoint is None:
            self.bind()
        t = self.host.timing
        entry = self.kernel.stack.ip.route_for(dst.addr)
        cost = (self._syscall_cost() + self.host.copy_cost(payload.length)
                + self.kernel.udp_send_cost(payload.length, entry.iface.nic))
        done = self.host.cpu.submit(
            cost, category="net-tx",
            fn=lambda: self.endpoint.send_to(self.local_addr, dst, payload))
        yield done

    def recvfrom(self) -> Generator:
        if self.endpoint is None:
            raise SocketError("recvfrom() before bind()")
        yield self._charge_recv_entry()
        datagram = yield self.endpoint.recv()
        yield self.host.cpu.submit(self.host.copy_cost(datagram.payload.length),
                                   category="copy")
        return datagram

    def _charge_recv_entry(self) -> Event:
        return self.host.cpu.submit(self._syscall_cost(), category="syscall")

    def close(self) -> None:
        if self.endpoint is not None:
            self.endpoint.close()
            self.endpoint = None
