"""The host kernel's networking engine: an InetStack where every packet
costs CPU time.

This is baseline infrastructure ("the Linux host-based IPv4 stack", §4.2):
interrupts feed a softirq queue; transmit charges tcp/ip/driver path costs
plus software checksums when the NIC lacks offload.  The identical protocol
logic later runs inside the QPIP NIC — only the cost attribution moves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .. import obs
from ..errors import ConfigError
from ..net import InetStack, RouteEntry
from ..net.addresses import IPAddress, MacAddress
from ..net.headers.ip import PROTO_TCP
from ..net.headers.transport import TCPHeader
from ..net.packet import Packet, Payload
from ..net.tcp import TcpConfig, TcpConnection, classify
from ..sim import Simulator
from ..hw.host import Host

SOFTIRQ_PRIORITY = -5


class _NicIface:
    """Adapter giving the IP layer an ``enqueue_tx`` per NIC."""

    def __init__(self, nic):
        self.nic = nic
        self.mtu = nic.mtu
        self.mac = getattr(nic, "mac", None)

    def enqueue_tx(self, pkt: Packet) -> None:
        self.nic.transmit(pkt)


class HostKernel:
    """Kernel networking for one host."""

    def __init__(self, sim: Simulator, host: Host, name: Optional[str] = None,
                 isn_seed: int = 0):
        self.sim = sim
        self.host = host
        self.name = name or f"{host.name}.kernel"
        self.stack = InetStack(sim, name=self.name, isn_seed=isn_seed)
        self.timing = host.timing
        self._ifaces: Dict[object, _NicIface] = {}
        self._addr_nic: Dict[object, object] = {}
        self._draining: set = set()
        self.packets_processed = 0

    # -- configuration -----------------------------------------------------

    def add_nic(self, nic, addr: IPAddress) -> None:
        iface = _NicIface(nic)
        self._ifaces[nic] = iface
        self._addr_nic[addr] = nic
        self.stack.ip.add_local(addr)
        nic.driver_rx = self._make_driver_rx(nic)

    def add_route(self, dst: IPAddress, nic,
                  next_mac: Optional[MacAddress] = None,
                  source_route: Optional[List[int]] = None) -> None:
        if nic not in self._ifaces:
            raise ConfigError(f"{self.name}: NIC not attached")
        self.stack.ip.add_route(dst, RouteEntry(
            iface=self._ifaces[nic], next_mac=next_mac,
            source_route=source_route or []))

    def mtu_to(self, dst: IPAddress) -> int:
        return self.stack.ip.route_for(dst).iface.mtu

    def mtu_of(self, local_addr: IPAddress) -> int:
        nic = self._addr_nic.get(local_addr)
        if nic is None:
            return 1500
        return nic.mtu

    # -- receive path (interrupt -> softirq) ---------------------------------

    def _make_driver_rx(self, nic) -> Callable[[Packet], None]:
        def driver_rx(pkt: Packet) -> None:
            cost = self._rx_cost(pkt, nic)
            self.host.cpu.submit(cost, category="net-rx",
                                 fn=lambda: self._softirq(pkt),
                                 priority=SOFTIRQ_PRIORITY)
        return driver_rx

    def _rx_cost(self, pkt: Packet, nic) -> float:
        t = self.timing
        driver = getattr(nic, "driver_rx_cost_override", None)
        cost = (t.driver_rx if driver is None else driver) + t.ip_rx
        cost += getattr(getattr(nic, "timing", None), "host_driver_rx_extra", 0.0)
        tcp = pkt.find(TCPHeader)
        if tcp is not None:
            kind = classify(tcp, pkt.payload.length)
            cost += t.tcp_rx_ack if kind == "ack" else t.tcp_rx_data
        else:
            cost += t.udp_rx
        if not getattr(nic, "checksum_offload", False):
            cost += self.host.checksum_cost(pkt.payload.length)
        nic_timing = getattr(nic, "timing", None)
        if nic_timing is not None and getattr(nic_timing, "rx_staging_copy", False):
            factor = getattr(nic_timing, "staging_copy_factor", 1.0)
            cost += factor * self.host.copy_cost(pkt.payload.length)
        return cost

    def _softirq(self, pkt: Packet) -> None:
        self.packets_processed += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("host", "host.rx", track=self.name,
                      pkt=pkt.trace_id, bytes=pkt.wire_size)
            rec.metrics.counter("host.rx_pkts").add()
        self.stack.packet_in(pkt)

    # -- transmit path ----------------------------------------------------------

    def connection_ctx_drain(self, conn: TcpConnection) -> None:
        """Serialize this connection's pending segments through timed
        kernel transmit work."""
        if conn in self._draining:
            return
        self._draining.add(conn)
        self._drain_step(conn)

    def _drain_step(self, conn: TcpConnection) -> None:
        desc = conn.next_descriptor()
        if desc is None:
            self._draining.discard(conn)
            return
        built = conn.build_segment(desc)
        if built is None:
            self._drain_step(conn)
            return
        hdr, payload = built
        try:
            entry = self.stack.ip.route_for(conn.tuple.remote.addr)
        except Exception:
            self._draining.discard(conn)
            raise
        t = self.timing
        nic = entry.iface.nic
        driver = getattr(nic, "driver_tx_cost_override", None)
        cost = t.tcp_tx + t.ip_tx + (t.driver_tx if driver is None else driver)
        cost += getattr(getattr(nic, "timing", None), "host_driver_tx_extra", 0.0)
        if not getattr(nic, "checksum_offload", False):
            cost += self.host.checksum_cost(payload.length)

        def emit():
            rec = obs.RECORDER
            if rec is not None:
                rec.event("host", "host.tx", track=self.name,
                          bytes=payload.length)
                rec.metrics.counter("host.tx_segs").add()
            self.stack.send_segment(conn, hdr, payload)
            self._drain_step(conn)

        self.host.cpu.submit(cost, category="net-tx", fn=emit)

    def udp_send_cost(self, payload_len: int, nic) -> float:
        t = self.timing
        cost = t.udp_tx + t.ip_tx + t.driver_tx
        if not getattr(nic, "checksum_offload", False):
            cost += self.host.checksum_cost(payload_len)
        return cost
