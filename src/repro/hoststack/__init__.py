"""Host-based inter-network stack: the baseline the paper measures against."""

from .kernel import HostKernel
from .loopback import LoopbackNic, attach_loopback
from .sockets import TcpSocket, UdpSocket

__all__ = ["HostKernel", "LoopbackNic", "attach_loopback", "TcpSocket",
           "UdpSocket"]
