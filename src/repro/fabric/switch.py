"""Switches: Myrinet source-routed cut-through, Ethernet store-and-forward.

The Myrinet switch is "switched and uses source-based, oblivious
cut-through routing" (paper §4.1): the packet carries its route; each
switch consumes one route byte and forwards after a small cut-through
latency.  The Ethernet switch learns MACs and forwards whole packets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import obs
from ..errors import ConfigError, RouteError
from ..net.headers.ip import ECN_CE, ECN_ECT0, ECN_ECT1, IPv4Header, IPv6Header
from ..net.headers.link import EthernetHeader, MyrinetHeader
from ..net.packet import Packet
from ..sim import Simulator
from .link import Attachment, run_packet_hooks


class _EgressHooksMixin:
    """Per-egress-port fault hooks, same contract as link directions
    (see :func:`repro.fabric.link.run_packet_hooks`)."""

    def _init_egress_hooks(self) -> None:
        self._egress_hooks: Dict[int, List] = {}
        self.dropped_fault = 0
        self.duplicated_fault = 0
        self.corrupted_fault = 0

    def add_egress_hook(self, port: int, hook) -> None:
        if not 0 <= port < len(self.ports):
            raise ConfigError(f"{self.name}: no egress port {port}")
        self._egress_hooks.setdefault(port, []).append(hook)

    def remove_egress_hook(self, port: int, hook) -> None:
        self._egress_hooks.get(port, []).remove(hook)

    def _apply_egress_hooks(self, pkt: Packet, port: int):
        """Returns (pkt, copies, delay) or None if the packet was dropped."""
        hooks = self._egress_hooks.get(port)
        if not hooks:
            return pkt, 0, 0.0
        pkt, drop, copies, delay, corrupted = run_packet_hooks(pkt, hooks)
        if corrupted:
            self.corrupted_fault += 1
        if drop:
            self.dropped_fault += 1
            return None
        self.duplicated_fault += copies
        return pkt, copies, delay


@dataclass
class RedParams:
    """Random Early Detection on switch output queues (paper §5.2:
    network-based congestion mechanisms "such as RED or ECN").

    ECN-capable packets (ECT set) are marked CE instead of dropped.
    """

    min_threshold: int = 8        # packets
    max_threshold: int = 24
    max_probability: float = 0.2
    ewma_weight: float = 0.25
    seed: int = 0xECD


class MyrinetSwitch(_EgressHooksMixin):
    """Source-routed cut-through crossbar."""

    def __init__(self, sim: Simulator, num_ports: int, name: str = "myr-sw",
                 latency: float = 0.3):
        self.sim = sim
        self.name = name
        self.latency = latency
        self.ports: List[Attachment] = [
            Attachment(f"{name}.p{i}", self._on_receive, rx_mode="cut_through")
            for i in range(num_ports)]
        self.forwarded = 0
        self.dropped_no_route = 0
        self._init_egress_hooks()

    def port(self, i: int) -> Attachment:
        return self.ports[i]

    def _on_receive(self, pkt: Packet, _at: Attachment) -> None:
        route = pkt.route
        if route is None or pkt.route_cursor >= len(route):
            self.dropped_no_route += 1
            return
        out = route[pkt.route_cursor]
        if not 0 <= out < len(self.ports):
            self.dropped_no_route += 1
            return
        pkt.route_cursor += 1
        verdict = self._apply_egress_hooks(pkt, out)
        if verdict is None:
            return
        pkt, copies, delay = verdict
        self.forwarded += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("fabric", "switch.fwd", track=self.name,
                      pkt=pkt.trace_id, out_port=out)
            rec.metrics.counter("fabric.switch_fwd").add()
        self.sim.call_later(self.latency + delay, self.ports[out].transmit, pkt)
        for _ in range(copies):
            self.sim.call_later(self.latency + delay, self.ports[out].transmit,
                                pkt.copy_shallow())


class EthernetSwitch(_EgressHooksMixin):
    """MAC-learning store-and-forward switch with per-port output queues."""

    def __init__(self, sim: Simulator, num_ports: int, name: str = "eth-sw",
                 latency: float = 2.0, queue_capacity: int = 128,
                 red: Optional[RedParams] = None):
        self.sim = sim
        self.name = name
        self.latency = latency
        self.queue_capacity = queue_capacity
        self.red = red
        self._red_rng = random.Random(red.seed if red else 0)
        self._red_avg: List[float] = [0.0] * num_ports
        self.red_marked = 0
        self.red_dropped = 0
        self.ports: List[Attachment] = [
            Attachment(f"{name}.p{i}", self._make_rx(i), rx_mode="store_forward")
            for i in range(num_ports)]
        self.mac_table: Dict[object, int] = {}
        self.forwarded = 0
        self.flooded = 0
        self.dropped_overflow = 0
        self._queues: List[List[Packet]] = [[] for _ in range(num_ports)]
        self._draining: List[bool] = [False] * num_ports
        self._init_egress_hooks()

    def port(self, i: int) -> Attachment:
        return self.ports[i]

    def _make_rx(self, port_index: int):
        def rx(pkt: Packet, _at: Attachment) -> None:
            self._on_receive(pkt, port_index)
        return rx

    def _on_receive(self, pkt: Packet, in_port: int) -> None:
        eth = pkt.find(EthernetHeader)
        if eth is None:
            self.dropped_overflow += 1
            return
        self.mac_table[eth.src] = in_port
        out = self.mac_table.get(eth.dst)
        if out is None or eth.dst.is_broadcast:
            self.flooded += 1
            for i in range(len(self.ports)):
                if i != in_port and self.ports[i].link is not None:
                    self._enqueue(pkt.copy_shallow(), i)
            return
        self._enqueue(pkt, out)

    def _enqueue(self, pkt: Packet, out_port: int) -> None:
        verdict = self._apply_egress_hooks(pkt, out_port)
        if verdict is None:
            return
        pkt, copies, delay = verdict
        if delay > 0:
            self.sim.call_later(delay, self._admit, pkt, out_port)
        else:
            self._admit(pkt, out_port)
        for _ in range(copies):
            self.sim.call_later(delay, self._admit, pkt.copy_shallow(), out_port)

    def _admit(self, pkt: Packet, out_port: int) -> None:
        q = self._queues[out_port]
        if self.red is not None and not self._red_admit(pkt, out_port):
            return
        if len(q) >= self.queue_capacity:
            self.dropped_overflow += 1   # tail drop under congestion
            return
        q.append(pkt)
        if not self._draining[out_port]:
            self._draining[out_port] = True
            self.sim.call_later(self.latency, self._drain, out_port)

    def _red_admit(self, pkt: Packet, out_port: int) -> bool:
        """RED: probabilistically mark (ECT) or drop as the queue builds."""
        red = self.red
        avg = (1 - red.ewma_weight) * self._red_avg[out_port] \
            + red.ewma_weight * len(self._queues[out_port])
        self._red_avg[out_port] = avg
        if avg < red.min_threshold:
            return True
        if avg >= red.max_threshold:
            p = 1.0
        else:
            p = red.max_probability * (avg - red.min_threshold) \
                / (red.max_threshold - red.min_threshold)
        if self._red_rng.random() >= p:
            return True
        ip = pkt.find(IPv4Header) or pkt.find(IPv6Header)
        if ip is not None and ip.ecn in (ECN_ECT0, ECN_ECT1):
            ip.set_ce()                # mark instead of dropping (RFC 3168)
            self.red_marked += 1
            return True
        self.red_dropped += 1
        return False

    def _drain(self, out_port: int) -> None:
        q = self._queues[out_port]
        if not q:
            self._draining[out_port] = False
            return
        pkt = q.pop(0)
        self.forwarded += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("fabric", "switch.fwd", track=self.name,
                      pkt=pkt.trace_id, out_port=out_port)
            rec.metrics.counter("fabric.switch_fwd").add()
        port = self.ports[out_port]
        port.transmit(pkt)
        # Pace the queue at the egress link rate so the capacity bound is real.
        direction = port.link.direction_from(port)
        pace = pkt.wire_size / direction.bandwidth
        self.sim.call_later(pace, self._drain, out_port)
