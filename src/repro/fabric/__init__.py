"""Switched interconnect fabrics: links, switches, topologies."""

from .link import Attachment, Link
from .switch import EthernetSwitch, MyrinetSwitch, RedParams
from .topology import (GIGE_BANDWIDTH, MYRINET_BANDWIDTH, EthernetFabric,
                       FabricNode, MyrinetFabric)

__all__ = [
    "Attachment", "Link", "EthernetSwitch", "MyrinetSwitch", "RedParams",
    "GIGE_BANDWIDTH", "MYRINET_BANDWIDTH", "EthernetFabric", "FabricNode",
    "MyrinetFabric",
]
