"""Switched interconnect fabrics: links, switches, topologies."""

from .link import Attachment, Link
from .switch import EthernetSwitch, MyrinetSwitch, RedParams
from .topology import (GIGE_BANDWIDTH, MYRINET_BANDWIDTH, EthernetFabric,
                       FabricBlueprint, FabricNode, MyrinetFabric,
                       fat_tree_blueprint, ring_blueprint)

__all__ = [
    "Attachment", "Link", "EthernetSwitch", "MyrinetSwitch", "RedParams",
    "GIGE_BANDWIDTH", "MYRINET_BANDWIDTH", "EthernetFabric", "FabricNode",
    "MyrinetFabric", "FabricBlueprint", "fat_tree_blueprint",
    "ring_blueprint",
]
