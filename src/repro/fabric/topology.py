"""Topology builders: wire hosts and switches, compute source routes.

``MyrinetFabric`` supports arbitrary switch graphs and computes
shortest-path source routes (one output-port byte per hop) with BFS —
the static IPv6→route table of the prototype is generated from this.
``EthernetFabric`` is the single-switch GigE baseline.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError, RouteError
from ..sim import Simulator
from ..units import gbit_per_sec
from .link import Attachment, Link
from .switch import EthernetSwitch, MyrinetSwitch

MYRINET_BANDWIDTH = gbit_per_sec(2.0)     # 2.0 Gb/s full duplex (paper §4.1)
GIGE_BANDWIDTH = gbit_per_sec(1.0)


@dataclass
class FabricNode:
    """A host attachment point in a fabric."""

    name: str
    attachment: Attachment
    switch_id: int
    switch_port: int


class MyrinetFabric:
    """Switched Myrinet: hosts hang off cut-through switches."""

    def __init__(self, sim: Simulator, bandwidth: float = MYRINET_BANDWIDTH,
                 propagation: float = 0.1, switch_latency: float = 0.3):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.switch_latency = switch_latency
        self.switches: List[MyrinetSwitch] = []
        self.hosts: Dict[str, FabricNode] = {}
        # inter-switch wiring: (switch_a, port_a) <-> (switch_b, port_b)
        self._trunks: List[Tuple[int, int, int, int]] = []
        self._next_port: List[int] = []

    def add_switch(self, num_ports: int = 16) -> int:
        sid = len(self.switches)
        self.switches.append(MyrinetSwitch(
            self.sim, num_ports, name=f"myr-sw{sid}",
            latency=self.switch_latency))
        self._next_port.append(0)
        return sid

    def _alloc_port(self, sid: int) -> int:
        port = self._next_port[sid]
        if port >= len(self.switches[sid].ports):
            raise ConfigError(f"switch {sid} is out of ports")
        self._next_port[sid] = port + 1
        return port

    def connect_switches(self, a: int, b: int,
                         propagation: Optional[float] = None) -> None:
        pa = self._alloc_port(a)
        pb = self._alloc_port(b)
        Link(self.sim, self.switches[a].port(pa), self.switches[b].port(pb),
             self.bandwidth,
             self.propagation if propagation is None else propagation,
             name=f"trunk{a}.{pa}-{b}.{pb}")
        self._trunks.append((a, pa, b, pb))

    def attach_host(self, name: str, attachment: Attachment,
                    switch_id: int = 0) -> FabricNode:
        if name in self.hosts:
            raise ConfigError(f"duplicate host {name}")
        port = self._alloc_port(switch_id)
        Link(self.sim, attachment, self.switches[switch_id].port(port),
             self.bandwidth, self.propagation, name=f"host-{name}")
        node = FabricNode(name, attachment, switch_id, port)
        self.hosts[name] = node
        return node

    def source_route(self, src: str, dst: str) -> List[int]:
        """BFS shortest path: one egress-port byte per switch traversed."""
        if src not in self.hosts or dst not in self.hosts:
            raise RouteError(f"unknown host in route {src}->{dst}")
        src_node, dst_node = self.hosts[src], self.hosts[dst]
        if src == dst:
            raise RouteError("no route to self over the fabric")
        # Graph over switches via trunks.  Neighbor lists are sorted by
        # explicit (switch_id, out_port) so the BFS visit order — and
        # therefore which of several equal-cost routes wins — is pinned,
        # independent of trunk insertion order.
        adjacency: Dict[int, List[Tuple[int, int, int]]] = {}
        for a, pa, b, pb in self._trunks:
            adjacency.setdefault(a, []).append((b, pa, pb))
            adjacency.setdefault(b, []).append((a, pb, pa))
        for neighbors in adjacency.values():
            neighbors.sort()
        start, goal = src_node.switch_id, dst_node.switch_id
        # BFS for the egress-port sequence between switches.
        frontier = deque([(start, [])])
        seen = {start}
        path: Optional[List[int]] = None
        while frontier:
            sid, ports = frontier.popleft()
            if sid == goal:
                path = ports
                break
            for nxt, out_port, _in_port in adjacency.get(sid, []):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, ports + [out_port]))
        if path is None:
            raise RouteError(f"no switch path {src}->{dst}")
        return path + [dst_node.switch_port]

    def host_link(self, name: str) -> Link:
        return self.hosts[name].attachment.link


@dataclass
class FabricBlueprint:
    """Pure-data description of a Myrinet fabric: no :class:`Simulator`.

    A blueprint can be instantiated whole (:meth:`build_fabric`) or
    partitioned into shards that each build only their own switches
    (:mod:`repro.cluster`).  For sharded and single-process builds to be
    bit-for-bit identical, port numbering is fixed *in the blueprint*
    using the same sequential allocator as :class:`MyrinetFabric`:
    trunks claim ports in list order first, then hosts in list order.
    Routes are likewise computed from the blueprint — never from a live
    fabric — with equal-cost ties pinned by a hash of the host pair.
    """

    switch_ports: List[int]                       # ports per switch
    trunks: List[Tuple[int, int, int, int, float]]  # (a, pa, b, pb, prop)
    hosts: List[Tuple[str, int, int]]             # (name, switch_id, port)
    bandwidth: float = MYRINET_BANDWIDTH
    propagation: float = 0.1                      # host links
    switch_latency: float = 0.3
    _dist_cache: Dict[int, Dict[int, int]] = field(
        default_factory=dict, repr=False, compare=False)

    def host_index(self, name: str) -> int:
        for i, (n, _sid, _port) in enumerate(self.hosts):
            if n == name:
                return i
        raise RouteError(f"unknown host {name}")

    def host(self, name: str) -> Tuple[str, int, int]:
        return self.hosts[self.host_index(name)]

    def adjacency(self) -> Dict[int, List[Tuple[int, int]]]:
        """``switch -> [(neighbor, out_port)]`` sorted by (neighbor, port)
        so every walk over the graph is independent of trunk order."""
        adj: Dict[int, List[Tuple[int, int]]] = {
            sid: [] for sid in range(len(self.switch_ports))}
        for a, pa, b, pb, _prop in self.trunks:
            adj[a].append((b, pa))
            adj[b].append((a, pb))
        for neighbors in adj.values():
            neighbors.sort()
        return adj

    def _dist_to(self, goal: int) -> Dict[int, int]:
        dist = self._dist_cache.get(goal)
        if dist is None:
            adj = self.adjacency()
            dist = {goal: 0}
            frontier = deque([goal])
            while frontier:
                u = frontier.popleft()
                for v, _p in adj[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        frontier.append(v)
            self._dist_cache[goal] = dist
        return dist

    def route(self, src: str, dst: str) -> List[int]:
        """Shortest-path source route with pinned ECMP tie-breaking.

        Among equal-cost next hops the choice is
        ``crc32("src|dst") % len(candidates)`` over the sorted candidate
        list — deterministic for a given host pair, yet spreading
        distinct pairs across parallel trunks (per-flow ECMP, no
        reordering within a pair).
        """
        if src == dst:
            raise RouteError("no route to self over the fabric")
        _sname, s_sid, _sport = self.host(src)
        _dname, d_sid, d_port = self.host(dst)
        dist = self._dist_to(d_sid)
        if s_sid not in dist:
            raise RouteError(f"no switch path {src}->{dst}")
        pick = zlib.crc32(f"{src}|{dst}".encode())
        adj = self.adjacency()
        ports: List[int] = []
        cur = s_sid
        while cur != d_sid:
            step = dist[cur] - 1
            candidates = [(v, p) for v, p in adj[cur]
                          if dist.get(v, -1) == step]
            cur, out_port = candidates[pick % len(candidates)]
            ports.append(out_port)
        return ports + [d_port]

    def build_fabric(self, sim: Simulator,
                     attachments: Dict[str, Attachment]) -> MyrinetFabric:
        """Instantiate the full fabric in canonical order.

        ``attachments`` maps host names to their NIC attachments.  The
        sequential port allocator must land every trunk and host on the
        port the blueprint pre-assigned; a mismatch means the blueprint
        was built with a different allocation rule and would silently
        desynchronize sharded builds, so it is a hard error.
        """
        fabric = MyrinetFabric(sim, self.bandwidth, self.propagation,
                               self.switch_latency)
        for ports in self.switch_ports:
            fabric.add_switch(ports)
        for a, pa, b, pb, prop in self.trunks:
            fabric.connect_switches(a, b, propagation=prop)
            if fabric._trunks[-1] != (a, pa, b, pb):
                raise ConfigError(
                    f"blueprint port mismatch on trunk {a}-{b}: "
                    f"expected ({a},{pa},{b},{pb}), "
                    f"allocated {fabric._trunks[-1]}")
        for name, sid, port in self.hosts:
            node = fabric.attach_host(name, attachments[name], sid)
            if node.switch_port != port:
                raise ConfigError(
                    f"blueprint port mismatch on host {name}: "
                    f"expected {port}, allocated {node.switch_port}")
        return fabric


def fat_tree_blueprint(hosts: int, hosts_per_edge: int = 4,
                       spines: int = 2, trunk_propagation: float = 1.0,
                       bandwidth: float = MYRINET_BANDWIDTH,
                       propagation: float = 0.1,
                       switch_latency: float = 0.3) -> FabricBlueprint:
    """Two-stage Clos / folded fat-tree: edge switches below, spines above.

    Every edge switch connects to every spine, so any host pair on
    different edges has ``spines`` equal-cost paths (pinned per pair by
    :meth:`FabricBlueprint.route`).  Switch ids: edges ``0..E-1`` then
    spines ``E..E+S-1``.  ``trunk_propagation`` models long inter-rack
    runs and sets the cluster sync lookahead, so it defaults higher than
    the in-rack host links.
    """
    if hosts < 1 or hosts_per_edge < 1 or spines < 1:
        raise ConfigError("fat tree needs hosts, hosts_per_edge, spines >= 1")
    edges = (hosts + hosts_per_edge - 1) // hosts_per_edge
    switch_ports = [spines + hosts_per_edge] * edges + [edges] * spines
    trunks: List[Tuple[int, int, int, int, float]] = []
    next_port = [0] * (edges + spines)
    for e in range(edges):
        for s in range(spines):
            spine = edges + s
            pa, next_port[e] = next_port[e], next_port[e] + 1
            pb, next_port[spine] = next_port[spine], next_port[spine] + 1
            trunks.append((e, pa, spine, pb, trunk_propagation))
    host_list: List[Tuple[str, int, int]] = []
    for i in range(hosts):
        sid = i // hosts_per_edge
        port, next_port[sid] = next_port[sid], next_port[sid] + 1
        host_list.append((f"h{i}", sid, port))
    return FabricBlueprint(switch_ports, trunks, host_list,
                           bandwidth, propagation, switch_latency)


def ring_blueprint(switches: int, hosts_per_switch: int = 2,
                   trunk_propagation: float = 1.0,
                   bandwidth: float = MYRINET_BANDWIDTH,
                   propagation: float = 0.1,
                   switch_latency: float = 0.3) -> FabricBlueprint:
    """A cycle of switches, each with local hosts — the smallest topology
    where a contiguous partition cuts exactly two trunks per boundary."""
    if switches < 3:
        raise ConfigError("a ring needs at least 3 switches")
    if hosts_per_switch < 1:
        raise ConfigError("hosts_per_switch must be >= 1")
    switch_ports = [2 + hosts_per_switch] * switches
    trunks: List[Tuple[int, int, int, int, float]] = []
    next_port = [0] * switches
    for i in range(switches):
        j = (i + 1) % switches
        pa, next_port[i] = next_port[i], next_port[i] + 1
        pb, next_port[j] = next_port[j], next_port[j] + 1
        trunks.append((i, pa, j, pb, trunk_propagation))
    host_list: List[Tuple[str, int, int]] = []
    for i in range(switches * hosts_per_switch):
        sid = i // hosts_per_switch
        port, next_port[sid] = next_port[sid], next_port[sid] + 1
        host_list.append((f"h{i}", sid, port))
    return FabricBlueprint(switch_ports, trunks, host_list,
                           bandwidth, propagation, switch_latency)


class EthernetFabric:
    """Hosts on one store-and-forward GigE switch."""

    def __init__(self, sim: Simulator, num_ports: int = 16,
                 bandwidth: float = GIGE_BANDWIDTH, propagation: float = 0.5,
                 switch_latency: float = 2.0):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.switch = EthernetSwitch(sim, num_ports, latency=switch_latency)
        self._next_port = 0
        self.hosts: Dict[str, Attachment] = {}

    def attach_host(self, name: str, attachment: Attachment) -> None:
        if name in self.hosts:
            raise ConfigError(f"duplicate host {name}")
        if self._next_port >= len(self.switch.ports):
            raise ConfigError("switch out of ports")
        Link(self.sim, attachment, self.switch.port(self._next_port),
             self.bandwidth, self.propagation, name=f"eth-{name}")
        self._next_port += 1
        self.hosts[name] = attachment

    def host_link(self, name: str) -> Link:
        return self.hosts[name].link
