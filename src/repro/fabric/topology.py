"""Topology builders: wire hosts and switches, compute source routes.

``MyrinetFabric`` supports arbitrary switch graphs and computes
shortest-path source routes (one output-port byte per hop) with BFS —
the static IPv6→route table of the prototype is generated from this.
``EthernetFabric`` is the single-switch GigE baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError, RouteError
from ..sim import Simulator
from ..units import gbit_per_sec
from .link import Attachment, Link
from .switch import EthernetSwitch, MyrinetSwitch

MYRINET_BANDWIDTH = gbit_per_sec(2.0)     # 2.0 Gb/s full duplex (paper §4.1)
GIGE_BANDWIDTH = gbit_per_sec(1.0)


@dataclass
class FabricNode:
    """A host attachment point in a fabric."""

    name: str
    attachment: Attachment
    switch_id: int
    switch_port: int


class MyrinetFabric:
    """Switched Myrinet: hosts hang off cut-through switches."""

    def __init__(self, sim: Simulator, bandwidth: float = MYRINET_BANDWIDTH,
                 propagation: float = 0.1, switch_latency: float = 0.3):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.switch_latency = switch_latency
        self.switches: List[MyrinetSwitch] = []
        self.hosts: Dict[str, FabricNode] = {}
        # inter-switch wiring: (switch_a, port_a) <-> (switch_b, port_b)
        self._trunks: List[Tuple[int, int, int, int]] = []
        self._next_port: List[int] = []

    def add_switch(self, num_ports: int = 16) -> int:
        sid = len(self.switches)
        self.switches.append(MyrinetSwitch(
            self.sim, num_ports, name=f"myr-sw{sid}",
            latency=self.switch_latency))
        self._next_port.append(0)
        return sid

    def _alloc_port(self, sid: int) -> int:
        port = self._next_port[sid]
        if port >= len(self.switches[sid].ports):
            raise ConfigError(f"switch {sid} is out of ports")
        self._next_port[sid] = port + 1
        return port

    def connect_switches(self, a: int, b: int) -> None:
        pa = self._alloc_port(a)
        pb = self._alloc_port(b)
        Link(self.sim, self.switches[a].port(pa), self.switches[b].port(pb),
             self.bandwidth, self.propagation, name=f"trunk{a}.{pa}-{b}.{pb}")
        self._trunks.append((a, pa, b, pb))

    def attach_host(self, name: str, attachment: Attachment,
                    switch_id: int = 0) -> FabricNode:
        if name in self.hosts:
            raise ConfigError(f"duplicate host {name}")
        port = self._alloc_port(switch_id)
        Link(self.sim, attachment, self.switches[switch_id].port(port),
             self.bandwidth, self.propagation, name=f"host-{name}")
        node = FabricNode(name, attachment, switch_id, port)
        self.hosts[name] = node
        return node

    def source_route(self, src: str, dst: str) -> List[int]:
        """BFS shortest path: one egress-port byte per switch traversed."""
        if src not in self.hosts or dst not in self.hosts:
            raise RouteError(f"unknown host in route {src}->{dst}")
        src_node, dst_node = self.hosts[src], self.hosts[dst]
        if src == dst:
            raise RouteError("no route to self over the fabric")
        # Graph over switches via trunks.
        adjacency: Dict[int, List[Tuple[int, int, int]]] = {}
        for a, pa, b, pb in self._trunks:
            adjacency.setdefault(a, []).append((b, pa, pb))
            adjacency.setdefault(b, []).append((a, pb, pa))
        start, goal = src_node.switch_id, dst_node.switch_id
        # BFS for the egress-port sequence between switches.
        frontier = deque([(start, [])])
        seen = {start}
        path: Optional[List[int]] = None
        while frontier:
            sid, ports = frontier.popleft()
            if sid == goal:
                path = ports
                break
            for nxt, out_port, _in_port in adjacency.get(sid, []):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, ports + [out_port]))
        if path is None:
            raise RouteError(f"no switch path {src}->{dst}")
        return path + [dst_node.switch_port]

    def host_link(self, name: str) -> Link:
        return self.hosts[name].attachment.link


class EthernetFabric:
    """Hosts on one store-and-forward GigE switch."""

    def __init__(self, sim: Simulator, num_ports: int = 16,
                 bandwidth: float = GIGE_BANDWIDTH, propagation: float = 0.5,
                 switch_latency: float = 2.0):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.switch = EthernetSwitch(sim, num_ports, latency=switch_latency)
        self._next_port = 0
        self.hosts: Dict[str, Attachment] = {}

    def attach_host(self, name: str, attachment: Attachment) -> None:
        if name in self.hosts:
            raise ConfigError(f"duplicate host {name}")
        if self._next_port >= len(self.switch.ports):
            raise ConfigError("switch out of ports")
        Link(self.sim, attachment, self.switch.port(self._next_port),
             self.bandwidth, self.propagation, name=f"eth-{name}")
        self._next_port += 1
        self.hosts[name] = attachment

    def host_link(self, name: str) -> Link:
        return self.hosts[name].link
