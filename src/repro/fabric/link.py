"""Point-to-point links: serialization, propagation, fault injection.

A link is full duplex: each direction serializes packets FIFO at the link
bandwidth, then delivers after the propagation delay.  Receivers declare
how much of the packet they need before acting:

* ``store_forward`` — the full packet (hosts, Ethernet switches);
* ``cut_through`` — just the header flit (Myrinet switches), so
  forwarding latency is ~header time, as in the paper's SAN.

Every direction (and, in :mod:`repro.fabric.switch`, every switch egress
port) exposes a uniform per-packet hook chain.  A hook receives the
packet about to go on the wire and returns:

* falsy — pass the packet through untouched;
* ``True`` — drop it (the legacy loss-hook contract);
* a :class:`FaultVerdict` — drop, duplicate, delay, or substitute a
  (e.g. corrupted) replacement packet.

Hooks compose: ``loss + corruption + reorder`` can all be installed on
one direction and each packet folds through the whole chain.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .. import obs
from ..errors import ConfigError
from ..net.packet import Packet
from ..sim import Simulator

CUT_THROUGH_HEADER_BYTES = 16    # flit carrying route + type + start of IP hdr


class FaultVerdict:
    """What a per-packet hook wants done with one packet.

    ``drop`` wins over everything else.  ``copies`` schedules that many
    extra deliveries of (shallow copies of) the packet.  ``delay`` adds
    to the delivery time — later traffic overtakes, which is how reorder
    is modelled.  ``packet`` substitutes a replacement (a corrupted
    copy); ``corrupted`` marks the verdict for the corruption counter.
    """

    __slots__ = ("drop", "copies", "delay", "packet", "corrupted")

    def __init__(self, drop: bool = False, copies: int = 0,
                 delay: float = 0.0, packet: Optional[Packet] = None,
                 corrupted: bool = False):
        self.drop = drop
        self.copies = copies
        self.delay = max(0.0, delay)
        self.packet = packet
        self.corrupted = corrupted

    def __repr__(self):
        bits = []
        if self.drop:
            bits.append("drop")
        if self.copies:
            bits.append(f"dup x{self.copies}")
        if self.delay:
            bits.append(f"delay {self.delay:.1f}us")
        if self.corrupted:
            bits.append("corrupt")
        return f"<FaultVerdict {' '.join(bits) or 'pass'}>"


def run_packet_hooks(pkt: Packet, hooks) -> Tuple[Packet, bool, int, float, bool]:
    """Fold a packet through a hook chain.

    Returns ``(packet, drop, copies, delay, corrupted)`` where ``packet``
    may be a replacement produced by a hook.  Used by both link
    directions and switch egress ports so all injection points share one
    contract.
    """
    drop = False
    copies = 0
    delay = 0.0
    corrupted = False
    current = pkt
    for hook in hooks:
        verdict = hook(current)
        if not verdict:
            continue
        if verdict is True:
            return current, True, copies, delay, corrupted
        if verdict.packet is not None:
            current = verdict.packet
        corrupted = corrupted or verdict.corrupted
        copies += verdict.copies
        delay += verdict.delay
        if verdict.drop:
            return current, True, copies, delay, corrupted
    return current, drop, copies, delay, corrupted


class Attachment:
    """One endpoint of a link: the receiving entity's contract."""

    def __init__(self, name: str, on_receive: Callable[[Packet, "Attachment"], None],
                 rx_mode: str = "store_forward"):
        if rx_mode not in ("store_forward", "cut_through"):
            raise ConfigError(f"bad rx_mode {rx_mode}")
        self.name = name
        self.on_receive = on_receive
        self.rx_mode = rx_mode
        self.link: Optional["Link"] = None

    def transmit(self, pkt: Packet) -> None:
        """Send a packet out of this attachment onto the link."""
        if self.link is None:
            raise ConfigError(f"{self.name}: attachment has no link")
        self.link.transmit(pkt, self)

    def __repr__(self):
        return f"<Attachment {self.name}>"


class _Direction:
    """One direction of a link: a serializing transmitter."""

    def __init__(self, sim: Simulator, bandwidth: float, propagation: float,
                 dst: Attachment, name: str):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.dst = dst
        self.name = name
        self._busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_delayed = 0
        self.packets_corrupted = 0
        self.busy_time = 0.0
        self.loss_hook: Optional[Callable[[Packet], bool]] = None
        self.hooks: List[Callable] = []

    def add_hook(self, hook) -> None:
        self.hooks.append(hook)

    def remove_hook(self, hook) -> None:
        self.hooks.remove(hook)

    def _active_hooks(self) -> List[Callable]:
        if self.loss_hook is None:
            return self.hooks
        return [self.loss_hook] + self.hooks

    def transmit(self, pkt: Packet) -> None:
        size = pkt.wire_size
        start = max(self.sim.now, self._busy_until)
        tx_time = size / self.bandwidth
        self._busy_until = start + tx_time
        self.busy_time += tx_time
        self.bytes_sent += size
        self.packets_sent += 1
        copies = 0
        extra_delay = 0.0
        hooks = self._active_hooks()
        rec = obs.RECORDER
        if hooks:
            pkt, drop, copies, extra_delay, corrupted = \
                run_packet_hooks(pkt, hooks)
            if corrupted:
                self.packets_corrupted += 1
                if rec is not None:
                    rec.event("link", "link.corrupt", track=self.name,
                              pkt=pkt.trace_id)
                    rec.metrics.counter("link.corrupted").add()
            if drop:
                self.packets_dropped += 1
                if rec is not None:
                    rec.event("link", "link.drop", track=self.name,
                              pkt=pkt.trace_id, bytes=size)
                    rec.metrics.counter("link.dropped").add()
                return
            if copies:
                self.packets_duplicated += copies
                if rec is not None:
                    rec.event("link", "link.dup", track=self.name,
                              pkt=pkt.trace_id, copies=copies)
                    rec.metrics.counter("link.duplicated").add(copies)
            if extra_delay:
                self.packets_delayed += 1
                if rec is not None:
                    rec.event("link", "link.delay", track=self.name,
                              pkt=pkt.trace_id, delay_us=extra_delay)
                    rec.metrics.counter("link.delayed").add()
        if rec is not None:
            rec.event("link", "link.tx", track=self.name,
                      pkt=pkt.trace_id, bytes=size)
            rec.metrics.counter("link.pkts").add()
            rec.metrics.counter("link.bytes").add(size)
        if self.dst.rx_mode == "cut_through":
            header_time = min(size, CUT_THROUGH_HEADER_BYTES) / self.bandwidth
            deliver_at = start + header_time + self.propagation
        else:
            deliver_at = start + tx_time + self.propagation
        deliver_at += extra_delay
        self._schedule_delivery(pkt, deliver_at, copies)

    def _schedule_delivery(self, pkt: Packet, deliver_at: float,
                           copies: int) -> None:
        """Hand the packet to the receiver at ``deliver_at``.

        Split out of :meth:`transmit` so a cluster shard can route the
        fully-timed packet across a process boundary instead
        (:class:`repro.cluster.shard.PortalDirection`) while sharing the
        serialization, hook, and accounting logic above byte-for-byte.
        """
        self.sim.call_later(deliver_at - self.sim.now, self.dst.on_receive,
                            pkt, self.dst)
        for _ in range(copies):
            self.sim.call_later(deliver_at - self.sim.now, self.dst.on_receive,
                                pkt.copy_shallow(), self.dst)

    def utilization(self, since: float, now: float) -> float:
        span = now - since
        return min(1.0, self.busy_time / span) if span > 0 else 0.0


class Link:
    """Full-duplex link between two attachments."""

    def __init__(self, sim: Simulator, a: Attachment, b: Attachment,
                 bandwidth: float, propagation: float = 0.1,
                 name: str = "link"):
        if bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        if propagation < 0:
            raise ConfigError("propagation must be non-negative")
        self.sim = sim
        self.name = name
        self.a = a
        self.b = b
        self._ab = _Direction(sim, bandwidth, propagation, b, f"{name}:a->b")
        self._ba = _Direction(sim, bandwidth, propagation, a, f"{name}:b->a")
        a.link = self
        b.link = self

    def transmit(self, pkt: Packet, src: Attachment) -> None:
        if src is self.a:
            self._ab.transmit(pkt)
        elif src is self.b:
            self._ba.transmit(pkt)
        else:
            raise ConfigError(f"{self.name}: {src!r} is not an endpoint")

    def direction_from(self, src: Attachment) -> _Direction:
        if src is self.a:
            return self._ab
        if src is self.b:
            return self._ba
        raise ConfigError(f"{self.name}: {src!r} is not an endpoint")

    def set_loss(self, from_attachment: Attachment,
                 hook: Optional[Callable[[Packet], bool]]) -> None:
        """Install (or clear) the legacy replace-only loss filter on the
        direction leaving ``from_attachment``.  Composable hooks go
        through :meth:`add_hook` instead."""
        self.direction_from(from_attachment).loss_hook = hook

    def add_hook(self, from_attachment: Attachment, hook) -> None:
        """Append a fault hook to the direction leaving ``from_attachment``.

        Unlike :meth:`set_loss`, hooks stack: each transmitted packet
        folds through every installed hook in order.
        """
        self.direction_from(from_attachment).add_hook(hook)

    def remove_hook(self, from_attachment: Attachment, hook) -> None:
        self.direction_from(from_attachment).remove_hook(hook)
