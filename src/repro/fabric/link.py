"""Point-to-point links: serialization, propagation, loss injection.

A link is full duplex: each direction serializes packets FIFO at the link
bandwidth, then delivers after the propagation delay.  Receivers declare
how much of the packet they need before acting:

* ``store_forward`` — the full packet (hosts, Ethernet switches);
* ``cut_through`` — just the header flit (Myrinet switches), so
  forwarding latency is ~header time, as in the paper's SAN.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError
from ..net.packet import Packet
from ..sim import Simulator

CUT_THROUGH_HEADER_BYTES = 16    # flit carrying route + type + start of IP hdr


class Attachment:
    """One endpoint of a link: the receiving entity's contract."""

    def __init__(self, name: str, on_receive: Callable[[Packet, "Attachment"], None],
                 rx_mode: str = "store_forward"):
        if rx_mode not in ("store_forward", "cut_through"):
            raise ConfigError(f"bad rx_mode {rx_mode}")
        self.name = name
        self.on_receive = on_receive
        self.rx_mode = rx_mode
        self.link: Optional["Link"] = None

    def transmit(self, pkt: Packet) -> None:
        """Send a packet out of this attachment onto the link."""
        if self.link is None:
            raise ConfigError(f"{self.name}: attachment has no link")
        self.link.transmit(pkt, self)

    def __repr__(self):
        return f"<Attachment {self.name}>"


class _Direction:
    """One direction of a link: a serializing transmitter."""

    def __init__(self, sim: Simulator, bandwidth: float, propagation: float,
                 dst: Attachment, name: str):
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.dst = dst
        self.name = name
        self._busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0
        self.busy_time = 0.0
        self.loss_hook: Optional[Callable[[Packet], bool]] = None

    def transmit(self, pkt: Packet) -> None:
        size = pkt.wire_size
        start = max(self.sim.now, self._busy_until)
        tx_time = size / self.bandwidth
        self._busy_until = start + tx_time
        self.busy_time += tx_time
        self.bytes_sent += size
        self.packets_sent += 1
        if self.loss_hook is not None and self.loss_hook(pkt):
            self.packets_dropped += 1
            return
        if self.dst.rx_mode == "cut_through":
            header_time = min(size, CUT_THROUGH_HEADER_BYTES) / self.bandwidth
            deliver_at = start + header_time + self.propagation
        else:
            deliver_at = start + tx_time + self.propagation
        self.sim.call_later(deliver_at - self.sim.now, self.dst.on_receive,
                            pkt, self.dst)

    def utilization(self, since: float, now: float) -> float:
        span = now - since
        return min(1.0, self.busy_time / span) if span > 0 else 0.0


class Link:
    """Full-duplex link between two attachments."""

    def __init__(self, sim: Simulator, a: Attachment, b: Attachment,
                 bandwidth: float, propagation: float = 0.1,
                 name: str = "link"):
        if bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        if propagation < 0:
            raise ConfigError("propagation must be non-negative")
        self.sim = sim
        self.name = name
        self.a = a
        self.b = b
        self._ab = _Direction(sim, bandwidth, propagation, b, f"{name}:a->b")
        self._ba = _Direction(sim, bandwidth, propagation, a, f"{name}:b->a")
        a.link = self
        b.link = self

    def transmit(self, pkt: Packet, src: Attachment) -> None:
        if src is self.a:
            self._ab.transmit(pkt)
        elif src is self.b:
            self._ba.transmit(pkt)
        else:
            raise ConfigError(f"{self.name}: {src!r} is not an endpoint")

    def direction_from(self, src: Attachment) -> _Direction:
        if src is self.a:
            return self._ab
        if src is self.b:
            return self._ba
        raise ConfigError(f"{self.name}: {src!r} is not an endpoint")

    def set_loss(self, from_attachment: Attachment,
                 hook: Optional[Callable[[Packet], bool]]) -> None:
        """Install a loss filter on the direction leaving ``from_attachment``."""
        self.direction_from(from_attachment).loss_hook = hook
