"""QPIP: Queue Pair IP — a simulated, full-system reproduction of
Buonadonna & Culler, "Queue Pair IP: A Hybrid Architecture for System
Area Networks" (ISCA 2002).

Public API tour:

* :mod:`repro.core`      — the contribution: QPs/CQs/WRs over an offloaded
  TCP/UDP/IPv6 stack in a programmable NIC.
* :mod:`repro.net`       — the inter-network protocol suite itself.
* :mod:`repro.hoststack` — the sockets baseline.
* :mod:`repro.fabric`    — Myrinet / Ethernet switched fabrics.
* :mod:`repro.hw`        — hosts, PCI, NICs, timing calibration.
* :mod:`repro.apps`      — ping-pong, ttcp, NBD network storage.
* :mod:`repro.bench`     — testbeds and experiment runners for every
  table and figure in the paper.
"""

from ._version import __version__

__all__ = ["__version__"]
