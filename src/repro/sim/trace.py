"""Lightweight event tracing.

Traces are (time, category, message) tuples kept in a bounded ring; tests
and the examples use them to assert on protocol behaviour (e.g. "a fast
retransmit happened before the RTO would have fired").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

TraceRecord = Tuple[float, str, str]


class Tracer:
    def __init__(self, sim, capacity: int = 100_000, echo: bool = False):
        self.sim = sim
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.echo = echo
        self.enabled_categories: Optional[set] = None  # None = all

    def enable_only(self, categories: Iterable[str]) -> None:
        self.enabled_categories = set(categories)

    def log(self, category: str, message: str) -> None:
        if self.enabled_categories is not None and category not in self.enabled_categories:
            return
        record = (self.sim.now, category, message)
        self.records.append(record)
        if self.echo:  # pragma: no cover - debugging aid
            print(f"[{record[0]:12.3f}us] {category:12s} {message}")

    def find(self, category: str, needle: str = "") -> List[TraceRecord]:
        return [r for r in self.records
                if r[1] == category and needle in r[2]]

    def count(self, category: str, needle: str = "") -> int:
        return len(self.find(category, needle))

    def clear(self) -> None:
        self.records.clear()


class NullTracer:
    """Tracer that drops everything (the default, for speed)."""

    def log(self, category: str, message: str) -> None:
        pass

    def find(self, category: str, needle: str = "") -> List[TraceRecord]:
        return []

    def count(self, category: str, needle: str = "") -> int:
        return 0

    def clear(self) -> None:
        pass
