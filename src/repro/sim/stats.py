"""Measurement instruments: counters, running stats, histograms, rate meters.

Experiments read these the way the paper read the LANai cycle counter and
``/proc`` CPU accounting — instruments observe; they never change behaviour.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class RunningStats:
    """Welford online mean/variance plus min/max."""

    def __init__(self, name: str = "stats"):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self.min = x if self.min is None else min(self.min, x)
        self.max = x if self.max is None else max(self.max, x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class Histogram:
    """Fixed-bucket histogram over [lo, hi) with overflow/underflow bins."""

    def __init__(self, lo: float, hi: float, buckets: int = 32, name: str = "hist"):
        if hi <= lo or buckets <= 0:
            raise ValueError("bad histogram bounds")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.counts: List[int] = [0] * buckets
        self.underflow = 0
        self.overflow = 0
        self._width = (hi - lo) / buckets

    def add(self, x: float) -> None:
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            self.counts[int((x - self.lo) / self._width)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def percentile(self, p: float) -> float:
        """Approximate percentile (bucket upper edge); p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        total = self.total
        if total == 0:
            return 0.0
        target = total * p / 100.0
        seen = self.underflow
        if seen >= target:
            return self.lo
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.lo + (i + 1) * self._width
        return self.hi


class RateMeter:
    """Byte/op rate over an observation window, in units per microsecond."""

    def __init__(self, name: str = "rate"):
        self.name = name
        self.amount = 0.0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def observe(self, now: float, amount: float) -> None:
        if self.start_time is None:
            self.start_time = now
        self.end_time = now
        self.amount += amount

    def rate(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        span = self.end_time - self.start_time
        return self.amount / span if span > 0 else 0.0

    def rate_over(self, t0: float, t1: float) -> float:
        span = t1 - t0
        return self.amount / span if span > 0 else 0.0


class StatsRegistry:
    """Per-entity bag of named instruments, for uniform report dumping."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.stats: Dict[str, RunningStats] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def running(self, name: str) -> RunningStats:
        if name not in self.stats:
            self.stats[name] = RunningStats(name)
        return self.stats[name]

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, s in self.stats.items():
            out[f"{name}.mean"] = s.mean
            out[f"{name}.count"] = s.count
        return out
