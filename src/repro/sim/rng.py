"""Deterministic named random streams.

Each consumer (loss injector, workload generator, ISN picker) draws from
its own stream so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import random
from typing import Dict


class RngHub:
    """Hands out independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int = 0x51B1):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            # Derive a child seed stably from (hub seed, stream name).
            child = random.Random((self.seed, name).__repr__())
            self._streams[name] = random.Random(child.getrandbits(64))
        return self._streams[name]
