"""Cancellable, restartable one-shot timers for protocol engines.

TCP needs timers that are constantly rescheduled (RTO, delayed ACK,
persist, TIME_WAIT).  :class:`Timer` wraps the kernel's callback handles
with a generation counter so stale expirations are ignored.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import SimulationError, Simulator


class Timer:
    """One-shot timer.  ``start`` re-arms, ``cancel`` disarms."""

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "timer"):
        self.sim = sim
        self.name = name
        self._callback = callback
        self._handle = None
        self._deadline: Optional[float] = None
        self.fire_count = 0

    @property
    def armed(self) -> bool:
        return self._handle is not None

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    @property
    def remaining(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self.sim.now)

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        self.cancel()
        self._deadline = self.sim.now + delay
        self._handle = self.sim.call_later(delay, self._fire)

    def start_if_idle(self, delay: float) -> None:
        """Arm only when not already armed (TCP RTO semantics)."""
        if not self.armed:
            self.start(delay)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
            self._deadline = None

    def _fire(self) -> None:
        self._handle = None
        self._deadline = None
        self.fire_count += 1
        self._callback()


class Watchdog:
    """Deadman timer: fires ``callback`` unless fed within ``timeout`` µs.

    The recovery layer arms one per supervised QP: every completion or
    successful post calls :meth:`feed`; if the peer goes silent (firmware
    stall, half-open connection from a mid-transfer kill) the expiry
    callback escalates to QP teardown instead of hanging forever.
    """

    def __init__(self, sim: Simulator, timeout: float,
                 callback: Callable[[], Any], name: str = "watchdog"):
        if timeout <= 0:
            raise SimulationError("watchdog timeout must be positive")
        self.sim = sim
        self.timeout = timeout
        self.name = name
        self.expirations = 0
        self.last_fed: Optional[float] = None
        self._callback = callback
        self._timer = Timer(sim, self._expire, name=name)

    @property
    def armed(self) -> bool:
        return self._timer.armed

    def feed(self) -> None:
        """Record liveness: push the expiry a full ``timeout`` out."""
        if self._timer.armed:
            self.last_fed = self.sim.now
            self._timer.start(self.timeout)

    def arm(self) -> None:
        self.last_fed = self.sim.now
        self._timer.start(self.timeout)

    def disarm(self) -> None:
        self._timer.cancel()

    def _expire(self) -> None:
        self.expirations += 1
        self._callback()


class PeriodicTimer:
    """Fires ``callback`` every ``period`` µs until stopped."""

    def __init__(self, sim: Simulator, period: float, callback: Callable[[], Any],
                 name: str = "periodic"):
        if period <= 0:
            raise SimulationError("period must be positive")
        self.sim = sim
        self.period = period
        self.name = name
        self._callback = callback
        self._timer = Timer(sim, self._tick, name=name)
        self.running = False

    def start(self) -> None:
        if not self.running:
            self.running = True
            self._timer.start(self.period)

    def stop(self) -> None:
        self.running = False
        self._timer.cancel()

    def _tick(self) -> None:
        if not self.running:
            return
        self._callback()
        if self.running:
            self._timer.start(self.period)
