"""Queueing resources built on the event kernel.

* :class:`Store` — unbounded (or bounded) FIFO of items with blocking gets.
* :class:`Mutex` — single-holder lock with a FIFO wait queue.
* :class:`WorkQueue` — a serial "processor": callers submit timed work
  items and receive an event that fires when the item completes.  This is
  the building block for host CPUs, NIC firmware processors, DMA engines
  and link transmitters, and it tracks busy time per category so that CPU
  utilization and NIC occupancy fall out of the model for free.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from .. import fastpath as _fastpath
from .engine import Event, SimulationError, Simulator


class Store:
    """FIFO item store: ``put`` never blocks unless a capacity is set."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.is_full:
            return False
        self.total_put += 1
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            self.total_got += 1
            getter.succeed(item)
            return True
        self._items.append(item)
        return True

    def put(self, item: Any) -> None:
        """Put, raising when full (SAN queues overflow loudly, not silently)."""
        if not self.try_put(item):
            raise SimulationError(f"store {self.name!r} overflow (capacity={self.capacity})")

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            self.total_got += 1
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            self.total_got += 1
            return self._items.popleft()
        return None

    def peek(self) -> Any:
        return self._items[0] if self._items else None


class Mutex:
    """A FIFO lock.  ``acquire()`` yields an event; call ``release()`` after."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: deque = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"mutex {self.name!r} released while unlocked")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class WorkItem:
    """A unit of timed work on a :class:`WorkQueue`."""

    __slots__ = ("duration", "category", "priority", "fn", "done", "submitted_at", "started_at")

    def __init__(self, duration: float, category: str, priority: int,
                 fn: Optional[Callable], done: Event, submitted_at: float):
        self.duration = duration
        self.category = category
        self.priority = priority
        self.fn = fn
        self.done = done
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None


class WorkQueue:
    """A serial processor with priority FIFO dispatch and busy accounting.

    Work runs one item at a time (non-preemptive).  Lower ``priority``
    values run first among queued items; ties are FIFO.  Each completed
    item charges its ``duration`` of busy time to its ``category``.

    Queues constructed with ``eager=True`` (NIC cores, DMA engines —
    anything fed exclusively by default-priority, callback-free work)
    take a fast path when the global fast-path switch is on: the serial
    core is modelled as an advancing busy horizon and each submission
    costs a single pre-triggered event at ``horizon + duration``,
    instead of an inner heap entry plus a dispatch callback plus a
    completion event.  Identical start/finish times, identical FIFO
    order; a submission with a callback or non-default priority (or an
    in-flight dispatch chain) falls back to the general path and
    serializes after the horizon.

    ``detailed=False`` turns off per-category accounting (the per-event
    dict churn) for callers that only need total utilization.
    """

    def __init__(self, sim: Simulator, name: str = "cpu",
                 eager: bool = False, detailed: bool = True):
        self.sim = sim
        self.name = name
        self.eager = eager
        self.detailed = detailed
        self._heap: list = []
        self._seq = 0
        self._busy = False
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.busy_by_category: dict = {}
        self._stats_epoch = 0.0
        self.items_completed = 0

    @property
    def queue_depth(self) -> int:
        return len(self._heap)

    @property
    def busy(self) -> bool:
        return self._busy or self.sim.now < self._busy_until

    def submit(self, duration: float, category: str = "work", priority: int = 0,
               fn: Optional[Callable] = None) -> Event:
        """Enqueue ``duration`` µs of work; the returned event fires on completion.

        ``fn`` (if given) runs at completion time, before the event fires.
        """
        if duration < 0:
            raise SimulationError(f"negative work duration: {duration}")
        sim = self.sim
        if fn is None and priority == 0 and not self._busy \
                and _fastpath.ENABLED:
            now = sim.now
            start = self._busy_until
            if start < now:
                start = now
            # Eager queues always take the fast path; priority-capable
            # queues (host CPUs) only when the core is idle *right now*
            # — then the item starts immediately in both models and,
            # being non-preemptible, cannot be reordered by a later
            # higher-priority arrival.
            if self.eager or (start == now and not self._heap):
                finish = start + duration
                self._busy_until = finish
                self.busy_time += duration
                if self.detailed:
                    by_cat = self.busy_by_category
                    by_cat[category] = by_cat.get(category, 0.0) + duration
                self.items_completed += 1
                # Fire via call_later → succeed so the waiter's resume
                # order among same-time events is decided at completion
                # time, exactly like the general path below (handle →
                # _complete → succeed).  A plain Timeout here would give
                # the waiter a submission-time sequence number and flip
                # exact-time ties between fast and naive modes.
                done = Event(sim)
                sim.call_later(finish - now, done.succeed)
                return done
        done = Event(sim)
        item = WorkItem(duration, category, priority, fn, done, sim.now)
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, item))
        if not self._busy:
            self._dispatch()
        return done

    def submit_wait(self, duration: float, category: str = "work"):
        """:meth:`submit` for callers that ``yield`` the result immediately.

        On the fast path this returns a plain delay (float) — the
        process trampoline turns it into a reusable wake cell, skipping
        the Timeout allocation entirely.  Off the fast path (or under
        contention) it returns the normal completion event.  Never use
        this when the result is stored and yielded later: a plain delay
        starts counting when yielded, not when submitted.
        """
        if duration < 0:
            raise SimulationError(f"negative work duration: {duration}")
        if not self._busy and _fastpath.ENABLED:
            sim = self.sim
            now = sim.now
            start = self._busy_until
            if start < now:
                start = now
            if self.eager or (start == now and not self._heap):
                finish = start + duration
                self._busy_until = finish
                self.busy_time += duration
                if self.detailed:
                    by_cat = self.busy_by_category
                    by_cat[category] = by_cat.get(category, 0.0) + duration
                self.items_completed += 1
                return finish - now
        return self.submit(duration, category=category)

    def try_charge(self, duration: float, category: str = "work"):
        """Charge ``duration`` on the eager fast path and return the
        completion delay (float), or ``None`` when the fast path does
        not apply (the caller must fall back to :meth:`submit`).  No
        state changes on a ``None`` return.
        """
        if duration < 0:
            raise SimulationError(f"negative work duration: {duration}")
        if not self._busy and _fastpath.ENABLED:
            sim = self.sim
            now = sim.now
            start = self._busy_until
            if start < now:
                start = now
            if self.eager or (start == now and not self._heap):
                finish = start + duration
                self._busy_until = finish
                self.busy_time += duration
                if self.detailed:
                    by_cat = self.busy_by_category
                    by_cat[category] = by_cat.get(category, 0.0) + duration
                self.items_completed += 1
                return finish - now
        return None

    def submit_call(self, duration: float, fn: Callable,
                    category: str = "work") -> None:
        """Enqueue work whose completion is delivered by *calling* ``fn``
        instead of firing an Event.  On the fast path this is one burst
        walker in the kernel heap (no Event, no callback list, no timer
        handle); otherwise it degrades to :meth:`submit` plus a
        completion callback.  Identical completion time and same-time
        tie ordering in both modes.
        """
        delay = self.try_charge(duration, category)
        if delay is not None:
            self.sim.defer(delay, fn)
        else:
            done = self.submit(duration, category=category)
            done.callbacks.append(lambda _ev: fn())

    def _dispatch(self) -> None:
        if not self._heap:
            self._busy = False
            return
        self._busy = True
        _prio, _seq, item = heapq.heappop(self._heap)
        now = self.sim.now
        start = self._busy_until
        if start < now:
            start = now
        item.started_at = start
        self._busy_until = start + item.duration
        self.sim.call_later(self._busy_until - now, self._complete, item)

    def _complete(self, item: WorkItem) -> None:
        self.busy_time += item.duration
        if self.detailed:
            by_cat = self.busy_by_category
            by_cat[item.category] = by_cat.get(item.category, 0.0) + item.duration
        self.items_completed += 1
        if item.fn is not None:
            item.fn()
        item.done.succeed()
        self._dispatch()

    # -- accounting -------------------------------------------------------

    def reset_stats(self) -> None:
        self.busy_time = 0.0
        self.busy_by_category = {}
        self.items_completed = 0
        self._stats_epoch = self.sim.now

    def utilization(self) -> float:
        """Fraction of time busy since the last ``reset_stats``."""
        elapsed = self.sim.now - self._stats_epoch
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def utilization_of(self, category: str) -> float:
        elapsed = self.sim.now - self._stats_epoch
        if elapsed <= 0:
            return 0.0
        return self.busy_by_category.get(category, 0.0) / elapsed
