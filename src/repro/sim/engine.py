"""Deterministic discrete-event simulation kernel.

The kernel is a small, simpy-flavoured engine with two programming models:

* **Callback scheduling** — ``sim.call_later(delay, fn, *args)`` — used by
  the protocol engines (TCP timers, NIC firmware dispatch), mirroring how
  real stacks are written.
* **Coroutine processes** — generator functions that ``yield`` events
  (``sim.timeout(...)``, store gets, work-queue completions) — used by
  applications and benchmarks.

Time is a float in **microseconds**. All ties are broken by a monotonically
increasing sequence number, so a given program is bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Any, Callable, Generator, Iterable, Optional

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event is *triggered* (succeed or fail) at most once.  Once triggered
    it is queued on the event heap and its callbacks run when the simulator
    reaches it, in deterministic order.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully; callbacks run ``delay`` from now."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now + delay, sim._seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside any waiting process.  A failed
        event with *no* listeners crashes the simulation (loud failure).
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(delay, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled out-of-band (no crash)."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now + delay, sim._seq, self))


class _ProcWake:
    """Reusable heap entry for a process sleeping on a plain delay.

    A process waits on at most one thing at a time, so one wake cell per
    process can be re-pushed for every ``yield <float>`` without
    allocating a Timeout (event object + callback list) per wait.
    ``cancelled`` handles interruption: the stale heap entry is skipped
    and a fresh cell takes its place.

    ``fired`` implements the two-hop fire: the first pop re-pushes the
    cell at the same time with a fresh sequence number and only the
    second pop resumes the process.  The general work-queue path resumes
    waiters via completion-handle → ``succeed`` → heap push, so *its*
    resume order among same-time events is set at fire time; the wake
    cell must match that or fast and naive modes diverge on exact-time
    ties.
    """

    __slots__ = ("proc", "cancelled", "fired")

    def __init__(self, proc: "Process"):
        self.proc = proc
        self.cancelled = False
        self.fired = False


class _BurstWalk:
    """One heap item that walks a pre-planned burst of timed steps.

    A burst is a sequence of ``(time, fn)`` steps at non-decreasing
    times.  Scheduling the burst costs one heap push; each step then
    fires with the same same-time tie ordering as the two-hop
    :class:`_ProcWake` rule (first pop re-pushes with a fresh seq *only
    when another item shares the fire time*; the second pop runs the
    step).  After a step fires, the walker re-pushes itself for the next
    step with a fresh sequence number — exactly when a process-driven
    chain would push its next wake after resuming and doing the step's
    work — so entries created between steps order identically to the
    unbatched path.

    ``proc`` parks a process on the burst: a generator may ``yield`` the
    walker and is resumed when the final step has fired.  A single-step
    walker with no process is the :meth:`Simulator.defer` primitive, the
    allocation-light replacement for ``call_later(d, ev.succeed)`` plus
    an Event with one callback.
    """

    __slots__ = ("times", "fns", "idx", "fired", "cancelled", "proc")

    def __init__(self, times, fns):
        self.times = times
        self.fns = fns
        self.idx = 0
        self.fired = False
        self.cancelled = False
        self.proc: Optional["Process"] = None


# Sentinel passed to Process._resume when a plain-delay wake fires: looks
# like a processed, successful Event carrying None.
_WAKE_VALUE = Event.__new__(Event)
_WAKE_VALUE.callbacks = None
_WAKE_VALUE._value = None
_WAKE_VALUE._ok = True
_WAKE_VALUE._defused = False


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator may yield any :class:`Event` — or a plain non-negative
    ``float``, shorthand for a Timeout of that many microseconds that
    costs no event allocation.  The process resumes with the event's
    value (or has the event's exception thrown into it).
    """

    __slots__ = ("_gen", "_waiting_on", "_wake")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(sim)
        self._gen = generator
        self._wake: Optional[_ProcWake] = None
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()
        self._waiting_on: Optional[Event] = bootstrap

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        If the process has not started yet, the interrupt is raised at its
        first yield point.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._gen is self.sim._active_gen:
            raise SimulationError("a process cannot interrupt itself")
        kicker = Event(self.sim)
        kicker.callbacks.append(self._resume_interrupt)
        kicker.fail(Interrupt(cause))
        kicker.defuse()

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # the process finished before the interrupt was delivered
        waited = self._waiting_on
        if type(waited) is _ProcWake or type(waited) is _BurstWalk:
            # The stale heap entry is skipped when popped; the process
            # gets a fresh wake cell for its next plain-delay wait.  An
            # interrupted burst abandons its remaining steps, matching
            # the unbatched path where the process would no longer be
            # around to run them.
            waited.cancelled = True
        elif waited is not None and waited.callbacks is not None \
                and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        prev_gen, sim._active_gen = sim._active_gen, self._gen
        try:
            while True:
                try:
                    if event._ok:
                        target = self._gen.send(event._value)
                    else:
                        event._defused = True
                        target = self._gen.throw(event._value)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    sim._enqueue(0.0, self)
                    return
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    sim._enqueue(0.0, self)
                    return
                if not isinstance(target, Event):
                    if type(target) is float and target >= 0:
                        # Plain-delay wait: re-push this process's
                        # reusable wake cell instead of building a
                        # Timeout (no event object, no callback list).
                        wake = self._wake
                        if wake is None or wake.cancelled:
                            wake = self._wake = _ProcWake(self)
                        sim._seq += 1
                        heapq.heappush(sim._heap,
                                       (sim.now + target, sim._seq, wake))
                        self._waiting_on = wake
                        return
                    if type(target) is _BurstWalk:
                        # Park on an in-flight burst; the walker resumes
                        # this process after its final step fires.
                        target.proc = self
                        self._waiting_on = target
                        return
                    event = Event(sim)
                    event.fail(
                        SimulationError(f"process yielded a non-event: {target!r}"))
                    event.defuse()
                    continue
                if target.sim is not sim:
                    raise SimulationError("event belongs to a different simulator")
                if target.callbacks is None:
                    # Already-processed events resume the process immediately.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._waiting_on = target
                return
        finally:
            sim._active_gen = prev_gen


class AnyOf(Event):
    """Fires when any child event is processed; value is ``{event: value}``
    for the children that have completed by then."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._done: dict = {}
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev.processed:
                self._on_child(ev)
                return
            ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done[event] = event._value
        self.succeed(dict(self._done))


class AllOf(Event):
    """Fires when all child events have fired; value is ``{event: value}``."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = 0
        for ev in self._events:
            if not ev.processed:
                self._remaining += 1
                ev.callbacks.append(self._on_child)
        if self._remaining == 0:
            self.succeed({ev: ev._value for ev in self._events})

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev._value for ev in self._events})


class _CallbackHandle:
    """Cancellable handle returned by :meth:`Simulator.call_later`.

    Cancellation is lazy: the handle stays in the heap (marked dead) and
    is skipped when popped.  The simulator counts dead handles and
    compacts the heap when they are the majority, so timer-heavy
    protocols (TCP re-arming its RTO on every ACK) do not drown the
    heap in corpses.
    """

    __slots__ = ("_fn", "_args", "cancelled", "time", "_sim")

    def __init__(self, sim: "Simulator", fn: Callable, args: tuple, time: float):
        self._sim = sim
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.time = time

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._fn = None
        self._args = ()
        self._sim._note_cancelled()


class Simulator:
    """The event loop: a priority heap of (time, seq, item)."""

    #: Compaction floor: heaps smaller than this are never compacted
    #: (the rebuild would cost more than the dead entries).
    COMPACT_MIN_HEAP = 64

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._active_gen = None
        self._events_processed: int = 0
        self._dead_handles: int = 0
        self.compactions: int = 0
        # Window log for cross-simulator injection (repro.cluster): the
        # kernel seq value after the last event at each processed time,
        # appended by run_window().  Parallel arrays for bisect.
        self._log_times: list = []
        self._log_seqs: list = []
        self._injected: int = 0

    # -- scheduling primitives ------------------------------------------

    def _enqueue(self, delay: float, item) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, item))

    def _note_cancelled(self) -> None:
        """A handle in the heap died; compact when >50% of the heap is dead.

        Compaction preserves behaviour exactly: pop order of the
        remaining ``(time, seq, item)`` entries is a total order, so any
        heap over the same live entries drains identically.
        """
        self._dead_handles += 1
        if (self._dead_handles >= self.COMPACT_MIN_HEAP
                and self._dead_handles * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        live = [entry for entry in self._heap
                if not (type(entry[2]) is _CallbackHandle and entry[2].cancelled)]
        heapq.heapify(live)
        # In-place so the run loop's local binding of the heap stays valid.
        self._heap[:] = live
        self._dead_handles = 0
        self.compactions += 1

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_later(self, delay: float, fn: Callable, *args) -> _CallbackHandle:
        """Run ``fn(*args)`` after ``delay``; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        time = self.now + delay
        handle = _CallbackHandle(self, fn, args, time)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def call_soon(self, fn: Callable, *args) -> _CallbackHandle:
        return self.call_later(0.0, fn, *args)

    def defer(self, delay: float, fn: Callable) -> _BurstWalk:
        """Run ``fn()`` after ``delay`` via a single-step burst walker.

        Tie-order-equivalent to ``call_later(delay, done.succeed)`` plus
        an Event whose one callback is ``fn`` — the pattern every eager
        completion used to allocate — but costs one heap item and no
        Event/callback list.  The walker fires with the two-hop rule, so
        ``fn`` runs in the same position among same-time events as the
        event pop it replaces.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        walk = _BurstWalk((self.now + delay,), (fn,))
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, walk))
        return walk

    def burst(self, steps) -> _BurstWalk:
        """Schedule a burst: ``steps`` is a sequence of ``(delay, fn)``
        pairs with non-decreasing delays from now (``fn`` may be None
        for a pure wait step).  One heap push schedules the whole burst;
        each step fires at its exact time with naive-identical tie
        ordering (see :class:`_BurstWalk`).  Returns the walker; a
        process may ``yield`` it to park until the final step fires.
        """
        times = []
        fns = []
        prev = 0.0
        now = self.now
        for delay, fn in steps:
            if delay < prev:
                raise SimulationError(
                    f"burst delays must be non-decreasing: {delay} < {prev}")
            prev = delay
            times.append(now + delay)
            fns.append(fn)
        if not times:
            raise SimulationError("burst requires at least one step")
        walk = _BurstWalk(times, fns)
        self._seq += 1
        heapq.heappush(self._heap, (times[0], self._seq, walk))
        return walk

    # -- execution -------------------------------------------------------

    def _step(self) -> None:
        heap = self._heap
        _time, _seq, item = heapq.heappop(heap)
        self.now = _time
        kind = type(item)
        if kind is _ProcWake:
            if item.cancelled:
                return
            if not item.fired and heap and heap[0][0] == _time:
                item.fired = True
                self._seq += 1
                heapq.heappush(heap, (_time, self._seq, item))
                return
            item.fired = False
            self._events_processed += 1
            item.proc._resume(_WAKE_VALUE)
            return
        if kind is _BurstWalk:
            if item.cancelled:
                return
            if not item.fired and heap and heap[0][0] == _time:
                item.fired = True
                self._seq += 1
                heapq.heappush(heap, (_time, self._seq, item))
                return
            item.fired = False
            self._events_processed += 1
            idx = item.idx
            item.idx = idx + 1
            fn = item.fns[idx]
            if fn is not None:
                fn()
            if item.idx < len(item.fns):
                self._seq += 1
                heapq.heappush(heap, (item.times[item.idx], self._seq, item))
            elif item.proc is not None:
                proc, item.proc = item.proc, None
                proc._resume(_WAKE_VALUE)
            return
        if kind is _CallbackHandle:
            if not item.cancelled:
                item._fn(*item._args)
            elif self._dead_handles > 0:
                self._dead_handles -= 1
            return
        # item is an Event whose callbacks are due.
        event: Event = item
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        self._events_processed += 1
        if not event._ok and not event._defused and not callbacks:
            raise event._value

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or budget spent.

        ``until`` is an absolute simulation time; the clock is advanced to
        exactly ``until`` if the run stops there.
        """
        budget = max_events
        # The _step body is inlined here: at tens of thousands of events
        # per run the method-call overhead is measurable.  _compact
        # rewrites the heap in place, so the local binding stays valid.
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return
            if budget is not None:
                if budget <= 0:
                    raise SimulationError("max_events budget exhausted")
                budget -= 1
            _time, _seq, item = pop(heap)
            self.now = _time
            kind = type(item)
            if kind is _ProcWake:
                if item.cancelled:
                    continue
                if not item.fired and heap and heap[0][0] == _time:
                    # Two-hop fire: see _ProcWake.  Keeps same-time tie
                    # ordering identical to the general work-queue path.
                    # The hop is needed only when another item shares
                    # this fire time; with a strictly-later heap top the
                    # re-push would pop straight back, so resume now.
                    item.fired = True
                    self._seq += 1
                    push(heap, (_time, self._seq, item))
                    continue
                item.fired = False
                self._events_processed += 1
                item.proc._resume(_WAKE_VALUE)
                continue
            if kind is _BurstWalk:
                if item.cancelled:
                    continue
                if not item.fired and heap and heap[0][0] == _time:
                    item.fired = True
                    self._seq += 1
                    push(heap, (_time, self._seq, item))
                    continue
                item.fired = False
                self._events_processed += 1
                idx = item.idx
                item.idx = idx + 1
                fn = item.fns[idx]
                if fn is not None:
                    fn()
                if item.idx < len(item.fns):
                    # Next step is pushed only now — after this step's
                    # work ran — so entries created between steps order
                    # exactly as in the unbatched process-driven chain.
                    self._seq += 1
                    push(heap, (item.times[item.idx], self._seq, item))
                elif item.proc is not None:
                    proc, item.proc = item.proc, None
                    proc._resume(_WAKE_VALUE)
                continue
            if kind is _CallbackHandle:
                if not item.cancelled:
                    item._fn(*item._args)
                elif self._dead_handles > 0:
                    self._dead_handles -= 1
                continue
            event = item
            callbacks, event.callbacks = event.callbacks, None
            for cb in callbacks:
                cb(event)
            self._events_processed += 1
            if not event._ok and not event._defused and not callbacks:
                raise event._value
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Convenience: run a single process to completion and return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before the run ended")
        if not proc._ok:
            raise proc._value
        return proc._value

    def peek(self) -> float:
        """Time of the next scheduled item, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- cross-simulator injection (repro.cluster) -----------------------
    #
    # A sharded cluster run places each fabric partition in its own
    # Simulator.  Packets that cross a cut trunk are delivered by
    # injecting a callback into the destination kernel at the exact
    # simulated timestamp the single-process run would have used.  The
    # only delicate part is the *tie-break*: in one process the delivery
    # callback would carry the seq assigned when the sender transmitted
    # (at time t_send), so it must order before any local event scheduled
    # after t_send and after any scheduled at or before t_send.
    #
    # run_window() keeps a log of (time, seq-after-that-time) pairs; an
    # injected entry gets the fractional key ``seq_at(t_send) + 0.5``.
    # Fractional keys never collide with the integer seqs of native
    # entries, and a third tuple element (a per-kernel injection counter,
    # assigned by the caller in a globally deterministic order)
    # disambiguates injected entries whose keys tie.  Injected heap
    # entries are 4-tuples; only run_window() tolerates them, so a
    # kernel that has ever seen inject() must be driven by run_window().

    def seq_at(self, t: float) -> int:
        """Seq floor for time ``t``: the kernel seq after the last
        processed event time ≤ ``t`` (0 before any logged window)."""
        idx = bisect_right(self._log_times, t) - 1
        return self._log_seqs[idx] if idx >= 0 else 0

    def inject(self, at_time: float, sent_time: float,
               fn: Callable, *args) -> _CallbackHandle:
        """Schedule ``fn(*args)`` at absolute ``at_time``, ordered among
        local events as if it had been scheduled at ``sent_time``."""
        if at_time < self.now:
            raise SimulationError(
                f"inject at {at_time} is in the past (now={self.now})")
        handle = _CallbackHandle(self, fn, args, at_time)
        self._injected += 1
        heapq.heappush(self._heap, (at_time, self.seq_at(sent_time) + 0.5,
                                    self._injected, handle))
        return handle

    def trim_window_log(self, before: float) -> None:
        """Drop log entries no longer reachable by seq_at() queries with
        ``t >= before`` (the entry at ``before``'s floor is kept)."""
        idx = bisect_right(self._log_times, before) - 1
        if idx > 0:
            del self._log_times[:idx]
            del self._log_seqs[:idx]

    def next_live_time(self) -> float:
        """Like :meth:`peek`, but prunes dead timers off the heap top so
        an armed-then-cancelled RTO does not masquerade as pending work
        (a conservative sync window would otherwise stall on it)."""
        heap = self._heap
        while heap:
            item = heap[0][-1]
            kind = type(item)
            if kind is _CallbackHandle and item.cancelled:
                heapq.heappop(heap)
                if self._dead_handles > 0:
                    self._dead_handles -= 1
                continue
            if (kind is _ProcWake or kind is _BurstWalk) and item.cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return float("inf")

    def run_window(self, until: float) -> None:
        """Run one conservative sync window: like ``run(until=until)``
        but tolerant of injected 4-tuple heap entries, and appending to
        the window log so later injections can interpolate seqs.

        A separate copy of the run loop (rather than a flag in ``run``)
        keeps the single-process hot path untouched.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        times = self._log_times
        seqs = self._log_seqs
        while heap:
            entry = heap[0]
            _time = entry[0]
            if _time > until:
                break
            pop(heap)
            item = entry[-1]
            if _time != self.now:
                times.append(self.now)
                seqs.append(self._seq)
                self.now = _time
            kind = type(item)
            if kind is _ProcWake:
                if item.cancelled:
                    continue
                if not item.fired and heap and heap[0][0] == _time:
                    item.fired = True
                    self._seq += 1
                    push(heap, (_time, self._seq, item))
                    continue
                item.fired = False
                self._events_processed += 1
                item.proc._resume(_WAKE_VALUE)
                continue
            if kind is _BurstWalk:
                if item.cancelled:
                    continue
                if not item.fired and heap and heap[0][0] == _time:
                    item.fired = True
                    self._seq += 1
                    push(heap, (_time, self._seq, item))
                    continue
                item.fired = False
                self._events_processed += 1
                idx = item.idx
                item.idx = idx + 1
                fn = item.fns[idx]
                if fn is not None:
                    fn()
                if item.idx < len(item.fns):
                    self._seq += 1
                    push(heap, (item.times[item.idx], self._seq, item))
                elif item.proc is not None:
                    proc, item.proc = item.proc, None
                    proc._resume(_WAKE_VALUE)
                continue
            if kind is _CallbackHandle:
                if not item.cancelled:
                    item._fn(*item._args)
                elif self._dead_handles > 0:
                    self._dead_handles -= 1
                continue
            event = item
            callbacks, event.callbacks = event.callbacks, None
            for cb in callbacks:
                cb(event)
            self._events_processed += 1
            if not event._ok and not event._defused and not callbacks:
                raise event._value
        self.now = until
        times.append(until)
        seqs.append(self._seq)
