"""Discrete-event simulation kernel (time unit: microseconds)."""

from .engine import (AllOf, AnyOf, Event, Interrupt, Process, SimulationError,
                     Simulator, Timeout)
from .resources import Mutex, Store, WorkItem, WorkQueue
from .rng import RngHub
from .stats import Counter, Histogram, RateMeter, RunningStats, StatsRegistry
from .timers import PeriodicTimer, Timer, Watchdog
from .trace import NullTracer, Tracer

__all__ = [
    "AllOf", "AnyOf", "Event", "Interrupt", "Process", "SimulationError",
    "Simulator", "Timeout", "Mutex", "Store", "WorkItem", "WorkQueue",
    "RngHub", "Counter", "Histogram", "RateMeter", "RunningStats",
    "StatsRegistry", "PeriodicTimer", "Timer", "Watchdog",
    "NullTracer", "Tracer",
]
