"""Network address types: MAC, IPv4, IPv6, and endpoint tuples.

Addresses are immutable value objects backed by raw bytes, so codecs can
splice them straight into headers and checksums.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from functools import total_ordering
from typing import Union

from ..errors import ConfigError


@total_ordering
class _BytesAddress:
    """Common machinery for fixed-width byte addresses."""

    WIDTH = 0

    __slots__ = ("packed",)

    def __init__(self, packed: bytes):
        if len(packed) != self.WIDTH:
            raise ConfigError(
                f"{type(self).__name__} needs {self.WIDTH} bytes, got {len(packed)}")
        object.__setattr__(self, "packed", bytes(packed))

    def __eq__(self, other):
        return type(other) is type(self) and other.packed == self.packed

    def __lt__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self.packed < other.packed

    def __hash__(self):
        return hash((type(self).__name__, self.packed))


class MacAddress(_BytesAddress):
    """48-bit link-layer address."""

    WIDTH = 6
    BROADCAST: "MacAddress"

    @classmethod
    def from_index(cls, index: int) -> "MacAddress":
        """Deterministic locally-administered MAC from a small integer."""
        if not 0 <= index < (1 << 40):
            raise ConfigError(f"MAC index out of range: {index}")
        return cls(bytes([0x02]) + index.to_bytes(5, "big"))

    @property
    def is_broadcast(self) -> bool:
        return self.packed == b"\xff" * 6

    def __repr__(self):
        return ":".join(f"{b:02x}" for b in self.packed)


MacAddress.BROADCAST = MacAddress(b"\xff" * 6)


class IPv4Address(_BytesAddress):
    WIDTH = 4

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(ipaddress.IPv4Address(text).packed)

    @classmethod
    def from_index(cls, index: int, net: str = "10.0.0.0") -> "IPv4Address":
        base = int(ipaddress.IPv4Address(net))
        return cls(int(base + index).to_bytes(4, "big"))

    def __repr__(self):
        return str(ipaddress.IPv4Address(self.packed))


class IPv6Address(_BytesAddress):
    WIDTH = 16

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        return cls(ipaddress.IPv6Address(text).packed)

    @classmethod
    def from_index(cls, index: int, net: str = "fd00::") -> "IPv6Address":
        base = int(ipaddress.IPv6Address(net))
        return cls(int(base + index).to_bytes(16, "big"))

    def __repr__(self):
        return str(ipaddress.IPv6Address(self.packed))


IPAddress = Union[IPv4Address, IPv6Address]


@dataclass(frozen=True)
class Endpoint:
    """(IP address, port) pair."""

    addr: IPAddress
    port: int

    def __post_init__(self):
        if not 0 <= self.port <= 0xFFFF:
            raise ConfigError(f"port out of range: {self.port}")

    def __repr__(self):
        return f"{self.addr!r}.{self.port}"


@dataclass(frozen=True)
class FourTuple:
    """TCP/UDP connection identity (local, remote)."""

    local: Endpoint
    remote: Endpoint

    def reversed(self) -> "FourTuple":
        return FourTuple(self.remote, self.local)

    def __repr__(self):
        return f"{self.local!r}<->{self.remote!r}"
