"""InetStack: IP + TCP + UDP wired together (pure protocol logic).

Both protocol owners in the system instantiate one of these:

* the **host kernel** (`repro.hoststack`) — the baseline, where every
  packet costs host CPU time;
* the **QPIP NIC firmware** (`repro.core.firmware`) — the paper's
  contribution, where the same logic runs on the adapter.

Timing is the owner's job; the stack only decides *what* happens.
"""

from __future__ import annotations

from typing import Callable, Optional

from .. import obs
from ..errors import ChecksumError
from ..sim import Simulator
from .addresses import Endpoint, IPAddress
from .headers.ip import PROTO_TCP, PROTO_UDP
from .ip import IpModule, ParsedSegment, RouteEntry
from .packet import Packet, Payload
from .tcp import TcpConfig, TcpConnection, TcpModule
from .udp import UdpModule


class InetStack:
    """A complete inter-network protocol stack instance."""

    def __init__(self, sim: Simulator, name: str = "stack", isn_seed: int = 0):
        self.sim = sim
        self.name = name
        self.ip = IpModule(name=f"{name}.ip")
        self.tcp = TcpModule(sim, isn_seed=isn_seed)
        self.udp = UdpModule(sim)
        self.udp.send = self._udp_send
        self.tcp.send_rst = self._tcp_send_rst
        self.checksum_errors = 0
        # Hook for observability (e.g., tracing every delivered segment).
        self.on_segment: Optional[Callable[[ParsedSegment], None]] = None

    # -- addressing -----------------------------------------------------

    def primary_addr(self) -> IPAddress:
        if not self.ip.local_addrs:
            raise ChecksumError(f"{self.name}: no local address configured")
        return next(iter(sorted(self.ip.local_addrs, key=repr)))

    # -- transmit paths ----------------------------------------------------

    @staticmethod
    def _segment_ecn(conn: TcpConnection, payload: Payload) -> int:
        # RFC 3168: mark data segments ECT(0) on ECN-capable connections.
        return 0b10 if (conn.ecn_ok and payload.length) else 0

    def send_segment(self, conn: TcpConnection, hdr, payload: Payload) -> None:
        """Emit one TCP segment for a connection (drain path calls this)."""
        self.ip.send(conn.tuple.local.addr, conn.tuple.remote.addr, hdr,
                     payload, ecn=self._segment_ecn(conn, payload))

    def build_segment_packet(self, conn: TcpConnection, hdr,
                             payload: Payload) -> Packet:
        return self.ip.build(conn.tuple.local.addr, conn.tuple.remote.addr,
                             hdr, payload, ecn=self._segment_ecn(conn, payload))

    def _udp_send(self, src_ip, dst_ip, hdr, payload) -> None:
        self.ip.send(src_ip, dst_ip, hdr, payload)

    def _tcp_send_rst(self, src: Endpoint, dst: Endpoint, hdr) -> None:
        from .packet import EMPTY
        self.ip.send(src.addr, dst.addr, hdr, EMPTY)

    # -- receive path --------------------------------------------------------

    def packet_in(self, pkt: Packet, verify_checksum: bool = True
                  ) -> Optional[ParsedSegment]:
        """Full input processing for one packet off the wire."""
        seg = self.ip.parse(pkt, verify_checksum=verify_checksum)
        if seg is None:
            return None
        if not seg.checksum_ok:
            self.checksum_errors += 1
            rec = obs.RECORDER
            if rec is not None:
                rec.event("net", "net.checksum_drop", track=self.name,
                          pkt=pkt.trace_id)
                rec.metrics.counter("net.checksum_errors").add()
            return seg          # dropped: corrupted segments never reach TCP/UDP
        if self.on_segment is not None:
            self.on_segment(seg)
        if seg.proto == PROTO_TCP:
            self.tcp.input(seg.src, seg.dst, seg.transport, seg.payload,
                           ce=seg.ce)
        else:
            self.udp.input(seg.src, seg.dst, seg.transport, seg.payload)
        return seg
