"""UDP: best-effort datagram endpoints.

Paper §3: "For best effort datagrams using UDP, a QP is created that is
bound to a particular UDP port ... Data is encapsulated directly in the
UDP datagrams without an additional protocol layer."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import SocketError
from ..sim import Simulator, Store
from .addresses import Endpoint
from .headers.transport import UDPHeader
from .packet import Payload


@dataclass
class Datagram:
    """A received datagram with its source."""

    payload: Payload
    src: Endpoint


class UdpEndpoint:
    """A bound UDP port: receive queue plus a send hook into the stack."""

    def __init__(self, module: "UdpModule", port: int,
                 rx_capacity: Optional[int] = 512):
        self.module = module
        self.port = port
        self.rx = Store(module.sim, capacity=rx_capacity, name=f"udp:{port}")
        self.dropped = 0
        # Optional synchronous delivery hook (the QPIP receive FSM uses this
        # instead of the queue).
        self.on_datagram: Optional[Callable[[Datagram], None]] = None

    def send_to(self, src_ip, dst: Endpoint, payload: Payload) -> None:
        self.module.output(self, src_ip, dst, payload)

    def _deliver(self, datagram: Datagram) -> None:
        if self.on_datagram is not None:
            self.on_datagram(datagram)
            return
        if not self.rx.try_put(datagram):
            self.dropped += 1   # best effort: queue overflow loses datagrams

    def recv(self):
        """Event yielding the next :class:`Datagram`."""
        return self.rx.get()

    def close(self) -> None:
        self.module._endpoints.pop(self.port, None)


class UdpModule:
    """Per-stack UDP port table."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._endpoints: Dict[int, UdpEndpoint] = {}
        self._ephemeral = itertools.count(33000)
        self.rx_no_port = 0
        # Wired by the stack: actually emit a datagram.
        self.send: Optional[Callable] = None

    def bind(self, port: Optional[int] = None,
             rx_capacity: Optional[int] = 512) -> UdpEndpoint:
        if port is None:
            port = next(self._ephemeral)
        if port in self._endpoints:
            raise SocketError(f"UDP port {port} already bound")
        ep = UdpEndpoint(self, port, rx_capacity)
        self._endpoints[port] = ep
        return ep

    def output(self, endpoint: UdpEndpoint, src_ip, dst: Endpoint,
               payload: Payload) -> None:
        if self.send is None:
            raise SocketError("UDP module not attached to a stack")
        hdr = UDPHeader(endpoint.port, dst.port, length=8 + payload.length)
        self.send(src_ip, dst.addr, hdr, payload)

    def input(self, src: Endpoint, dst: Endpoint, hdr: UDPHeader,
              payload: Payload) -> bool:
        ep = self._endpoints.get(dst.port)
        if ep is None:
            self.rx_no_port += 1    # a full stack would send ICMP unreachable
            return False
        ep._deliver(Datagram(payload, src))
        return True
