"""IPv4 and IPv6 headers.

The QPIP prototype runs IPv6 (paper §4.1); the Linux baseline runs IPv4.
Both codecs are byte-exact; IPv4 includes its header checksum.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ... import fastpath as _fastpath
from ..addresses import IPv4Address, IPv6Address
from ..checksum import checksum, incremental_update
from .base import DecodeError, Header, need

PROTO_TCP = 6
PROTO_UDP = 17

# Precompiled wire codecs (see headers.transport): fast encode is gated
# with the original struct.pack bodies as oracle; decode always uses the
# precompiled objects (bit-identical).
_IPV4_STRUCT = struct.Struct("!BBHHHBBH")
_IPV6_STRUCT = struct.Struct("!IHBB")
_U16_STRUCT = struct.Struct("!H")

# ECN codepoints (RFC 3168) — the low two bits of the TOS/traffic class.
ECN_NOT_ECT = 0b00
ECN_ECT1 = 0b01
ECN_ECT0 = 0b10
ECN_CE = 0b11


@dataclass(eq=False, slots=True, init=False)
class IPv4Header(Header):
    """IPv4 without options (IHL=5)."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int
    total_length: int = 20          # header + upper layers, filled by the stack
    identification: int = 0
    ttl: int = 64
    dscp: int = 0
    flags_df: bool = True
    flags_mf: bool = False
    frag_offset: int = 0
    _wire: Optional[bytes] = field(default=None, init=False, repr=False)

    LEN = 20

    def __init__(self, src: IPv4Address, dst: IPv4Address, protocol: int,
                 total_length: int = 20, identification: int = 0,
                 ttl: int = 64, dscp: int = 0, flags_df: bool = True,
                 flags_mf: bool = False, frag_offset: int = 0):
        # Hot-path constructor: direct slot writes, no cache invalidation
        # (a fresh header has no cached wire bytes).
        s = object.__setattr__
        s(self, "src", src)
        s(self, "dst", dst)
        s(self, "protocol", protocol)
        s(self, "total_length", total_length)
        s(self, "identification", identification)
        s(self, "ttl", ttl)
        s(self, "dscp", dscp)
        s(self, "flags_df", flags_df)
        s(self, "flags_mf", flags_mf)
        s(self, "frag_offset", frag_offset)
        s(self, "_wire", None)

    @property
    def ecn(self) -> int:
        return self.dscp & 0b11

    @ecn.setter
    def ecn(self, value: int) -> None:
        self.dscp = (self.dscp & ~0b11) | (value & 0b11)

    def set_ce(self) -> None:
        """Mark Congestion Experienced in flight (RFC 3168).

        When the wire bytes are cached, only the changed word and the
        header checksum are patched (RFC 1624) instead of re-encoding.
        """
        wire = self._wire
        new_dscp = self.dscp | 0b11
        if wire is None:
            self.dscp = new_dscp
            return
        old_word = (wire[0] << 8) | wire[1]
        new_word = (wire[0] << 8) | new_dscp
        old_csum = (wire[10] << 8) | wire[11]
        new_csum = incremental_update(old_csum, old_word, new_word)
        object.__setattr__(self, "dscp", new_dscp)
        object.__setattr__(
            self, "_wire",
            wire[:1] + bytes((new_dscp,)) + wire[2:10]
            + new_csum.to_bytes(2, "big") + wire[12:])

    def header_len(self) -> int:
        return self.LEN

    def _encode_wire(self) -> bytes:
        flags_frag = ((0x4000 if self.flags_df else 0)
                      | (0x2000 if self.flags_mf else 0)
                      | (self.frag_offset & 0x1FFF))
        if _fastpath.ENABLED:
            # Build in place, checksum over the zero-field buffer, then
            # patch the checksum word — one allocation end to end.
            buf = bytearray(20)
            _IPV4_STRUCT.pack_into(
                buf, 0, 0x45, self.dscp, self.total_length,
                self.identification, flags_frag, self.ttl, self.protocol, 0)
            buf[12:16] = self.src.packed
            buf[16:20] = self.dst.packed
            _U16_STRUCT.pack_into(buf, 10, checksum(buf))
            return bytes(buf)
        head = struct.pack(
            "!BBHHHBBH", 0x45, self.dscp, self.total_length,
            self.identification, flags_frag, self.ttl, self.protocol, 0)
        head += self.src.packed + self.dst.packed
        csum = checksum(head)
        return head[:10] + struct.pack("!H", csum) + head[12:]

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IPv4Header", int]:
        need(data, cls.LEN, "IPv4 header")
        (vihl, dscp, total_length, ident, flags_frag, ttl, protocol,
         _csum) = _IPV4_STRUCT.unpack_from(data, 0)
        if vihl >> 4 != 4:
            raise DecodeError(f"not IPv4: version {vihl >> 4}")
        if (vihl & 0xF) != 5:
            raise DecodeError("IPv4 options are not supported")
        if checksum(data[:cls.LEN]) != 0:
            raise DecodeError("IPv4 header checksum mismatch")
        hdr = cls(src=IPv4Address(data[12:16]), dst=IPv4Address(data[16:20]),
                  protocol=protocol, total_length=total_length,
                  identification=ident, ttl=ttl, dscp=dscp,
                  flags_df=bool(flags_frag & 0x4000),
                  flags_mf=bool(flags_frag & 0x2000),
                  frag_offset=flags_frag & 0x1FFF)
        return hdr, cls.LEN


@dataclass(eq=False, slots=True, init=False)
class IPv6Header(Header):
    """Fixed 40-byte IPv6 header (no extension headers)."""

    src: IPv6Address
    dst: IPv6Address
    next_header: int
    payload_length: int = 0
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    _wire: Optional[bytes] = field(default=None, init=False, repr=False)

    LEN = 40

    def __init__(self, src: IPv6Address, dst: IPv6Address, next_header: int,
                 payload_length: int = 0, hop_limit: int = 64,
                 traffic_class: int = 0, flow_label: int = 0):
        s = object.__setattr__
        s(self, "src", src)
        s(self, "dst", dst)
        s(self, "next_header", next_header)
        s(self, "payload_length", payload_length)
        s(self, "hop_limit", hop_limit)
        s(self, "traffic_class", traffic_class)
        s(self, "flow_label", flow_label)
        s(self, "_wire", None)

    @property
    def ecn(self) -> int:
        return self.traffic_class & 0b11

    @ecn.setter
    def ecn(self, value: int) -> None:
        self.traffic_class = (self.traffic_class & ~0b11) | (value & 0b11)

    def set_ce(self) -> None:
        """Mark Congestion Experienced in flight, patching cached bytes
        (IPv6 has no header checksum; only word 0 changes)."""
        wire = self._wire
        new_tc = self.traffic_class | 0b11
        if wire is None:
            self.traffic_class = new_tc
            return
        word0 = (6 << 28) | ((new_tc & 0xFF) << 20) | (self.flow_label & 0xFFFFF)
        object.__setattr__(self, "traffic_class", new_tc)
        object.__setattr__(self, "_wire", struct.pack("!I", word0) + wire[4:])

    def header_len(self) -> int:
        return self.LEN

    def _encode_wire(self) -> bytes:
        word0 = (6 << 28) | ((self.traffic_class & 0xFF) << 20) | (self.flow_label & 0xFFFFF)
        if _fastpath.ENABLED:
            return (_IPV6_STRUCT.pack(word0, self.payload_length,
                                      self.next_header, self.hop_limit)
                    + self.src.packed + self.dst.packed)
        return (struct.pack("!IHBB", word0, self.payload_length,
                            self.next_header, self.hop_limit)
                + self.src.packed + self.dst.packed)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IPv6Header", int]:
        need(data, cls.LEN, "IPv6 header")
        word0, payload_length, next_header, hop_limit = _IPV6_STRUCT.unpack_from(data, 0)
        if word0 >> 28 != 6:
            raise DecodeError(f"not IPv6: version {word0 >> 28}")
        hdr = cls(src=IPv6Address(data[8:24]), dst=IPv6Address(data[24:40]),
                  next_header=next_header, payload_length=payload_length,
                  hop_limit=hop_limit,
                  traffic_class=(word0 >> 20) & 0xFF,
                  flow_label=word0 & 0xFFFFF)
        return hdr, cls.LEN
