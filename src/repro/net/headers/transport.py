"""UDP and TCP headers, including the TCP options QPIP's stack uses
(MSS, window scale, RFC 1323 timestamps).

Checksums cover the pseudo-header, transport header, and payload — the
real algorithm over real bytes (payload contribution comes from the
payload object's ones-complement sum).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ... import fastpath as _fastpath
from ..checksum import combine, finish, ones_complement_sum
from ..packet import Payload, ZeroPayload
from .base import DecodeError, Header, need

# Precompiled wire codecs: module-level Struct objects skip the format
# parse / cache lookup inside struct.pack on every header build.  Fast
# encode paths are gated on the global switch with the original
# struct.pack bodies kept as the byte-for-byte oracle; decode uses the
# precompiled objects unconditionally (bit-identical by construction).
_UDP_STRUCT = struct.Struct("!HHHH")
_TCP_BASE_STRUCT = struct.Struct("!HHIIBBHHH")
_U16_STRUCT = struct.Struct("!H")

# -- UDP --------------------------------------------------------------------


@dataclass(eq=False, slots=True, init=False)
class UDPHeader(Header):
    src_port: int
    dst_port: int
    length: int = 8          # header + payload
    checksum: int = 0
    _wire: Optional[bytes] = field(default=None, init=False, repr=False)

    LEN = 8
    CSUM_OFFSET = 6

    def __init__(self, src_port: int, dst_port: int, length: int = 8,
                 checksum: int = 0):
        s = object.__setattr__
        s(self, "src_port", src_port)
        s(self, "dst_port", dst_port)
        s(self, "length", length)
        s(self, "checksum", checksum)
        s(self, "_wire", None)

    def header_len(self) -> int:
        return self.LEN

    def _encode_wire(self) -> bytes:
        if _fastpath.ENABLED:
            return _UDP_STRUCT.pack(self.src_port, self.dst_port,
                                    self.length, self.checksum)
        return struct.pack("!HHHH", self.src_port, self.dst_port,
                           self.length, self.checksum)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["UDPHeader", int]:
        need(data, cls.LEN, "UDP header")
        src, dst, length, csum = _UDP_STRUCT.unpack_from(data, 0)
        if length < cls.LEN:
            raise DecodeError(f"bad UDP length {length}")
        return cls(src, dst, length, csum), cls.LEN


def udp_fill_checksum(hdr: UDPHeader, pseudo_sum: int, payload: Payload) -> None:
    """Compute and store the UDP checksum (0 transmitted as 0xFFFF)."""
    hdr.checksum = 0
    acc = combine(pseudo_sum, ones_complement_sum(hdr.encode()), payload.csum())
    value = finish(acc)
    value = value if value != 0 else 0xFFFF
    hdr._store_checksum_field("checksum", value, UDPHeader.CSUM_OFFSET)


def udp_verify_checksum(hdr: UDPHeader, pseudo_sum: int, payload: Payload) -> bool:
    if hdr.checksum == 0:       # checksum disabled (IPv4 only)
        return True
    if _fastpath.ENABLED:
        # Non-mutating: remove the stored checksum from the running sum
        # by ones-complement subtraction instead of zeroing the field
        # (which would invalidate the cached wire bytes twice).
        stored = hdr.checksum
        acc = combine(pseudo_sum, ones_complement_sum(hdr.encode()),
                      payload.csum(), (~stored) & 0xFFFF)
        expect = finish(acc)
        expect = expect if expect != 0 else 0xFFFF
        return expect == stored
    stored, hdr.checksum = hdr.checksum, 0
    try:
        acc = combine(pseudo_sum, ones_complement_sum(hdr.encode()), payload.csum())
        expect = finish(acc)
        expect = expect if expect != 0 else 0xFFFF
        return expect == stored
    finally:
        hdr.checksum = stored


# -- TCP ----------------------------------------------------------------------

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20
ECE = 0x40      # RFC 3168 ECN-Echo
CWR = 0x80      # RFC 3168 Congestion Window Reduced

_FLAG_NAMES = [(FIN, "F"), (SYN, "S"), (RST, "R"), (PSH, "P"), (ACK, "A"),
               (URG, "U"), (ECE, "E"), (CWR, "C")]

OPT_EOL = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACK_PERMITTED = 4
OPT_SACK = 5
OPT_TIMESTAMP = 8
MAX_SACK_BLOCKS = 3

# Option codecs: one pack per option, NOP padding folded into the format.
_OPT_MSS_STRUCT = struct.Struct("!BBH")          # kind len mss
_OPT_WSCALE_STRUCT = struct.Struct("!BBBB")      # kind len shift NOP
_OPT_TS_STRUCT = struct.Struct("!BBBBII")        # NOP NOP kind len val ecr
_OPT_SACK_HEAD_STRUCT = struct.Struct("!BBBB")   # NOP NOP kind len
_SACK_BLOCK_STRUCT = struct.Struct("!II")
_OPT_SACKOK_BYTES = bytes((OPT_SACK_PERMITTED, 2, OPT_NOP, OPT_NOP))


@dataclass(eq=False, slots=True, init=False)
class TCPHeader(Header):
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 0
    checksum: int = 0
    urgent: int = 0
    # Options (None = absent).
    mss: Optional[int] = None
    wscale: Optional[int] = None
    sack_permitted: bool = False
    ts_val: Optional[int] = None
    ts_ecr: Optional[int] = None
    sack_blocks: List[Tuple[int, int]] = field(default_factory=list)
    _wire: Optional[bytes] = field(default=None, init=False, repr=False)
    _opts: Optional[bytes] = field(default=None, init=False, repr=False)

    BASE_LEN = 20
    CSUM_OFFSET = 16

    def __init__(self, src_port: int, dst_port: int, seq: int = 0,
                 ack: int = 0, flags: int = 0, window: int = 0,
                 checksum: int = 0, urgent: int = 0,
                 mss: Optional[int] = None, wscale: Optional[int] = None,
                 sack_permitted: bool = False, ts_val: Optional[int] = None,
                 ts_ecr: Optional[int] = None,
                 sack_blocks: Optional[List[Tuple[int, int]]] = None):
        # Hand-written hot-path constructor: a fresh header has nothing
        # cached to invalidate, so every field goes straight to its slot
        # instead of through the invalidating __setattr__.
        s = object.__setattr__
        s(self, "src_port", src_port)
        s(self, "dst_port", dst_port)
        s(self, "seq", seq)
        s(self, "ack", ack)
        s(self, "flags", flags)
        s(self, "window", window)
        s(self, "checksum", checksum)
        s(self, "urgent", urgent)
        s(self, "mss", mss)
        s(self, "wscale", wscale)
        s(self, "sack_permitted", sack_permitted)
        s(self, "ts_val", ts_val)
        s(self, "ts_ecr", ts_ecr)
        s(self, "sack_blocks", [] if sack_blocks is None else sack_blocks)
        s(self, "_wire", None)
        s(self, "_opts", None)

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if name[0] != "_":
            object.__setattr__(self, "_wire", None)
            object.__setattr__(self, "_opts", None)

    def flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def flag_str(self) -> str:
        return "".join(ch for mask, ch in _FLAG_NAMES if self.flags & mask) or "."

    def _options_bytes(self) -> bytes:
        opts = self._opts
        if opts is not None and _fastpath.ENABLED:
            return opts
        opts = self._build_options()
        object.__setattr__(self, "_opts", opts)
        return opts

    def _build_options(self) -> bytes:
        if _fastpath.ENABLED:
            return self._build_options_fast()
        out = bytearray()
        if self.mss is not None:
            out += struct.pack("!BBH", OPT_MSS, 4, self.mss)
        if self.wscale is not None:
            out += struct.pack("!BBB", OPT_WSCALE, 3, self.wscale)
            out += bytes([OPT_NOP])
        if self.sack_permitted:
            out += struct.pack("!BB", OPT_SACK_PERMITTED, 2)
            out += bytes([OPT_NOP, OPT_NOP])
        if self.ts_val is not None:
            # RFC 1323 appendix A padding: NOP NOP TS.
            out += bytes([OPT_NOP, OPT_NOP])
            out += struct.pack("!BBII", OPT_TIMESTAMP, 10,
                               self.ts_val & 0xFFFFFFFF,
                               (self.ts_ecr or 0) & 0xFFFFFFFF)
        if self.sack_blocks:
            blocks = self.sack_blocks[:MAX_SACK_BLOCKS]
            out += bytes([OPT_NOP, OPT_NOP])
            out += struct.pack("!BB", OPT_SACK, 2 + 8 * len(blocks))
            for left, right in blocks:
                out += struct.pack("!II", left & 0xFFFFFFFF,
                                   right & 0xFFFFFFFF)
        while len(out) % 4:
            out += bytes([OPT_EOL])
        return bytes(out)

    def _build_options_fast(self) -> bytes:
        """Precompiled twin of the naive body above: same option order,
        same NOP padding, same EOL tail — one Struct.pack per option
        instead of per-field struct calls."""
        ts_val = self.ts_val
        if (ts_val is not None and self.mss is None and self.wscale is None
                and not self.sack_permitted and not self.sack_blocks):
            # Steady-state shape — every data/ACK segment after the
            # handshake: NOP NOP TS, 12 bytes, already word-aligned.
            return _OPT_TS_STRUCT.pack(
                OPT_NOP, OPT_NOP, OPT_TIMESTAMP, 10,
                ts_val & 0xFFFFFFFF, (self.ts_ecr or 0) & 0xFFFFFFFF)
        parts = []
        if self.mss is not None:
            parts.append(_OPT_MSS_STRUCT.pack(OPT_MSS, 4, self.mss))
        if self.wscale is not None:
            parts.append(_OPT_WSCALE_STRUCT.pack(OPT_WSCALE, 3,
                                                 self.wscale, OPT_NOP))
        if self.sack_permitted:
            parts.append(_OPT_SACKOK_BYTES)
        if ts_val is not None:
            parts.append(_OPT_TS_STRUCT.pack(
                OPT_NOP, OPT_NOP, OPT_TIMESTAMP, 10,
                ts_val & 0xFFFFFFFF, (self.ts_ecr or 0) & 0xFFFFFFFF))
        if self.sack_blocks:
            blocks = self.sack_blocks[:MAX_SACK_BLOCKS]
            parts.append(_OPT_SACK_HEAD_STRUCT.pack(
                OPT_NOP, OPT_NOP, OPT_SACK, 2 + 8 * len(blocks)))
            for left, right in blocks:
                parts.append(_SACK_BLOCK_STRUCT.pack(left & 0xFFFFFFFF,
                                                     right & 0xFFFFFFFF))
        out = b"".join(parts)
        pad = -len(out) % 4
        if pad:
            out += b"\x00" * pad      # OPT_EOL bytes
        return out

    def header_len(self) -> int:
        return self.BASE_LEN + len(self._options_bytes())

    def _encode_wire(self) -> bytes:
        opts = self._options_bytes()
        if _fastpath.ENABLED:
            return _TCP_BASE_STRUCT.pack(
                self.src_port, self.dst_port,
                self.seq & 0xFFFFFFFF, self.ack & 0xFFFFFFFF,
                ((self.BASE_LEN + len(opts)) // 4) << 4, self.flags & 0xFF,
                self.window & 0xFFFF, self.checksum, self.urgent) + opts
        data_offset = (self.BASE_LEN + len(opts)) // 4
        return struct.pack(
            "!HHIIBBHHH", self.src_port, self.dst_port,
            self.seq & 0xFFFFFFFF, self.ack & 0xFFFFFFFF,
            data_offset << 4, self.flags & 0xFF,
            self.window & 0xFFFF, self.checksum, self.urgent) + opts

    @classmethod
    def decode(cls, data: bytes) -> Tuple["TCPHeader", int]:
        need(data, cls.BASE_LEN, "TCP header")
        (src, dst, seq, ack, off_byte, flags, window, csum,
         urgent) = _TCP_BASE_STRUCT.unpack_from(data, 0)
        header_len = (off_byte >> 4) * 4
        if header_len < cls.BASE_LEN:
            raise DecodeError(f"bad TCP data offset {header_len}")
        need(data, header_len, "TCP header with options")
        hdr = cls(src, dst, seq, ack, flags & 0xFF, window, csum, urgent)
        cls._parse_options(hdr, data[cls.BASE_LEN:header_len])
        return hdr, header_len

    @staticmethod
    def _parse_options(hdr: "TCPHeader", opts: bytes) -> None:
        i = 0
        while i < len(opts):
            kind = opts[i]
            if kind == OPT_EOL:
                break
            if kind == OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(opts):
                raise DecodeError("truncated TCP option")
            length = opts[i + 1]
            if length < 2 or i + length > len(opts):
                raise DecodeError(f"bad TCP option length {length}")
            body = opts[i + 2:i + length]
            if kind == OPT_MSS and length == 4:
                hdr.mss = _U16_STRUCT.unpack(body)[0]
            elif kind == OPT_WSCALE and length == 3:
                hdr.wscale = body[0]
            elif kind == OPT_SACK_PERMITTED and length == 2:
                hdr.sack_permitted = True
            elif kind == OPT_TIMESTAMP and length == 10:
                hdr.ts_val, hdr.ts_ecr = _SACK_BLOCK_STRUCT.unpack(body)
            elif kind == OPT_SACK and (length - 2) % 8 == 0:
                hdr.sack_blocks = [
                    _SACK_BLOCK_STRUCT.unpack_from(body, off)
                    for off in range(0, length - 2, 8)]
                hdr.sack_blocks = [tuple(b) for b in hdr.sack_blocks]
            # Unknown options are skipped (per RFC 1122).
            i += length

    def __repr__(self):
        return (f"<TCP {self.src_port}->{self.dst_port} {self.flag_str()} "
                f"seq={self.seq} ack={self.ack} win={self.window}>")


def tcp_fill_checksum(hdr: TCPHeader, pseudo_sum: int, payload: Payload) -> None:
    hdr.checksum = 0
    acc = combine(pseudo_sum, ones_complement_sum(hdr.encode()), payload.csum())
    hdr._store_checksum_field("checksum", finish(acc), TCPHeader.CSUM_OFFSET)


def tcp_verify_checksum(hdr: TCPHeader, pseudo_sum: int, payload: Payload) -> bool:
    if _fastpath.ENABLED:
        # Non-mutating verify (see udp_verify_checksum): the encoded
        # bytes usually come straight from the sender-side cache.
        stored = hdr.checksum
        acc = combine(pseudo_sum, ones_complement_sum(hdr.encode()),
                      payload.csum(), (~stored) & 0xFFFF)
        return finish(acc) == stored
    stored, hdr.checksum = hdr.checksum, 0
    try:
        acc = combine(pseudo_sum, ones_complement_sum(hdr.encode()), payload.csum())
        return finish(acc) == stored
    finally:
        hdr.checksum = stored
