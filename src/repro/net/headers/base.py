"""Header codec interface.

Each header is a dataclass that encodes to / decodes from the exact wire
format.  ``decode`` returns ``(header, bytes_consumed)`` so layered
parsing can walk a raw buffer.
"""

from __future__ import annotations

from typing import Tuple

from ...errors import NetworkError


class DecodeError(NetworkError):
    """Malformed header bytes."""


class Header:
    """Base class for wire headers."""

    def header_len(self) -> int:
        raise NotImplementedError

    def encode(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Header", int]:
        raise NotImplementedError

    def __eq__(self, other):
        return type(other) is type(self) and other.__dict__ == self.__dict__


def need(data: bytes, n: int, what: str) -> None:
    if len(data) < n:
        raise DecodeError(f"truncated {what}: need {n} bytes, have {len(data)}")
