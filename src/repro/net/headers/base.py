"""Header codec interface.

Each header is a dataclass that encodes to / decodes from the exact wire
format.  ``decode`` returns ``(header, bytes_consumed)`` so layered
parsing can walk a raw buffer.

Headers cache their packed wire bytes (``_wire``): the first
:meth:`Header.encode` stores the encoding and any field assignment
invalidates it, so a packet crossing several link/switch/NIC boundaries
serializes each header once instead of once per hop.  Subclasses
implement :meth:`_encode_wire`; callers keep using :meth:`encode`.
All header classes use ``__slots__`` (no per-instance ``__dict__``) —
they are the hottest allocations in the simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ... import fastpath as _fastpath
from ...errors import NetworkError


class DecodeError(NetworkError):
    """Malformed header bytes."""


class Header:
    """Base class for wire headers."""

    __slots__ = ()

    def header_len(self) -> int:
        raise NotImplementedError

    def _encode_wire(self) -> bytes:
        """Pack this header; subclasses implement the raw codec here."""
        raise NotImplementedError

    def encode(self) -> bytes:
        wire = self._wire
        if wire is not None and _fastpath.ENABLED:
            return wire
        wire = self._encode_wire()
        object.__setattr__(self, "_wire", wire)
        return wire

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if name[0] != "_":
            object.__setattr__(self, "_wire", None)

    def _store_checksum_field(self, name: str, value: int, offset: int) -> None:
        """Set a 16-bit checksum field and patch it into the cached wire
        bytes instead of invalidating them (the fill-after-encode idiom)."""
        object.__setattr__(self, name, value)
        wire = self._wire
        if wire is not None:
            object.__setattr__(
                self, "_wire",
                wire[:offset] + value.to_bytes(2, "big") + wire[offset + 2:])

    def __eq__(self, other):
        if type(other) is not type(self):
            return False
        for f in dataclasses.fields(self):
            name = f.name
            if name[0] == "_":
                continue                       # cache slots are not identity
            if getattr(other, name) != getattr(self, name):
                return False
        return True


def need(data: bytes, n: int, what: str) -> None:
    if len(data) < n:
        raise DecodeError(f"truncated {what}: need {n} bytes, have {len(data)}")
