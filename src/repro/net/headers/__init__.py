"""Byte-exact wire header codecs."""

from .base import DecodeError, Header
from .ip import IPv4Header, IPv6Header, PROTO_TCP, PROTO_UDP
from .link import (ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetHeader,
                   MyrinetHeader)
from .transport import (ACK, CWR, ECE, FIN, PSH, RST, SYN, URG, TCPHeader, UDPHeader,
                        tcp_fill_checksum, tcp_verify_checksum,
                        udp_fill_checksum, udp_verify_checksum)

__all__ = [
    "DecodeError", "Header", "IPv4Header", "IPv6Header", "PROTO_TCP",
    "PROTO_UDP", "ETHERTYPE_IPV4", "ETHERTYPE_IPV6", "EthernetHeader",
    "MyrinetHeader", "ACK", "CWR", "ECE", "FIN", "PSH", "RST", "SYN", "URG", "TCPHeader",
    "UDPHeader", "tcp_fill_checksum", "tcp_verify_checksum",
    "udp_fill_checksum", "udp_verify_checksum",
]
