"""Link-layer headers: Ethernet II and Myrinet source-route.

Myrinet used source-based cut-through routing: the sender prepends one
route byte per switch hop; each switch consumes its byte.  We keep the
route bytes in the header (with a cursor) rather than physically
stripping them, which preserves wire size accounting.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ... import fastpath as _fastpath
from ..addresses import MacAddress
from .base import DecodeError, Header, need

# EtherType values (also used as the Myrinet payload-type field).
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD

# Precompiled wire codec (see headers.transport).
_U16_STRUCT = struct.Struct("!H")


@dataclass(eq=False, slots=True, init=False)
class EthernetHeader(Header):
    """Ethernet II: dst(6) src(6) ethertype(2)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV6
    _wire: Optional[bytes] = field(default=None, init=False, repr=False)

    LEN = 14

    def __init__(self, dst: MacAddress, src: MacAddress,
                 ethertype: int = ETHERTYPE_IPV6):
        s = object.__setattr__
        s(self, "dst", dst)
        s(self, "src", src)
        s(self, "ethertype", ethertype)
        s(self, "_wire", None)

    def header_len(self) -> int:
        return self.LEN

    def _encode_wire(self) -> bytes:
        if _fastpath.ENABLED:
            return self.dst.packed + self.src.packed + _U16_STRUCT.pack(self.ethertype)
        return self.dst.packed + self.src.packed + struct.pack("!H", self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["EthernetHeader", int]:
        need(data, cls.LEN, "ethernet header")
        dst = MacAddress(data[0:6])
        src = MacAddress(data[6:12])
        (ethertype,) = _U16_STRUCT.unpack_from(data, 12)
        return cls(dst, src, ethertype), cls.LEN


@dataclass(eq=False, slots=True, init=False)
class MyrinetHeader(Header):
    """Myrinet source route: route_len(1), route bytes, type(2).

    ``route`` lists the output port at each switch along the path.
    """

    route: List[int] = field(default_factory=list)
    ptype: int = ETHERTYPE_IPV6
    _wire: Optional[bytes] = field(default=None, init=False, repr=False)

    MAX_HOPS = 32

    def __init__(self, route: Optional[List[int]] = None,
                 ptype: int = ETHERTYPE_IPV6):
        route = [] if route is None else route
        if len(route) > self.MAX_HOPS:
            raise DecodeError(f"route too long: {len(route)} hops")
        for hop in route:
            if not 0 <= hop <= 0xFF:
                raise DecodeError(f"route byte out of range: {hop}")
        s = object.__setattr__
        s(self, "route", route)
        s(self, "ptype", ptype)
        s(self, "_wire", None)

    def header_len(self) -> int:
        return 1 + len(self.route) + 2

    def _encode_wire(self) -> bytes:
        if _fastpath.ENABLED:
            return bytes([len(self.route)]) + bytes(self.route) + _U16_STRUCT.pack(self.ptype)
        return bytes([len(self.route)]) + bytes(self.route) + struct.pack("!H", self.ptype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["MyrinetHeader", int]:
        need(data, 1, "myrinet header")
        n = data[0]
        if n > cls.MAX_HOPS:
            raise DecodeError(f"route too long: {n} hops")
        need(data, 1 + n + 2, "myrinet header")
        route = list(data[1:1 + n])
        (ptype,) = _U16_STRUCT.unpack_from(data, 1 + n)
        return cls(route, ptype), 1 + n + 2
