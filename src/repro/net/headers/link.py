"""Link-layer headers: Ethernet II and Myrinet source-route.

Myrinet used source-based cut-through routing: the sender prepends one
route byte per switch hop; each switch consumes its byte.  We keep the
route bytes in the header (with a cursor) rather than physically
stripping them, which preserves wire size accounting.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from ..addresses import MacAddress
from .base import DecodeError, Header, need

# EtherType values (also used as the Myrinet payload-type field).
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD


@dataclass(eq=False)
class EthernetHeader(Header):
    """Ethernet II: dst(6) src(6) ethertype(2)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV6

    LEN = 14

    def header_len(self) -> int:
        return self.LEN

    def encode(self) -> bytes:
        return self.dst.packed + self.src.packed + struct.pack("!H", self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["EthernetHeader", int]:
        need(data, cls.LEN, "ethernet header")
        dst = MacAddress(data[0:6])
        src = MacAddress(data[6:12])
        (ethertype,) = struct.unpack_from("!H", data, 12)
        return cls(dst, src, ethertype), cls.LEN


@dataclass(eq=False)
class MyrinetHeader(Header):
    """Myrinet source route: route_len(1), route bytes, type(2).

    ``route`` lists the output port at each switch along the path.
    """

    route: List[int] = field(default_factory=list)
    ptype: int = ETHERTYPE_IPV6

    MAX_HOPS = 32

    def __post_init__(self):
        if len(self.route) > self.MAX_HOPS:
            raise DecodeError(f"route too long: {len(self.route)} hops")
        for hop in self.route:
            if not 0 <= hop <= 0xFF:
                raise DecodeError(f"route byte out of range: {hop}")

    def header_len(self) -> int:
        return 1 + len(self.route) + 2

    def encode(self) -> bytes:
        return bytes([len(self.route)]) + bytes(self.route) + struct.pack("!H", self.ptype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["MyrinetHeader", int]:
        need(data, 1, "myrinet header")
        n = data[0]
        if n > cls.MAX_HOPS:
            raise DecodeError(f"route too long: {n} hops")
        need(data, 1 + n + 2, "myrinet header")
        route = list(data[1:1 + n])
        (ptype,) = struct.unpack_from("!H", data, 1 + n)
        return cls(route, ptype), 1 + n + 2
