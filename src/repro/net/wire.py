"""Whole-packet wire serialization.

The simulator's hot path passes header *objects* between NICs (cheap and
loss-free), but every header is a byte-exact codec.  This module walks
the full stack both ways — serialize a Packet to the bytes that would
appear on the wire, and parse those bytes back into a Packet — so tests
can prove the object fast-path and the byte representation agree, and
tools can emit real captures.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..errors import NetworkError
from .headers.base import DecodeError
from .headers.ip import IPv4Header, IPv6Header, PROTO_TCP, PROTO_UDP
from .headers.link import (ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetHeader,
                           MyrinetHeader)
from .headers.transport import TCPHeader, UDPHeader
from .packet import BytesPayload, Packet, Payload


def serialize(pkt: Packet) -> bytes:
    """Encode every header plus the payload into wire bytes."""
    out = bytearray()
    for header in pkt.headers:
        out += header.encode()
    out += pkt.payload.to_bytes()
    return bytes(out)


def deserialize(raw: bytes, link: str = "auto") -> Packet:
    """Parse wire bytes back into a Packet.

    ``link`` selects the outermost framing: ``"ethernet"``, ``"myrinet"``,
    ``"none"`` (IP first), or ``"auto"`` (try Ethernet when the ethertype
    field looks sane, else Myrinet, else bare IP).
    """
    headers = []
    offset = 0

    def try_eth() -> Optional[int]:
        if len(raw) < EthernetHeader.LEN:
            return None
        (etype,) = struct.unpack_from("!H", raw, 12)
        return etype if etype in (ETHERTYPE_IPV4, ETHERTYPE_IPV6) else None

    if link == "auto":
        if try_eth() is not None:
            link = "ethernet"
        elif raw and raw[0] <= MyrinetHeader.MAX_HOPS:
            # Plausible route length byte followed by a known ptype.
            n = raw[0]
            if len(raw) >= n + 3:
                (ptype,) = struct.unpack_from("!H", raw, 1 + n)
                link = "myrinet" if ptype in (ETHERTYPE_IPV4,
                                              ETHERTYPE_IPV6) else "none"
            else:
                link = "none"
        else:
            link = "none"

    if link == "ethernet":
        eth, used = EthernetHeader.decode(raw)
        headers.append(eth)
        offset += used
        ethertype = eth.ethertype
    elif link == "myrinet":
        myr, used = MyrinetHeader.decode(raw)
        headers.append(myr)
        offset += used
        ethertype = myr.ptype
    elif link == "none":
        if not raw:
            raise DecodeError("empty packet")
        version = raw[0] >> 4
        ethertype = ETHERTYPE_IPV6 if version == 6 else ETHERTYPE_IPV4
    else:
        raise NetworkError(f"unknown link framing {link!r}")

    if ethertype == ETHERTYPE_IPV6:
        ip, used = IPv6Header.decode(raw[offset:])
        proto = ip.next_header
        upper_len = ip.payload_length
    elif ethertype == ETHERTYPE_IPV4:
        ip, used = IPv4Header.decode(raw[offset:])
        proto = ip.protocol
        upper_len = ip.total_length - IPv4Header.LEN
    else:
        raise DecodeError(f"unknown ethertype {ethertype:#x}")
    headers.append(ip)
    offset += used

    transport_raw = raw[offset:offset + upper_len]
    if len(transport_raw) < upper_len:
        raise DecodeError(
            f"truncated packet: IP says {upper_len} upper bytes, "
            f"{len(transport_raw)} present")
    if proto == PROTO_TCP:
        tp, used = TCPHeader.decode(transport_raw)
    elif proto == PROTO_UDP:
        tp, used = UDPHeader.decode(transport_raw)
    else:
        raise DecodeError(f"unsupported protocol {proto}")
    headers.append(tp)
    offset += used

    payload: Payload = BytesPayload(transport_raw[used:])
    pkt = Packet(headers, payload)
    myr = pkt.find(MyrinetHeader)
    if myr is not None:
        pkt.route = list(myr.route)
    return pkt


def pcap_text(pkt: Packet, now: float = 0.0) -> str:
    """Hex dump + one-line summary (a poor man's tcpdump -x)."""
    from ..tools.wiretap import format_packet
    raw = serialize(pkt)
    lines = [format_packet(pkt, now)]
    for i in range(0, len(raw), 16):
        chunk = raw[i:i + 16]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        lines.append(f"  0x{i:04x}:  {hexpart}")
    return "\n".join(lines)
