"""Inter-network protocol suite: headers, TCP, UDP, IP, stack glue."""

from .addresses import (Endpoint, FourTuple, IPAddress, IPv4Address,
                        IPv6Address, MacAddress)
from .ip import IpModule, ParsedSegment, RouteEntry
from .packet import EMPTY, BytesPayload, Packet, Payload, ZeroPayload, concat
from .stack import InetStack
from .udp import Datagram, UdpEndpoint, UdpModule

__all__ = [
    "Endpoint", "FourTuple", "IPAddress", "IPv4Address", "IPv6Address",
    "MacAddress", "IpModule", "ParsedSegment", "RouteEntry", "EMPTY",
    "BytesPayload", "Packet", "Payload", "ZeroPayload", "concat",
    "InetStack", "Datagram", "UdpEndpoint", "UdpModule",
]
