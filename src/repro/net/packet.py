"""Packets and payloads.

A :class:`Packet` is an ordered stack of decoded headers plus a payload.
Payloads come in two flavours:

* :class:`BytesPayload` — real bytes, used by correctness tests and any
  application that writes data into its buffers;
* :class:`ZeroPayload` — a length of implicit zeros, used by bulk
  benchmarks (the paper's ttcp/NBD transfers never look at the data), so
  a 409 MB transfer costs O(packets), not O(bytes).

Both provide an exact ones-complement checksum contribution, so TCP/UDP
checksums are real in either case (the sum of zeros is zero).
"""

from __future__ import annotations

from typing import List, Optional

from .checksum import ones_complement_sum


class Payload:
    """Interface: length, byte materialization, slicing, checksum sum."""

    # No __dict__ on any payload: subclasses declare their own slots.
    __slots__ = ()

    length: int

    def to_bytes(self) -> bytes:
        raise NotImplementedError

    def slice(self, offset: int, length: int) -> "Payload":
        raise NotImplementedError

    def csum(self) -> int:
        """Running (non-inverted) ones-complement sum at even alignment."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.length


class ZeroPayload(Payload):
    """``length`` implicit zero bytes."""

    __slots__ = ("length",)

    def __init__(self, length: int):
        if length < 0:
            raise ValueError("payload length must be non-negative")
        self.length = length

    def to_bytes(self) -> bytes:
        return bytes(self.length)

    def slice(self, offset: int, length: int) -> "ZeroPayload":
        if offset < 0 or length < 0 or offset + length > self.length:
            raise ValueError("payload slice out of bounds")
        return ZeroPayload(length)

    def csum(self) -> int:
        return 0

    def __repr__(self):
        return f"ZeroPayload({self.length})"

    def __eq__(self, other):
        if isinstance(other, ZeroPayload):
            return other.length == self.length
        if isinstance(other, BytesPayload):
            return other.length == self.length and other.data == bytes(self.length)
        return NotImplemented

    def __hash__(self):
        return hash(("zero", self.length))


class BytesPayload(Payload):
    """Real bytes."""

    __slots__ = ("data", "length", "_csum")

    def __init__(self, data: bytes):
        self.data = bytes(data)
        self.length = len(self.data)
        self._csum: Optional[int] = None

    def to_bytes(self) -> bytes:
        return self.data

    def slice(self, offset: int, length: int) -> "BytesPayload":
        if offset < 0 or length < 0 or offset + length > self.length:
            raise ValueError("payload slice out of bounds")
        return BytesPayload(self.data[offset:offset + length])

    def csum(self) -> int:
        if self._csum is None:
            self._csum = ones_complement_sum(self.data)
        return self._csum

    def __repr__(self):
        return f"BytesPayload({self.length})"

    def __eq__(self, other):
        if isinstance(other, BytesPayload):
            return other.data == self.data
        if isinstance(other, ZeroPayload):
            return other.__eq__(self)
        return NotImplemented

    def __hash__(self):
        return hash(self.data)


EMPTY = ZeroPayload(0)


class ChainPayload(Payload):
    """A lazy concatenation: keeps big zero runs virtual behind real
    prefixes (e.g. an RDMA framing header in front of a bulk body)."""

    __slots__ = ("parts", "length", "_csum")

    def __init__(self, parts: List[Payload]):
        self.parts = [p for p in parts if p.length]
        self.length = sum(p.length for p in self.parts)
        self._csum: Optional[int] = None

    def to_bytes(self) -> bytes:
        return b"".join(p.to_bytes() for p in self.parts)

    def slice(self, offset: int, length: int) -> Payload:
        if offset < 0 or length < 0 or offset + length > self.length:
            raise ValueError("payload slice out of bounds")
        picked: List[Payload] = []
        remaining = length
        cursor = offset
        for part in self.parts:
            if remaining == 0:
                break
            if cursor >= part.length:
                cursor -= part.length
                continue
            take = min(part.length - cursor, remaining)
            picked.append(part.slice(cursor, take))
            cursor = 0
            remaining -= take
        return concat(picked)

    def csum(self) -> int:
        if self._csum is None:
            # Ones-complement sums only combine at even boundaries; any
            # odd-length interior part forces materialization.
            if all(p.length % 2 == 0 for p in self.parts[:-1]):
                from .checksum import combine
                self._csum = combine(*(p.csum() for p in self.parts))
            else:
                from .checksum import ones_complement_sum
                self._csum = ones_complement_sum(self.to_bytes())
        return self._csum

    def __repr__(self):
        return f"ChainPayload({self.length}={'+'.join(str(p.length) for p in self.parts)})"

    def __eq__(self, other):
        if isinstance(other, Payload):
            return other.to_bytes() == self.to_bytes()
        return NotImplemented

    def __hash__(self):
        return hash(self.to_bytes())


def concat(parts: List[Payload]) -> Payload:
    """Concatenate payloads, staying virtual where possible."""
    parts = [p for p in parts if p.length]
    if not parts:
        return EMPTY
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(p, ZeroPayload) for p in parts):
        return ZeroPayload(sum(p.length for p in parts))
    total = sum(p.length for p in parts)
    real = sum(p.length for p in parts if not isinstance(p, ZeroPayload))
    if total <= 4096 or real == total:
        return BytesPayload(b"".join(p.to_bytes() for p in parts))
    return ChainPayload(parts)


class Packet:
    """A header stack (outermost first) plus payload plus link metadata."""

    __slots__ = ("headers", "payload", "route", "route_cursor", "born_at",
                 "corrupted", "trace_id", "_wire_size")

    _next_trace_id = 0

    def __init__(self, headers: Optional[list] = None,
                 payload: Payload = EMPTY):
        self.headers: list = headers if headers is not None else []
        self.payload = payload
        self.route: Optional[list] = None       # Myrinet source route (port list)
        self.route_cursor: int = 0
        self.born_at: Optional[float] = None
        self.corrupted: bool = False
        self._wire_size: Optional[int] = None
        Packet._next_trace_id += 1
        self.trace_id = Packet._next_trace_id

    def push(self, header) -> "Packet":
        """Prepend an (outer) header."""
        self.headers.insert(0, header)
        self._wire_size = None
        return self

    def top(self):
        if not self.headers:
            raise IndexError("packet has no headers")
        return self.headers[0]

    def pop(self):
        """Remove and return the outermost header."""
        if not self.headers:
            raise IndexError("packet has no headers")
        self._wire_size = None
        return self.headers.pop(0)

    def find(self, header_type):
        """Return the first header of the given type, or None."""
        for h in self.headers:
            if isinstance(h, header_type):
                return h
        return None

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire: all header bytes plus payload.

        Cached until the header stack changes (push/pop); header field
        mutations after build never change header lengths.
        """
        size = self._wire_size
        if size is None:
            size = sum(h.header_len()
                       for h in self.headers) + self.payload.length
            self._wire_size = size
        return size

    def copy_shallow(self) -> "Packet":
        """A distinct Packet sharing headers/payload (for retransmit clones)."""
        p = Packet(list(self.headers), self.payload)
        p.route = list(self.route) if self.route is not None else None
        p.route_cursor = self.route_cursor
        p.corrupted = self.corrupted
        return p

    def __repr__(self):
        names = "/".join(type(h).__name__ for h in self.headers)
        return f"<Packet {names} +{self.payload.length}B #{self.trace_id}>"
