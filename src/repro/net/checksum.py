"""RFC 1071 Internet checksum and pseudo-header helpers.

The checksum is the real ones-complement algorithm over real header
bytes; payload contributions come from the payload object so that
zero-filled bulk payloads cost O(1).
"""

from __future__ import annotations

import struct


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Return the running 16-bit ones-complement sum (not inverted)."""
    acc = initial
    n = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, n - 1, 2):
        acc += (data[i] << 8) | data[i + 1]
    if n % 2:
        acc += data[-1] << 8
    # Fold carries.
    while acc >> 16:
        acc = (acc & 0xFFFF) + (acc >> 16)
    return acc


def finish(acc: int) -> int:
    """Invert a running sum into the checksum field value."""
    value = (~acc) & 0xFFFF
    return value


def checksum(data: bytes) -> int:
    """One-shot internet checksum of ``data``."""
    return finish(ones_complement_sum(data))


def combine(*sums: int) -> int:
    """Combine running (non-inverted) sums."""
    acc = 0
    for s in sums:
        acc += s
        while acc >> 16:
            acc = (acc & 0xFFFF) + (acc >> 16)
    return acc


def pseudo_header_v6(src: bytes, dst: bytes, upper_len: int, next_header: int) -> int:
    """Running sum of the IPv6 pseudo-header (RFC 8200 §8.1)."""
    if len(src) != 16 or len(dst) != 16:
        raise ValueError("IPv6 addresses must be 16 bytes")
    ph = src + dst + struct.pack("!IxxxB", upper_len, next_header)
    return ones_complement_sum(ph)


def pseudo_header_v4(src: bytes, dst: bytes, upper_len: int, protocol: int) -> int:
    """Running sum of the IPv4 pseudo-header (RFC 793 §3.1)."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("IPv4 addresses must be 4 bytes")
    ph = src + dst + struct.pack("!BBH", 0, protocol, upper_len)
    return ones_complement_sum(ph)
