"""RFC 1071 Internet checksum and pseudo-header helpers.

The checksum is the real ones-complement algorithm over real header
bytes; payload contributions come from the payload object so that
zero-filled bulk payloads cost O(1).

Two implementations coexist:

* :func:`ones_complement_sum_naive` — the byte-pair reference loop,
  kept as the oracle the property tests check against;
* :func:`ones_complement_sum` — word folding via ``int.from_bytes``:
  interpret the buffer as one big-endian integer and reduce it modulo
  0xFFFF (2**16 ≡ 1 (mod 65535), so the residue *is* the end-around-
  carry sum of the 16-bit words, with residue 0 of a non-zero total
  rendered as 0xFFFF exactly like the carry loop renders it).

:func:`incremental_update` is the RFC 1624 (eqn. 3) delta update used
when a single header word changes in flight (ECN CE marking), so
forwarding does not recompute whole-header checksums.
"""

from __future__ import annotations

import struct

from .. import fastpath as _fastpath


def ones_complement_sum_naive(data: bytes, initial: int = 0) -> int:
    """Reference byte-pair loop (the oracle for the fast path)."""
    acc = initial
    n = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, n - 1, 2):
        acc += (data[i] << 8) | data[i + 1]
    if n % 2:
        acc += data[-1] << 8
    # Fold carries.
    while acc >> 16:
        acc = (acc & 0xFFFF) + (acc >> 16)
    return acc


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """Return the running 16-bit ones-complement sum (not inverted)."""
    if not _fastpath.ENABLED:
        return ones_complement_sum_naive(data, initial)
    if len(data) & 1:
        # Odd tail byte occupies the high half of its word (big-endian).
        total = initial + (int.from_bytes(data, "big") << 8)
    else:
        total = initial + int.from_bytes(data, "big")
    if total == 0:
        return 0
    residue = total % 0xFFFF
    return residue if residue else 0xFFFF


def finish(acc: int) -> int:
    """Invert a running sum into the checksum field value."""
    value = (~acc) & 0xFFFF
    return value


def checksum(data: bytes) -> int:
    """One-shot internet checksum of ``data``."""
    return finish(ones_complement_sum(data))


def combine(*sums: int) -> int:
    """Combine running (non-inverted) sums."""
    acc = 0
    for s in sums:
        acc += s
        while acc >> 16:
            acc = (acc & 0xFFFF) + (acc >> 16)
    return acc


def subtract(acc: int, value: int) -> int:
    """Ones-complement subtraction: remove ``value`` from a running sum.

    Lets a verifier compute "the sum as if a field were zero" without
    mutating the header: ``subtract(sum_with_field, field)``.
    """
    return combine(acc, (~value) & 0xFFFF)


def incremental_update(old_checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 eqn. 3: new checksum after one 16-bit word changes.

    ``HC' = ~(~HC + ~m + m')`` — equal to a full recompute for any
    header whose word sum is non-zero (always true of real headers).
    """
    acc = ((~old_checksum) & 0xFFFF) + ((~old_word) & 0xFFFF) + (new_word & 0xFFFF)
    while acc >> 16:
        acc = (acc & 0xFFFF) + (acc >> 16)
    return (~acc) & 0xFFFF


# -- pseudo headers ---------------------------------------------------------
#
# The address contribution dominates the pseudo-header sum and never
# changes for a given flow, so it is memoized keyed on the packed
# address pair.  The caches are tiny (one entry per address pair seen)
# but bounded anyway so pathological many-address runs cannot leak.

_ADDR_SUM_CACHE: dict = {}
_ADDR_SUM_CACHE_MAX = 4096


def _addr_pair_sum(src: bytes, dst: bytes) -> int:
    key = (src, dst)
    cached = _ADDR_SUM_CACHE.get(key)
    if cached is None:
        if len(_ADDR_SUM_CACHE) >= _ADDR_SUM_CACHE_MAX:
            _ADDR_SUM_CACHE.clear()
        cached = ones_complement_sum(src + dst)
        _ADDR_SUM_CACHE[key] = cached
    return cached


def _fold(acc: int) -> int:
    while acc >> 16:
        acc = (acc & 0xFFFF) + (acc >> 16)
    return acc


def pseudo_header_v6(src: bytes, dst: bytes, upper_len: int, next_header: int) -> int:
    """Running sum of the IPv6 pseudo-header (RFC 8200 §8.1)."""
    if len(src) != 16 or len(dst) != 16:
        raise ValueError("IPv6 addresses must be 16 bytes")
    if not _fastpath.ENABLED:
        ph = src + dst + struct.pack("!IxxxB", upper_len, next_header)
        return ones_complement_sum(ph)
    return _fold(_addr_pair_sum(src, dst)
                 + (upper_len >> 16) + (upper_len & 0xFFFF) + next_header)


def pseudo_header_v4(src: bytes, dst: bytes, upper_len: int, protocol: int) -> int:
    """Running sum of the IPv4 pseudo-header (RFC 793 §3.1)."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("IPv4 addresses must be 4 bytes")
    if not _fastpath.ENABLED:
        ph = src + dst + struct.pack("!BBH", 0, protocol, upper_len)
        return ones_complement_sum(ph)
    return _fold(_addr_pair_sum(src, dst) + protocol + (upper_len & 0xFFFF))
