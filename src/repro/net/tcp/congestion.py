"""TCP Reno congestion control (RFC 2581/2582-era, matching the paper's
"congestion and flow control mechanisms").

Slow start, congestion avoidance, fast retransmit on three duplicate
ACKs, and fast recovery with window inflation/deflation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DUPACK_THRESHOLD = 3


@dataclass
class RenoCongestion:
    mss: int
    initial_window_segments: int = 2

    cwnd: int = 0
    ssthresh: int = 0
    dupacks: int = 0
    in_recovery: bool = False
    recovery_point: int = 0     # snd_nxt at loss detection (exit recovery above it)

    # Observability counters.
    fast_retransmits: int = 0
    timeouts: int = 0
    slow_start_exits: int = 0
    ecn_reductions: int = 0

    def __post_init__(self):
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.cwnd == 0:
            self.cwnd = self.initial_window_segments * self.mss
        if self.ssthresh == 0:
            self.ssthresh = 1 << 30     # "infinite" until first loss

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack_of_new_data(self, acked_bytes: int, flight_size: int) -> None:
        """Grow cwnd for an ACK advancing snd_una (outside recovery)."""
        if acked_bytes <= 0:
            return
        self.dupacks = 0
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.mss)
            if not self.in_slow_start:
                self.slow_start_exits += 1
        else:
            # Congestion avoidance: ~1 MSS per RTT.
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_duplicate_ack(self, flight_size: int) -> bool:
        """Count a duplicate ACK.  Returns True when fast retransmit fires."""
        self.dupacks += 1
        if self.in_recovery:
            # Window inflation for each further dup ACK.
            self.cwnd += self.mss
            return False
        if self.dupacks == DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + DUPACK_THRESHOLD * self.mss
            self.in_recovery = True
            self.fast_retransmits += 1
            return True
        return False

    def on_recovery_ack(self) -> None:
        """Partial ACK during recovery (Reno: stay in recovery)."""
        self.dupacks = 0

    def exit_recovery(self) -> None:
        """Full ACK past the recovery point: deflate the window."""
        self.cwnd = self.ssthresh
        self.in_recovery = False
        self.dupacks = 0

    def on_ecn_signal(self, flight_size: int) -> None:
        """RFC 3168: an ECN-Echo is a congestion signal without loss —
        halve the window as fast retransmit would, but retransmit nothing."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh
        self.ecn_reductions += 1

    def on_retransmission_timeout(self, flight_size: int) -> None:
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.dupacks = 0
        self.in_recovery = False
        self.timeouts += 1

    def window(self) -> int:
        return self.cwnd
