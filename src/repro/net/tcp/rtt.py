"""Round-trip-time estimation (Jacobson/Karels, as in the BSD stack the
paper's firmware was derived from).

Times are microseconds.  The paper's Table 3 shows the ACK-receive path
paying heavily for "a series of multiply operations for the RTT
estimators" on the multiplier-less LANai — this module is exactly that
computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RttEstimator:
    """SRTT/RTTVAR tracking with exponential RTO backoff and Karn's rule."""

    min_rto: float = 10_000.0          # 10 ms floor
    max_rto: float = 64_000_000.0      # 64 s ceiling
    initial_rto: float = 1_000_000.0   # 1 s before any sample (RFC 6298)

    srtt: float = 0.0
    rttvar: float = 0.0
    rto: float = field(default=0.0)
    samples: int = 0
    backoff_shift: int = 0

    def __post_init__(self):
        if self.rto == 0.0:
            self.rto = self.initial_rto

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (Karn: only for non-retransmitted data)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            delta = rtt - self.srtt
            self.srtt += delta / 8                     # g = 1/8
            self.rttvar += (abs(delta) - self.rttvar) / 4   # h = 1/4
        self.samples += 1
        self.backoff_shift = 0
        self._recompute()

    def _recompute(self) -> None:
        base = self.srtt + max(4 * self.rttvar, 1.0)
        base = max(self.min_rto, min(self.max_rto, base))
        self.rto = min(self.max_rto, base * (1 << self.backoff_shift))

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        if self.backoff_shift < 12:
            self.backoff_shift += 1
        self._recompute()

    def on_new_ack(self) -> None:
        """An ACK advanced snd_una: clear the backoff (as Linux does)."""
        if self.backoff_shift:
            self.backoff_shift = 0
            self._recompute()

    def current_rto(self) -> float:
        return self.rto
