"""Full TCP engine: state machine, windows, RTT, Reno congestion control."""

from .congestion import DUPACK_THRESHOLD, RenoCongestion
from .connection import SegDescriptor, TcpConnection, classify
from .endpoints import TcpListener, TcpModule
from .rtt import RttEstimator
from .seqspace import (seq_add, seq_between, seq_ge, seq_gt, seq_le, seq_lt,
                       seq_max, seq_sub)
from .tcb import SendChunk, TcpConfig, TcpState, TcpStats

__all__ = [
    "DUPACK_THRESHOLD", "RenoCongestion", "SegDescriptor", "TcpConnection",
    "classify", "TcpListener", "TcpModule", "RttEstimator", "seq_add",
    "seq_between", "seq_ge", "seq_gt", "seq_le", "seq_lt", "seq_max",
    "seq_sub", "SendChunk", "TcpConfig", "TcpState", "TcpStats",
]
