"""TCP connection demultiplexing and passive listeners.

The paper (§3): "The server application instructs the interface to
monitor a TCP port for incoming connections ... that mates the
connection to an idle QP in the server application."  The listener's
``accept_queue`` is exactly that mating point; for the host stack it
backs ``accept()``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Tuple

from ...errors import SocketError
from ...sim import Simulator, Store
from ..addresses import Endpoint, FourTuple, IPAddress
from ..headers.transport import ACK, RST, SYN, TCPHeader
from ..packet import Payload
from .connection import TcpConnection
from .seqspace import seq_add
from .tcb import TcpConfig, TcpState


class TcpListener:
    """A passive open on (addr, port): spawns a connection per SYN."""

    def __init__(self, module: "TcpModule", local: Endpoint, backlog: int,
                 config: TcpConfig, ctx_factory: Callable[[], object]):
        self.module = module
        self.local = local
        self.backlog = backlog
        self.config = config
        self.ctx_factory = ctx_factory
        self.accept_queue: Store = Store(module.sim, name=f"accept:{local.port}")
        self.pending: Dict[FourTuple, TcpConnection] = {}
        self.closed = False
        self.syn_drops = 0

    def accept(self):
        """Event yielding the next ESTABLISHED connection."""
        return self.accept_queue.get()

    def on_syn(self, hdr: TCPHeader, src: Endpoint) -> Optional[TcpConnection]:
        if self.closed:
            return None
        if len(self.pending) + len(self.accept_queue) >= self.backlog:
            self.syn_drops += 1
            return None                      # silently drop; client retries
        four = FourTuple(self.local, src)
        ctx = self.ctx_factory()
        conn = self.module._create(four, self.config, ctx)
        on_created = getattr(ctx, "on_conn_created", None)
        if on_created is not None:
            on_created(conn)
        self.pending[four] = conn
        inner_established = ctx.on_established
        inner_closed = ctx.on_closed
        inner_reset = ctx.on_reset

        # A half-open connection must release its backlog slot however it
        # dies (handshake RST, SYN|ACK retry exhaustion); otherwise leaked
        # ``pending`` entries eventually eat the whole backlog and the
        # listener silently drops every later SYN.
        def on_established(c: TcpConnection):
            self.pending.pop(four, None)
            self.accept_queue.put(c)
            inner_established(c)

        def on_closed(c: TcpConnection):
            self.pending.pop(four, None)
            inner_closed(c)

        def on_reset(c: TcpConnection, exc):
            self.pending.pop(four, None)
            inner_reset(c, exc)

        ctx.on_established = on_established
        ctx.on_closed = on_closed
        ctx.on_reset = on_reset
        conn.passive_open(hdr)
        return conn

    def close(self) -> None:
        self.closed = True
        self.module._listeners.pop((self.local.addr, self.local.port), None)
        self.module._listeners.pop((None, self.local.port), None)


class TcpModule:
    """Per-stack TCP: connection table, listeners, ISN generation, RSTs."""

    def __init__(self, sim: Simulator, isn_seed: int = 0):
        self.sim = sim
        self.connections: Dict[FourTuple, TcpConnection] = {}
        self._listeners: Dict[Tuple[Optional[IPAddress], int], TcpListener] = {}
        self._isn = itertools.count(isn_seed * 64_000 + 1)
        self._ephemeral = itertools.count(32768)
        self.rst_sent = 0
        # The surrounding stack wires this to its transmit path so the module
        # can emit RSTs for segments with no home.
        self.send_rst: Optional[Callable[[Endpoint, Endpoint, TCPHeader], None]] = None

    # -- port & connection management -----------------------------------------

    def ephemeral_port(self) -> int:
        return next(self._ephemeral)

    def next_isn(self) -> int:
        return (next(self._isn) * 68_921) & 0xFFFFFFFF

    def _create(self, four: FourTuple, config: TcpConfig, ctx) -> TcpConnection:
        if four in self.connections:
            raise SocketError(f"connection {four} already exists")
        conn = TcpConnection(self.sim, ctx, four, config, self.next_isn())
        self.connections[four] = conn
        inner_closed = ctx.on_closed
        inner_reset = ctx.on_reset

        def on_closed(c: TcpConnection):
            self.connections.pop(four, None)
            inner_closed(c)

        def on_reset(c: TcpConnection, exc):
            # Aborts skip on_closed, so the table entry must go here.
            self.connections.pop(four, None)
            inner_reset(c, exc)

        ctx.on_closed = on_closed
        ctx.on_reset = on_reset
        return conn

    def connect(self, local: Endpoint, remote: Endpoint, config: TcpConfig,
                ctx) -> TcpConnection:
        conn = self._create(FourTuple(local, remote), config, ctx)
        conn.connect()
        return conn

    def listen(self, local: Endpoint, config: TcpConfig, ctx_factory,
               backlog: int = 8) -> TcpListener:
        key = (local.addr, local.port)
        if key in self._listeners:
            raise SocketError(f"port {local.port} already has a listener")
        listener = TcpListener(self, local, backlog, config, ctx_factory)
        self._listeners[key] = listener
        return listener

    def lookup_listener(self, dst: Endpoint) -> Optional[TcpListener]:
        return (self._listeners.get((dst.addr, dst.port))
                or self._listeners.get((None, dst.port)))

    # -- input ----------------------------------------------------------------

    def input(self, src: Endpoint, dst: Endpoint, hdr: TCPHeader,
              payload: Payload, ce: bool = False) -> Optional[TcpConnection]:
        """Dispatch one segment; returns the connection that consumed it."""
        four = FourTuple(dst, src)
        conn = self.connections.get(four)
        if conn is not None and conn.state is not TcpState.CLOSED:
            conn.handle_segment(hdr, payload, ce=ce)
            return conn
        if hdr.flag(SYN) and not hdr.flag(ACK):
            listener = self.lookup_listener(dst)
            if listener is not None:
                return listener.on_syn(hdr, src)
        self._reply_rst(src, dst, hdr, payload)
        return None

    def _reply_rst(self, src: Endpoint, dst: Endpoint, hdr: TCPHeader,
                   payload: Payload) -> None:
        if hdr.flag(RST) or self.send_rst is None:
            return
        seg_len = payload.length + (1 if hdr.flag(SYN) else 0)
        if hdr.flag(ACK):
            rst = TCPHeader(dst.port, src.port, seq=hdr.ack, flags=RST)
        else:
            rst = TCPHeader(dst.port, src.port, seq=0,
                            ack=seq_add(hdr.seq, seg_len), flags=RST | ACK)
        self.rst_sent += 1
        self.send_rst(dst, src, rst)
