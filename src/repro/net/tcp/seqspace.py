"""32-bit wrapping sequence-number arithmetic (RFC 793 §3.3)."""

from __future__ import annotations

MOD = 1 << 32
MASK = MOD - 1
HALF = 1 << 31


def seq_add(a: int, n: int) -> int:
    return (a + n) & MASK


def seq_sub(a: int, b: int) -> int:
    """Signed distance a - b in sequence space, in (-2^31, 2^31]."""
    d = (a - b) & MASK
    return d - MOD if d >= HALF else d


def seq_lt(a: int, b: int) -> bool:
    return seq_sub(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_sub(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_sub(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_sub(a, b) >= 0


def seq_between(low: int, x: int, high: int) -> bool:
    """low <= x < high in wrapping space."""
    return seq_le(low, x) and seq_lt(x, high)


def seq_max(a: int, b: int) -> int:
    return a if seq_ge(a, b) else b
