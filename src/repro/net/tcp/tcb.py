"""Transmission control block: connection state, the send queue chunks,
and the configuration knobs the QPIP prototype exposes.

The paper (§3.1) keeps "a common data structure ... to maintain the state
of the individual QPs [that] includes the inter-network protocol specific
information, namely the TCP transmission control block (TCB)".  This
module is that TCB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..packet import EMPTY, Payload


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


# States in which the application may queue new outbound data.
DATA_SEND_STATES = (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
# States in which already-queued data may still drain onto the wire
# (close() queues a FIN *behind* pending data, RFC 793 CLOSE call).
DATA_DRAIN_STATES = (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                     TcpState.FIN_WAIT_1, TcpState.LAST_ACK)
# States in which inbound data is accepted.
DATA_RECV_STATES = (TcpState.ESTABLISHED, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2)
# Synchronized states (RFC 793 terminology).
SYNCHRONIZED_STATES = (
    TcpState.ESTABLISHED, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2,
    TcpState.CLOSE_WAIT, TcpState.CLOSING, TcpState.LAST_ACK, TcpState.TIME_WAIT)


@dataclass
class TcpConfig:
    """Tuning knobs; defaults mirror the prototype's stack."""

    mss: int = 1460                      # capped by link MTU at stack level
    message_mode: bool = False           # 1 QP message == 1 TCP segment (paper §4.1)
    use_timestamps: bool = True          # RFC 1323
    use_window_scaling: bool = True      # RFC 1323
    nodelay: bool = True                 # paper benchmarks set TCP_NODELAY
    reassembly: bool = False             # prototype has no out-of-order queue
    use_sack: bool = False               # RFC 2018 (extension; needs reassembly)
    ecn: bool = False                    # RFC 3168 (extension; see §5.2)
    recv_buffer: int = 64 * 1024         # stream mode receive buffer
    send_buffer: int = 64 * 1024         # stream mode send buffer
    max_window: int = 1 << 20            # sizing for the wscale offer
    delack_segments: int = 2             # ACK every Nth segment...
    delack_timeout: float = 200_000.0    # ...or after 200 ms
    min_rto: float = 10_000.0
    max_rto: float = 64_000_000.0
    initial_rto: float = 1_000_000.0
    msl: float = 1_000_000.0             # shortened MSL (sim seconds are long)
    persist_timeout: float = 500_000.0
    persist_max: float = 8_000_000.0
    keepalive_idle: Optional[float] = None   # µs of silence before probing
    keepalive_interval: float = 1_000_000.0  # between unanswered probes
    keepalive_probes: int = 3                # unanswered probes before reset
    initial_cwnd_segments: int = 2
    ts_clock_granularity: float = 1_000.0   # RFC 1323 timestamp tick, µs
    syn_retries: int = 5

    def wscale_offer(self) -> int:
        """Window-scale shift needed to advertise ``max_window``."""
        shift = 0
        while (self.max_window >> shift) > 0xFFFF and shift < 14:
            shift += 1
        return shift


@dataclass
class SendChunk:
    """One retransmittable unit: a message (message mode), a stream
    segment, or a SYN/FIN."""

    seq: int
    payload: Payload = EMPTY
    syn: bool = False
    fin: bool = False
    msg_id: Optional[int] = None
    sent_at: float = 0.0
    retransmits: int = 0
    sacked: bool = False      # covered by a peer SACK block (RFC 2018)

    @property
    def seq_len(self) -> int:
        return self.payload.length + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end(self) -> int:
        return (self.seq + self.seq_len) & 0xFFFFFFFF


@dataclass
class TcpStats:
    """Per-connection observability (mirrors netstat-style counters)."""

    segs_out: int = 0
    segs_in: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    acks_out: int = 0
    pure_acks_in: int = 0
    retransmitted_segs: int = 0
    fast_retransmits: int = 0
    rto_timeouts: int = 0
    dup_acks_in: int = 0
    ooo_segments: int = 0
    ooo_dropped: int = 0
    ooo_queued: int = 0
    duplicate_data_segs: int = 0
    window_probes: int = 0
    window_updates_out: int = 0
    fastpath_data: int = 0
    fastpath_ack: int = 0
    slowpath: int = 0
    checksum_errors: int = 0
    sack_blocks_out: int = 0
    sack_retransmits: int = 0
