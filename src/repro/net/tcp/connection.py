"""The TCP connection engine.

This is a real TCP: three-way handshake, sliding windows, RFC 1323
timestamps and window scaling, Jacobson/Karels RTT estimation with
Karn's rule, Reno congestion control with fast retransmit/recovery,
delayed ACKs, zero-window persist probes, and the full close state
machine.  It matches the subset the QPIP prototype implements (paper
§4.1) plus optional out-of-order reassembly (the prototype omits it;
we make it a config flag so the design choice can be ablated).

The engine is *pure protocol logic*: it never sleeps.  Timing lives in
the surrounding execution contexts (NIC firmware FSMs or the host
kernel), which drain ``output_queue`` through their own timed stages.
This mirrors the paper's split between protocol state processing and
the transmit/receive state machines of Figure 2.

Context protocol (duck-typed)::

    ctx.output_ready(conn)            # descriptors queued; schedule a drain
    ctx.deliver(conn, payload, meta)  # one in-order segment for the app
    ctx.on_established(conn)
    ctx.on_remote_fin(conn)
    ctx.on_closed(conn)               # reached CLOSED/TIME_WAIT teardown
    ctx.on_reset(conn, exc)           # aborted (RST or retry exhaustion)
    ctx.on_send_complete(conn, msg_id)       # message fully acked
    ctx.on_send_buffer_space(conn)           # stream mode: space freed
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple
from collections import deque

from ... import fastpath as _fastpath
from ... import obs
from ...errors import ConnectionReset
from ...sim import Simulator, Timer
from ..addresses import FourTuple
from ..headers.transport import (ACK, CWR, ECE, FIN, PSH, RST, SYN,
                                 TCPHeader, URG)
from ..packet import EMPTY, Payload, ZeroPayload, concat
from .congestion import RenoCongestion
from .rtt import RttEstimator
from .seqspace import (seq_add, seq_between, seq_ge, seq_gt, seq_le, seq_lt,
                       seq_sub)
from .tcb import (DATA_DRAIN_STATES, DATA_RECV_STATES, DATA_SEND_STATES,
                  SYNCHRONIZED_STATES,
                  SendChunk, TcpConfig, TcpState, TcpStats)

MAX_DATA_RETRIES = 15
TS_MASK = 0xFFFFFFFF


def classify(hdr: TCPHeader, payload_len: int) -> str:
    """'ack' for a pure acknowledgement, 'data' otherwise.

    The firmware charges different occupancy for the two cases
    (paper Tables 2 & 3).
    """
    if payload_len == 0 and not hdr.flags & (SYN | FIN | RST):
        return "ack"
    return "data"


@dataclass
class SegDescriptor:
    """A queued transmission: materialized into a header at wire time."""

    kind: str                       # 'data' | 'ack' | 'probe' | 'rst'
    chunk: Optional[SendChunk] = None
    retransmit: bool = False


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(self, sim: Simulator, ctx, four_tuple: FourTuple,
                 config: TcpConfig, iss: int):
        self.sim = sim
        self.ctx = ctx
        self.tuple = four_tuple
        self.config = config
        self.state = TcpState.CLOSED
        self.stats = TcpStats()

        # --- send side -----------------------------------------------------
        self.iss = iss
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_wnd = 0
        self.snd_wl1 = 0
        self.snd_wl2 = 0
        self._retx: Deque[SendChunk] = deque()
        self._unsent: Deque[Tuple[Optional[int], Payload]] = deque()
        self._unsent_bytes = 0
        self._fin_pending = False
        self._fin_queued = False

        # --- receive side ---------------------------------------------------
        self.irs: Optional[int] = None
        self.rcv_nxt = 0
        self.rcv_adv = 0                      # highest window edge promised
        self._rcv_buffered = 0                # stream mode: delivered, unread
        self._recv_credit = config.recv_buffer  # credit mode: posted WR bytes
        self._reasm: List[Tuple[int, Payload, bool]] = []  # (seq, payload, fin)

        # --- options ----------------------------------------------------------
        self.peer_mss: Optional[int] = None
        self.ts_ok = False
        self.ws_ok = False
        self.sack_ok = False
        self.snd_wscale = 0                  # applied to windows we receive
        self.rcv_wscale = 0                  # applied to windows we send
        self.ts_recent = 0

        # --- machinery ---------------------------------------------------------
        self.rtt = RttEstimator(min_rto=config.min_rto, max_rto=config.max_rto,
                                initial_rto=config.initial_rto)
        self.cc = RenoCongestion(mss=max(1, config.mss),
                                 initial_window_segments=config.initial_cwnd_segments)
        self.output_queue: Deque[SegDescriptor] = deque()
        self._rto_timer = Timer(sim, self._on_rto, name="rto")
        self._delack_timer = Timer(sim, self._on_delack, name="delack")
        self._persist_timer = Timer(sim, self._on_persist, name="persist")
        self._keepalive_timer = Timer(sim, self._on_keepalive, name="keepalive")
        self._keepalive_failures = 0
        self._last_activity = sim.now
        self._time_wait_timer = Timer(sim, self._on_time_wait_done, name="2msl")
        self._persist_backoff = config.persist_timeout
        self._segs_unacked = 0
        self._ack_pending = False    # data received but not yet acknowledged
        self._ack_credit = 0         # explicitly requested ACK segments owed
        self._rtt_probe: Optional[Tuple[int, float]] = None
        self._next_msg_id = 0
        self._credit_mode = False

        # --- ECN (RFC 3168; extension per paper §5.2) -----------------------
        self.ecn_ok = False
        self._ecn_echo = False           # receiver: echo ECE until CWR seen
        self._cwr_pending = False        # sender: set CWR on next data segment
        self._ecn_reacted_at: Optional[int] = None   # one reduction per window

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise ConnectionReset(f"connect() in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._queue_chunk(SendChunk(seq=self.snd_nxt, syn=True))

    def passive_open(self, syn: TCPHeader) -> None:
        """Server side: consume a SYN and answer SYN|ACK (listener calls this)."""
        if self.state is not TcpState.CLOSED:
            raise ConnectionReset(f"passive_open() in state {self.state}")
        self.stats.segs_in += 1
        self._record_peer_options(syn, passive=True)
        self.irs = syn.seq
        self.rcv_nxt = seq_add(syn.seq, 1)
        self.ts_recent = syn.ts_val or 0
        self.state = TcpState.SYN_RCVD
        self._queue_chunk(SendChunk(seq=self.snd_nxt, syn=True))

    def close(self) -> None:
        """Graceful close: FIN after any queued data."""
        if self.state in (TcpState.CLOSED, TcpState.LISTEN):
            self.state = TcpState.CLOSED
            return
        if self.state is TcpState.SYN_SENT:
            self._teardown(notify_closed=True)
            return
        if self.state in (TcpState.ESTABLISHED, TcpState.SYN_RCVD):
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        else:
            return  # already closing
        self._fin_pending = True
        self._try_send()

    def abort(self, exc=None) -> None:
        """Hard close: RST to the peer, drop all state.

        With ``exc`` the context hears about it through ``on_reset``
        (local-error semantics: a watchdog or driver killed the
        connection) instead of an orderly ``on_closed``.
        """
        if self.state in SYNCHRONIZED_STATES:
            self.output_queue.append(SegDescriptor("rst"))
            self.ctx.output_ready(self)
        if exc is not None:
            self._teardown(notify_closed=False)
            self.ctx.on_reset(self, exc)
        else:
            self._teardown(notify_closed=True)

    def _teardown(self, notify_closed: bool) -> None:
        self.state = TcpState.CLOSED
        self._rto_timer.cancel()
        self._delack_timer.cancel()
        self._persist_timer.cancel()
        self._keepalive_timer.cancel()
        self._time_wait_timer.cancel()
        self._retx.clear()
        self._unsent.clear()
        self._unsent_bytes = 0
        if notify_closed:
            self.ctx.on_closed(self)

    # ------------------------------------------------------------------
    # application send path
    # ------------------------------------------------------------------

    @property
    def effective_mss(self) -> int:
        """Max payload per segment after option overhead."""
        mss = self.config.mss
        if self.peer_mss is not None:
            mss = min(mss, self.peer_mss)
        if self.ts_ok:
            mss -= 12
        return max(1, mss)

    @property
    def max_message(self) -> int:
        """Largest QP message (message mode maps 1 message -> 1 segment)."""
        return self.effective_mss

    def send_message(self, payload: Payload, msg_id: Optional[int] = None) -> int:
        """Queue one message; returns its id (completion reported when acked)."""
        if not self.config.message_mode:
            raise ConnectionReset("send_message requires message_mode")
        if payload.length > self.max_message:
            raise ConnectionReset(
                f"message of {payload.length}B exceeds max segment {self.max_message}B")
        if self.state not in DATA_SEND_STATES and \
                self.state not in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            raise ConnectionReset(f"send in state {self.state}")
        if msg_id is None:
            msg_id = self._next_msg_id
        self._next_msg_id = max(self._next_msg_id, msg_id + 1)
        if payload.length == 0 and not self._unsent and not self._retx:
            # Zero-length messages occupy no sequence space, so no ACK will
            # ever cover them; they complete at send time.
            self.sim.call_soon(self.ctx.on_send_complete, self, msg_id)
            return msg_id
        self._unsent.append((msg_id, payload))
        self._unsent_bytes += payload.length
        self._try_send()
        return msg_id

    def send_stream(self, payload: Payload) -> int:
        """Byte-stream send; accepts up to free buffer space, returns bytes taken."""
        if self.config.message_mode:
            raise ConnectionReset("send_stream requires stream mode")
        if self.state not in DATA_SEND_STATES and \
                self.state not in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            raise ConnectionReset(f"send in state {self.state}")
        space = self.send_space()
        take = min(space, payload.length)
        if take > 0:
            self._unsent.append((None, payload.slice(0, take)))
            self._unsent_bytes += take
            self._try_send()
        return take

    def send_space(self) -> int:
        """Free send-buffer space (stream mode)."""
        inflight_payload = sum(c.payload.length for c in self._retx)
        used = self._unsent_bytes + inflight_payload
        return max(0, self.config.send_buffer - used)

    @property
    def bytes_unsent(self) -> int:
        return self._unsent_bytes

    @property
    def flight_size(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una)

    @property
    def all_sent_data_acked(self) -> bool:
        return not self._retx and not self._unsent

    # ------------------------------------------------------------------
    # receive-window management
    # ------------------------------------------------------------------

    def enable_credit_window(self, initial_credit: int = 0) -> None:
        """QPIP mode: the receive window tracks posted receive-WR space."""
        self._credit_mode = True
        self._recv_credit = initial_credit

    def set_receive_credit(self, credit: int) -> None:
        """Update posted-buffer credit; may emit a window update."""
        if not self._credit_mode:
            raise ConnectionReset("set_receive_credit requires credit mode")
        old = self._advertisable_window()
        self._recv_credit = credit
        self._window_maybe_update(old)

    def app_consumed(self, nbytes: int) -> None:
        """Stream mode: the app read ``nbytes`` out of the receive buffer."""
        old = self._advertisable_window()
        self._rcv_buffered = max(0, self._rcv_buffered - nbytes)
        self._window_maybe_update(old)

    def _advertisable_window(self) -> int:
        if self._credit_mode:
            wnd = self._recv_credit
        else:
            wnd = self.config.recv_buffer - self._rcv_buffered
        wnd = max(0, min(wnd, 0xFFFF << self.rcv_wscale))
        # Never shrink a promised window (RFC 793: "don't take it back").
        promised = seq_sub(self.rcv_adv, self.rcv_nxt)
        return max(wnd, promised, 0)

    def _window_maybe_update(self, old_window: int) -> None:
        if self.state not in SYNCHRONIZED_STATES:
            return
        new = self._advertisable_window()
        # Measure the gain against the last *advertised* edge, so windows
        # already announced by regular ACKs don't retrigger updates (which
        # would look like duplicate ACKs to the peer).
        edge_gain = seq_sub(seq_add(self.rcv_nxt, new), self.rcv_adv)
        if self._credit_mode:
            # QPIP: posted receive WRs open the window eagerly (paper §5.1).
            update = (old_window == 0 and new > 0) \
                or edge_gain >= self.effective_mss
        else:
            # BSD rule: don't chatter window updates on every read.
            update = (old_window == 0 and new > 0) \
                or edge_gain >= 2 * self.effective_mss \
                or edge_gain >= self.config.recv_buffer // 2
        if update:
            self.stats.window_updates_out += 1
            self._request_ack(immediate=True, coalesce=True)

    # ------------------------------------------------------------------
    # transmit machinery
    # ------------------------------------------------------------------

    def _queue_chunk(self, chunk: SendChunk) -> None:
        self._retx.append(chunk)
        self.snd_nxt = seq_add(self.snd_nxt, chunk.seq_len)
        self.output_queue.append(SegDescriptor("data", chunk=chunk))
        self._rto_timer.start_if_idle(self.rtt.current_rto())
        self.ctx.output_ready(self)

    def _usable_window(self) -> int:
        wnd = min(self.snd_wnd, self.cc.window())
        return wnd - self.flight_size

    def _try_send(self) -> None:
        """Move unsent data into the transmit queue as the window allows."""
        if self.state not in DATA_DRAIN_STATES:
            # Data waits for ESTABLISHED; SYN/FIN chunks are queued directly.
            self._maybe_queue_fin()
            return
        if _fastpath.ENABLED:
            progressed = self._fill_output_burst()
        else:
            progressed = self._fill_output()
        self._maybe_queue_fin()
        if (not progressed and self._unsent and self.flight_size == 0
                and self.state in DATA_DRAIN_STATES):
            # Nothing in flight and nothing sendable: only a window opening
            # can unblock us, so probe in case the update gets lost.
            self._arm_persist()

    def _fill_output(self) -> bool:
        """Reference sender fill: one window check, one chunk, one drain
        notification per loop pass."""
        progressed = False
        while self._unsent:
            usable = self._usable_window()
            msg_id, payload = self._unsent[0]
            if self.config.message_mode:
                need = payload.length
                if need > usable and self.flight_size > 0:
                    break
                if need > usable and need > self.snd_wnd:
                    break  # receiver has not posted enough; wait for credit
                self._unsent.popleft()
                self._unsent_bytes -= payload.length
                self._queue_chunk(SendChunk(seq=self.snd_nxt, payload=payload,
                                            msg_id=msg_id))
                progressed = True
            else:
                seg_len = min(self.effective_mss, usable, self._unsent_bytes)
                if seg_len <= 0:
                    break
                if (not self.config.nodelay and seg_len < self.effective_mss
                        and self.flight_size > 0):
                    break  # Nagle: wait for a full segment or an ACK
                chunk_payload = self._take_unsent(seg_len)
                self._queue_chunk(SendChunk(seq=self.snd_nxt, payload=chunk_payload))
                progressed = True
        return progressed

    def _fill_output_burst(self) -> bool:
        """Batched twin of :meth:`_fill_output`: queue every sendable
        segment in one traversal, with the window arithmetic hoisted
        into locals and updated incrementally, then arm the RTO timer
        and notify the drain path once for the whole burst.

        Identical chunk boundaries and queue contents: nothing inside
        the loop can move ``snd_wnd``, ``cc.window()`` or ``snd_una``
        (the naive loop's recomputed ``_usable_window()`` only ever
        changes by the just-queued chunk's ``seq_len``), and the drain
        contexts either queue work asynchronously or synchronously pop
        only the front descriptor — the same front segment, built from
        the same state, in both modes.
        """
        unsent = self._unsent
        if not unsent:
            return False
        usable = self._usable_window()
        flight = self.flight_size
        retx = self._retx
        out = self.output_queue
        queued = 0
        if self.config.message_mode:
            snd_wnd = self.snd_wnd
            while unsent:
                msg_id, payload = unsent[0]
                need = payload.length
                if need > usable and (flight > 0 or need > snd_wnd):
                    break
                unsent.popleft()
                self._unsent_bytes -= need
                chunk = SendChunk(seq=self.snd_nxt, payload=payload,
                                  msg_id=msg_id)
                retx.append(chunk)
                seq_len = chunk.seq_len
                self.snd_nxt = seq_add(self.snd_nxt, seq_len)
                out.append(SegDescriptor("data", chunk=chunk))
                usable -= seq_len
                flight += seq_len
                queued += 1
        else:
            mss = self.effective_mss
            nodelay = self.config.nodelay
            while unsent:
                seg_len = min(mss, usable, self._unsent_bytes)
                if seg_len <= 0:
                    break
                if not nodelay and seg_len < mss and flight > 0:
                    break  # Nagle: wait for a full segment or an ACK
                chunk = SendChunk(seq=self.snd_nxt,
                                  payload=self._take_unsent(seg_len))
                retx.append(chunk)
                seq_len = chunk.seq_len
                self.snd_nxt = seq_add(self.snd_nxt, seq_len)
                out.append(SegDescriptor("data", chunk=chunk))
                usable -= seq_len
                flight += seq_len
                queued += 1
        if not queued:
            return False
        self._rto_timer.start_if_idle(self.rtt.current_rto())
        self.ctx.output_ready(self)
        return True

    def _take_unsent(self, nbytes: int) -> Payload:
        parts: List[Payload] = []
        remaining = nbytes
        while remaining > 0 and self._unsent:
            _mid, payload = self._unsent[0]
            if payload.length <= remaining:
                parts.append(payload)
                remaining -= payload.length
                self._unsent.popleft()
            else:
                parts.append(payload.slice(0, remaining))
                self._unsent[0] = (_mid, payload.slice(remaining,
                                                       payload.length - remaining))
                remaining = 0
        self._unsent_bytes -= nbytes - remaining
        return concat(parts)

    def _maybe_queue_fin(self) -> None:
        if (self._fin_pending and not self._fin_queued and not self._unsent
                and self.state in (TcpState.FIN_WAIT_1, TcpState.LAST_ACK,
                                   TcpState.CLOSING)):
            self._fin_queued = True
            self._queue_chunk(SendChunk(seq=self.snd_nxt, fin=True))

    def _arm_persist(self) -> None:
        if not self._persist_timer.armed:
            self._persist_backoff = self.config.persist_timeout
            self._persist_timer.start(self._persist_backoff)

    def _on_persist(self) -> None:
        if (self.state not in DATA_DRAIN_STATES or not self._unsent
                or self.flight_size > 0):
            return
        self.stats.window_probes += 1
        self.output_queue.append(SegDescriptor("probe"))
        self.ctx.output_ready(self)
        self._persist_backoff = min(self._persist_backoff * 2,
                                    self.config.persist_max)
        self._persist_timer.start(self._persist_backoff)

    # ------------------------------------------------------------------
    # segment construction (called by the drain path at wire time)
    # ------------------------------------------------------------------

    def has_output(self) -> bool:
        return bool(self.output_queue)

    def next_descriptor(self) -> Optional[SegDescriptor]:
        while self.output_queue:
            desc = self.output_queue.popleft()
            if desc.kind == "ack" and self._ack_credit <= 0:
                continue  # a data segment already carried this ACK
            if desc.kind == "data" and desc.chunk is not None \
                    and not desc.retransmit \
                    and seq_ge(self.snd_una, desc.chunk.end) \
                    and not desc.chunk.syn and not desc.chunk.fin:
                continue  # fully acked while queued
            return desc
        return None

    def build_segment(self, desc: SegDescriptor) -> Optional[Tuple[TCPHeader, Payload]]:
        """Materialize a descriptor into (header, payload).

        Checksum is left zero; the IP layer fills it (or hardware assists,
        per the prototype's DMA checksum engines).
        """
        if self.state is TcpState.CLOSED and desc.kind != "rst":
            return None
        now = self.sim.now
        payload: Payload = EMPTY

        if desc.kind == "rst":
            return TCPHeader(self.tuple.local.port, self.tuple.remote.port,
                             seq=self.snd_nxt, ack=self.rcv_nxt,
                             flags=RST | ACK), payload

        # Accumulate every field in locals and construct the header once
        # at the end: assignments after construction each run the cache-
        # invalidating __setattr__.
        mss: Optional[int] = None
        wscale: Optional[int] = None
        sack_permitted = False
        ts_val: Optional[int] = None
        ts_ecr: Optional[int] = None
        sack_blocks: Optional[List[Tuple[int, int]]] = None

        if desc.kind == "probe":
            # Classic persist probe: one garbage byte the receiver already
            # acked; it gets trimmed and answered with a window-bearing ACK.
            seq = seq_add(self.snd_una, -1 & 0xFFFFFFFF)
            payload = ZeroPayload(1)
            flags = ACK
        elif desc.kind == "data":
            chunk = desc.chunk
            assert chunk is not None
            seq = chunk.seq
            payload = chunk.payload
            flags = 0
            if chunk.syn:
                flags |= SYN
                if self.config.use_sack and self.config.reassembly:
                    sack_permitted = True
                if self.config.ecn:
                    if self.state is TcpState.SYN_SENT:
                        flags |= ECE | CWR          # RFC 3168 ECN-setup SYN
                    elif self.ecn_ok:
                        flags |= ECE                # ECN-setup SYN|ACK
                mss = self.config.mss
                if self.config.use_window_scaling and (
                        self.state is TcpState.SYN_SENT or self.ws_ok):
                    wscale = self.config.wscale_offer()
                if self.config.use_timestamps and (
                        self.state is TcpState.SYN_SENT or self.ts_ok):
                    pass  # timestamps added below
            if chunk.fin:
                flags |= FIN
            if payload.length:
                flags |= PSH
                if self._cwr_pending and self.ecn_ok:
                    flags |= CWR
                    self._cwr_pending = False
            if desc.retransmit:
                chunk.retransmits += 1
                self.stats.retransmitted_segs += 1
                rec = obs.RECORDER
                if rec is not None:
                    rec.event("tcp", "tcp.retransmit", track="tcp",
                              seq=chunk.seq, port=self.tuple.local.port)
                    rec.metrics.counter("tcp.retransmitted_segs").add()
                self._rtt_probe = None  # Karn's rule
            else:
                chunk.sent_at = now
                if self._rtt_probe is None and chunk.seq_len > 0:
                    self._rtt_probe = (chunk.end, now)
        else:  # pure ack
            seq = self.snd_nxt
            flags = ACK
            self.stats.acks_out += 1

        ack = 0
        if self.irs is not None:
            flags |= ACK
            ack = self.rcv_nxt
        if self._ecn_echo and self.ecn_ok and not (flags & SYN):
            flags |= ECE

        window = self._advertisable_window()
        wnd_field = min(0xFFFF, window >> self.rcv_wscale)
        edge = seq_add(self.rcv_nxt, wnd_field << self.rcv_wscale)
        if seq_gt(edge, self.rcv_adv):
            self.rcv_adv = edge

        if self.ts_ok or (desc.kind == "data" and desc.chunk is not None
                          and desc.chunk.syn and self.config.use_timestamps):
            ts_val = self._ts_now()
            ts_ecr = self.ts_recent if self.irs is not None else 0

        if self.sack_ok and self._reasm and not (flags & SYN):
            sack_blocks = self._sack_blocks()
            self.stats.sack_blocks_out += 1

        # Any segment we emit acknowledges everything received so far, but
        # explicitly requested ACKs (dup ACKs, window updates) each go out
        # on their own — fast retransmit needs one ACK per trigger.
        self._ack_pending = False
        self._segs_unacked = 0
        self._ack_credit = max(0, self._ack_credit - 1)
        self._delack_timer.cancel()

        self.stats.segs_out += 1
        self.stats.bytes_out += payload.length
        if desc.kind == "data" and not self._rto_timer.armed and self._retx:
            self._rto_timer.start(self.rtt.current_rto())
        hdr = TCPHeader(self.tuple.local.port, self.tuple.remote.port,
                        seq=seq, ack=ack, flags=flags, window=wnd_field,
                        mss=mss, wscale=wscale, sack_permitted=sack_permitted,
                        ts_val=ts_val, ts_ecr=ts_ecr, sack_blocks=sack_blocks)
        return hdr, payload

    def _ts_now(self) -> int:
        return int(self.sim.now / self.config.ts_clock_granularity) & TS_MASK

    # ------------------------------------------------------------------
    # ACK scheduling
    # ------------------------------------------------------------------

    def _request_ack(self, immediate: bool, coalesce: bool = False) -> None:
        """Ask for an outgoing ACK.

        ``coalesce=True`` marks requests whose information rides on any
        ACK (window updates, delayed-ACK thresholds): they fold into an
        already-owed ACK.  Protocol-significant ACKs (duplicate ACKs for
        fast retransmit, out-of-window responses) must each go out.
        """
        self._ack_pending = True
        if immediate or not self.config.delack_segments:
            if not (coalesce and self._ack_credit > 0):
                self._emit_ack()
            return
        self._segs_unacked += 1
        if self._segs_unacked >= self.config.delack_segments:
            if self._ack_credit > 0:
                self._segs_unacked = 0   # the owed ACK covers us
            else:
                self._emit_ack()
        else:
            self._delack_timer.start_if_idle(self.config.delack_timeout)

    def _emit_ack(self) -> None:
        self._ack_credit += 1
        self._segs_unacked = 0
        self.output_queue.append(SegDescriptor("ack"))
        self.ctx.output_ready(self)

    def _on_delack(self) -> None:
        if self._ack_pending:
            self._emit_ack()

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _on_rto(self) -> None:
        if not self._retx:
            return
        self.stats.rto_timeouts += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("tcp", "tcp.rto", track="tcp",
                      port=self.tuple.local.port)
            rec.metrics.counter("tcp.rto_timeouts").add()
        self.rtt.on_timeout()
        self.cc.on_retransmission_timeout(self.flight_size)
        self._rtt_probe = None
        for chunk in self._retx:
            chunk.sacked = False
        chunk = self._retx[0]
        limit = self.config.syn_retries if chunk.syn else MAX_DATA_RETRIES
        if chunk.retransmits >= limit:
            exc = ConnectionReset(
                f"{self.tuple}: gave up after {chunk.retransmits} retransmissions")
            self._teardown(notify_closed=False)
            self.ctx.on_reset(self, exc)
            return
        self.output_queue.append(SegDescriptor("data", chunk=chunk, retransmit=True))
        self.ctx.output_ready(self)
        self._rto_timer.start(self.rtt.current_rto())

    def _on_keepalive(self) -> None:
        """RFC 1122 §4.2.3.6 keepalive: probe an idle peer; give up after
        ``keepalive_probes`` silent intervals (extension; off by default,
        like the prototype)."""
        if self.state not in SYNCHRONIZED_STATES or \
                self.config.keepalive_idle is None:
            return
        idle = self.sim.now - self._last_activity
        if idle < self.config.keepalive_idle:
            self._keepalive_timer.start(self.config.keepalive_idle - idle)
            return
        if self._keepalive_failures >= self.config.keepalive_probes:
            exc = ConnectionReset(f"{self.tuple}: keepalive timeout")
            self._teardown(notify_closed=False)
            self.ctx.on_reset(self, exc)
            return
        self._keepalive_failures += 1
        self.stats.window_probes += 1          # same probe machinery
        self.output_queue.append(SegDescriptor("probe"))
        self.ctx.output_ready(self)
        self._keepalive_timer.start(self.config.keepalive_interval)

    def _on_time_wait_done(self) -> None:
        self._teardown(notify_closed=True)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def handle_segment(self, hdr: TCPHeader, payload: Payload,
                       ce: bool = False) -> None:
        """Full RFC 793 §3.9 segment-arrives processing.

        ``ce`` reports an IP-layer Congestion Experienced mark (RFC 3168).
        """
        self.stats.segs_in += 1
        self._last_activity = self.sim.now
        self._keepalive_failures = 0
        if self.config.keepalive_idle is not None \
                and self.state in SYNCHRONIZED_STATES:
            self._keepalive_timer.start(self.config.keepalive_idle)
        if ce and self.ecn_ok and payload.length:
            self._ecn_echo = True        # echo ECE until the sender CWRs
        if self.ecn_ok and hdr.flag(CWR):
            self._ecn_echo = False
        if self.state is TcpState.CLOSED:
            return
        if self.state is TcpState.SYN_SENT:
            self._handle_syn_sent(hdr, payload)
            return

        seg_len = payload.length + (1 if hdr.flag(SYN) else 0) \
            + (1 if hdr.flag(FIN) else 0)

        if not self._segment_acceptable(hdr.seq, seg_len):
            if payload.length and seq_le(seq_add(hdr.seq, payload.length),
                                         self.rcv_nxt):
                self.stats.duplicate_data_segs += 1
            if not hdr.flag(RST):
                self._request_ack(immediate=True)
            return

        if hdr.flag(RST):
            exc = ConnectionReset(f"{self.tuple}: connection reset by peer")
            self._teardown(notify_closed=False)
            self.ctx.on_reset(self, exc)
            return

        if hdr.flag(SYN) and self.state is not TcpState.SYN_RCVD:
            # SYN in window in a synchronized state: blow up (RFC 793).
            self.output_queue.append(SegDescriptor("rst"))
            self.ctx.output_ready(self)
            exc = ConnectionReset(f"{self.tuple}: unexpected SYN")
            self._teardown(notify_closed=False)
            self.ctx.on_reset(self, exc)
            return

        if not hdr.flag(ACK):
            return

        # Header-prediction accounting (the fast path of [32] §28; the
        # firmware's cost model keys off the same data/ack distinction).
        if (self.state is TcpState.ESTABLISHED
                and not hdr.flags & (SYN | FIN | RST | URG)
                and hdr.seq == self.rcv_nxt):
            if payload.length:
                self.stats.fastpath_data += 1
            elif seq_ge(hdr.ack, self.snd_una):
                self.stats.fastpath_ack += 1
            else:
                self.stats.slowpath += 1
        else:
            self.stats.slowpath += 1

        # RFC 1323 ts_recent maintenance.
        if self.ts_ok and hdr.ts_val is not None and seq_le(hdr.seq, self.rcv_nxt):
            if (hdr.ts_val - self.ts_recent) & TS_MASK < 0x80000000:
                self.ts_recent = hdr.ts_val

        if self.state is TcpState.SYN_RCVD:
            if seq_between(self.snd_una, seq_add(hdr.ack, -1 & 0xFFFFFFFF),
                           self.snd_nxt):
                self.state = TcpState.ESTABLISHED
                self._update_send_window(hdr, force=True)
                self.ctx.on_established(self)
            else:
                self.output_queue.append(SegDescriptor("rst"))
                self.ctx.output_ready(self)
                return

        self._process_ack(hdr, payload)

        if payload.length and self.state in DATA_RECV_STATES:
            self._process_data(hdr, payload)
        elif payload.length:
            self.stats.duplicate_data_segs += 1
            self._request_ack(immediate=True)

        if hdr.flag(FIN):
            self._process_fin(hdr, payload)

        self._try_send()

    # -- SYN_SENT ---------------------------------------------------------

    def _handle_syn_sent(self, hdr: TCPHeader, payload: Payload) -> None:
        if hdr.flag(ACK) and not seq_between(
                self.snd_una, seq_add(hdr.ack, -1 & 0xFFFFFFFF), self.snd_nxt):
            return  # unacceptable ACK
        if hdr.flag(RST):
            if hdr.flag(ACK):
                from ...errors import ConnectionRefused
                exc = ConnectionRefused(f"{self.tuple}: connection refused")
                self._teardown(notify_closed=False)
                self.ctx.on_reset(self, exc)
            return
        if not hdr.flag(SYN):
            return
        self._record_peer_options(hdr, passive=False)
        self.irs = hdr.seq
        self.rcv_nxt = seq_add(hdr.seq, 1)
        self.ts_recent = hdr.ts_val or 0
        if hdr.flag(ACK):
            self._ack_advance(hdr.ack)
            self.state = TcpState.ESTABLISHED
            self._update_send_window(hdr, force=True)
            self._request_ack(immediate=True)
            if self.config.keepalive_idle is not None:
                self._keepalive_timer.start(self.config.keepalive_idle)
            self.ctx.on_established(self)
            self._try_send()
        else:
            # Simultaneous open.
            self.state = TcpState.SYN_RCVD
            self._request_ack(immediate=True)

    def _record_peer_options(self, syn: TCPHeader, passive: bool) -> None:
        self.peer_mss = syn.mss if syn.mss is not None else 536
        if self.config.ecn:
            if passive and syn.flag(ECE) and syn.flag(CWR):
                self.ecn_ok = True       # client offered ECN; we accept
            elif not passive and syn.flag(ECE) and not syn.flag(CWR):
                self.ecn_ok = True       # SYN|ACK accepted our offer
        self.cc.mss = min(self.cc.mss, self.peer_mss)
        if self.config.use_window_scaling and syn.wscale is not None:
            self.ws_ok = True
            self.snd_wscale = min(syn.wscale, 14)
            self.rcv_wscale = self.config.wscale_offer()
        if self.config.use_timestamps and syn.ts_val is not None:
            self.ts_ok = True
        if self.config.use_sack and self.config.reassembly \
                and syn.sack_permitted:
            self.sack_ok = True

    # -- acceptance -----------------------------------------------------------

    def _segment_acceptable(self, seg_seq: int, seg_len: int) -> bool:
        wnd = self._advertisable_window()
        if seg_len == 0:
            if wnd == 0:
                return seg_seq == self.rcv_nxt
            return seq_between(self.rcv_nxt, seg_seq, seq_add(self.rcv_nxt, wnd))
        if wnd == 0:
            return False
        end = seq_add(seg_seq, seg_len - 1)
        return (seq_between(self.rcv_nxt, seg_seq, seq_add(self.rcv_nxt, wnd))
                or seq_between(self.rcv_nxt, end, seq_add(self.rcv_nxt, wnd)))

    # -- ACK processing -----------------------------------------------------

    def _process_ack(self, hdr: TCPHeader, payload: Payload) -> None:
        ack = hdr.ack
        if seq_gt(ack, self.snd_nxt):
            self._request_ack(immediate=True)   # ack of unsent data
            return

        if hdr.sack_blocks and self.sack_ok:
            self._apply_sack(hdr.sack_blocks)

        is_dup = (ack == self.snd_una and self._retx
                  and payload.length == 0
                  and not hdr.flags & (SYN | FIN)
                  and (hdr.window << self.snd_wscale) == self.snd_wnd)
        if payload.length == 0 and not hdr.flags & (SYN | FIN):
            self.stats.pure_acks_in += 1

        if is_dup:
            self.stats.dup_acks_in += 1
            if self.cc.on_duplicate_ack(self.flight_size):
                self.cc.recovery_point = self.snd_nxt
                self._fast_retransmit()
            elif self.cc.in_recovery:
                if self.sack_ok:
                    # SACK recovery: refill each hole as dup ACKs arrive.
                    self._sack_retransmit_next()
                self._try_send()  # inflated window may allow new data
            return

        if hdr.flag(ECE) and self.ecn_ok and self._retx:
            # React once per window: only an ECE acking data sent *after*
            # the previous reaction (which carried CWR) counts as fresh
            # congestion (RFC 3168 §6.1.2).
            if self._ecn_reacted_at is None or \
                    seq_gt(hdr.ack, self._ecn_reacted_at):
                self.cc.on_ecn_signal(self.flight_size)
                self._cwr_pending = True
                self._ecn_reacted_at = self.snd_nxt
                rec = obs.RECORDER
                if rec is not None:
                    rec.metrics.counter("tcp.ecn_reductions").add()

        if seq_gt(ack, self.snd_una):
            acked = seq_sub(ack, self.snd_una)
            self.rtt.on_new_ack()
            # RTT sample (Karn: probe cleared on any retransmission).
            if self._rtt_probe and seq_ge(ack, self._rtt_probe[0]):
                self.rtt.sample(self.sim.now - self._rtt_probe[1])
                self._rtt_probe = None
            if self.cc.in_recovery:
                if seq_ge(ack, self.cc.recovery_point):
                    self.cc.exit_recovery()
                else:
                    self.cc.on_recovery_ack()
                    if self.sack_ok:
                        self._sack_retransmit_next()
            else:
                self.cc.on_ack_of_new_data(acked, self.flight_size)
            self._ack_advance(ack)
            if self._retx:
                self._rto_timer.start(self.rtt.current_rto())
            else:
                self._rto_timer.cancel()

        self._update_send_window(hdr)

    def _ack_advance(self, ack: int) -> None:
        self.snd_una = ack
        completed: List[int] = []
        freed = 0
        while self._retx and seq_le(self._retx[0].end, ack):
            chunk = self._retx.popleft()
            freed += chunk.payload.length
            if chunk.msg_id is not None:
                completed.append(chunk.msg_id)
            if chunk.fin:
                self._our_fin_acked()
            if chunk.syn and self.state is TcpState.SYN_RCVD:
                self.state = TcpState.ESTABLISHED
                self.ctx.on_established(self)
        # Partial ack of the head chunk (stream mode): trim delivered bytes.
        if self._retx and seq_lt(self._retx[0].seq, ack):
            chunk = self._retx[0]
            cut = seq_sub(ack, chunk.seq)
            if 0 < cut <= chunk.payload.length:
                chunk.payload = chunk.payload.slice(cut, chunk.payload.length - cut)
                chunk.seq = ack
                freed += cut
        for msg_id in completed:
            self.ctx.on_send_complete(self, msg_id)
        if freed and not self.config.message_mode:
            self.ctx.on_send_buffer_space(self)

    def _update_send_window(self, hdr: TCPHeader, force: bool = False) -> None:
        wnd = hdr.window << self.snd_wscale
        if force or seq_lt(self.snd_wl1, hdr.seq) or (
                self.snd_wl1 == hdr.seq and seq_le(self.snd_wl2, hdr.ack)):
            old = self.snd_wnd
            self.snd_wnd = wnd
            self.snd_wl1 = hdr.seq
            self.snd_wl2 = hdr.ack
            if old == 0 and wnd > 0:
                self._persist_timer.cancel()

    def _fast_retransmit(self) -> None:
        if not self._retx:
            return
        self.stats.fast_retransmits += 1
        rec = obs.RECORDER
        if rec is not None:
            rec.event("tcp", "tcp.fast_retransmit", track="tcp",
                      port=self.tuple.local.port)
            rec.metrics.counter("tcp.fast_retransmits").add()
        self._rtt_probe = None
        self.output_queue.append(
            SegDescriptor("data", chunk=self._retx[0], retransmit=True))
        self.ctx.output_ready(self)
        self._rto_timer.start(self.rtt.current_rto())

    def _our_fin_acked(self) -> None:
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._teardown(notify_closed=True)

    # -- data & FIN ----------------------------------------------------------

    def _process_data(self, hdr: TCPHeader, payload: Payload) -> None:
        seg_seq = hdr.seq
        data = payload
        # Trim anything already received.
        if seq_lt(seg_seq, self.rcv_nxt):
            skip = seq_sub(self.rcv_nxt, seg_seq)
            if skip >= data.length:
                self.stats.duplicate_data_segs += 1
                self._request_ack(immediate=True)
                return
            data = data.slice(skip, data.length - skip)
            seg_seq = self.rcv_nxt
            self.stats.duplicate_data_segs += 1

        if seg_seq != self.rcv_nxt:
            self.stats.ooo_segments += 1
            if self.config.reassembly:
                self._reasm_insert(seg_seq, data, hdr.flag(FIN))
                self.stats.ooo_queued += 1
            else:
                self.stats.ooo_dropped += 1
            self._request_ack(immediate=True)  # dup ACK -> fast retransmit
            return

        self._accept_data(data, hdr.flag(PSH))
        fin_seen = self._reasm_drain()
        if fin_seen:
            # FIN was queued out of order and is now in sequence.
            self._fin_advance()
            return
        self._request_ack(immediate=hdr.flag(FIN))

    def _accept_data(self, data: Payload, psh: bool) -> None:
        self.rcv_nxt = seq_add(self.rcv_nxt, data.length)
        self.stats.bytes_in += data.length
        if not self._credit_mode:
            self._rcv_buffered += data.length
        self.ctx.deliver(self, data, psh)

    def _sack_blocks(self):
        """Merge the out-of-order queue into up to 3 SACK blocks
        (most recently received data would come first in a full stack;
        we report in sequence order, which peers accept)."""
        blocks = []
        for seq, data, _fin in self._reasm:
            end = seq_add(seq, data.length)
            if blocks and blocks[-1][1] == seq:
                blocks[-1] = (blocks[-1][0], end)
            else:
                blocks.append((seq, end))
        return blocks[:3]

    def _apply_sack(self, blocks) -> None:
        """Mark retransmission-queue chunks covered by SACK blocks."""
        for chunk in self._retx:
            if chunk.sacked or chunk.seq_len == 0:
                continue
            for left, right in blocks:
                if seq_ge(chunk.seq, left) and seq_le(chunk.end, right):
                    chunk.sacked = True
                    break

    def _sack_retransmit_next(self) -> bool:
        """Queue the first *lost* hole for retransmission.

        A chunk counts as lost (RFC 6675 IsLost, simplified) only when
        data after it has been SACKed — merely-in-flight data must not
        be retransmitted speculatively.
        """
        any_sacked_after = False
        for chunk in reversed(self._retx):
            if chunk.sacked:
                any_sacked_after = True
                chunk._lost_hint = any_sacked_after
            else:
                chunk._lost_hint = any_sacked_after
        for chunk in self._retx:
            if chunk.sacked or not getattr(chunk, "_lost_hint", False):
                continue
            if chunk.retransmits > 0:
                # Already refilled once this recovery; a re-loss is the
                # RTO's problem (conservative RFC 2018 behaviour).
                continue
            already = any(d.kind == "data" and d.chunk is chunk
                          and d.retransmit for d in self.output_queue)
            if already:
                return False
            self.stats.sack_retransmits += 1
            self.output_queue.append(
                SegDescriptor("data", chunk=chunk, retransmit=True))
            self.ctx.output_ready(self)
            return True
        return False

    def _reasm_insert(self, seq: int, data: Payload, fin: bool) -> None:
        """Insert into the out-of-order queue (extension feature)."""
        self._reasm.append((seq, data, fin))
        self._reasm.sort(key=lambda item: seq_sub(item[0], self.rcv_nxt))

    def _reasm_drain(self) -> bool:
        """Deliver any queued segments now in order; True if FIN reached."""
        fin_reached = False
        while self._reasm:
            seq, data, fin = self._reasm[0]
            if seq_gt(seq, self.rcv_nxt):
                break
            self._reasm.pop(0)
            if seq_lt(seq, self.rcv_nxt):
                skip = seq_sub(self.rcv_nxt, seq)
                if skip >= data.length:
                    if fin:
                        fin_reached = True
                    continue
                data = data.slice(skip, data.length - skip)
            self._accept_data(data, psh=True)
            if fin:
                fin_reached = True
        return fin_reached

    def _process_fin(self, hdr: TCPHeader, payload: Payload) -> None:
        fin_seq = seq_add(hdr.seq, payload.length)
        if fin_seq != self.rcv_nxt:
            if self.config.reassembly and seq_gt(fin_seq, self.rcv_nxt):
                return  # already queued with its data
            self._request_ack(immediate=True)
            return
        self._fin_advance()

    def _fin_advance(self) -> None:
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)
        self._request_ack(immediate=True)
        if self.state in (TcpState.ESTABLISHED, TcpState.SYN_RCVD):
            self.state = TcpState.CLOSE_WAIT
            self.ctx.on_remote_fin(self)
        elif self.state is TcpState.FIN_WAIT_1:
            # Our FIN unacked yet: simultaneous close.
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        elif self.state is TcpState.TIME_WAIT:
            self._time_wait_timer.start(2 * self.config.msl)

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._rto_timer.cancel()
        self._persist_timer.cancel()
        self._time_wait_timer.start(2 * self.config.msl)

    def __repr__(self):
        return f"<TcpConnection {self.tuple} {self.state.value}>"
