"""The IP layer: routing, header construction/validation, link framing.

Address resolution follows the prototype: "Address resolution is provided
by a static table that maps IPv6 addresses to switch routes" (§4.1).  For
the Ethernet baseline the static table maps IP → MAC instead of running
ARP/ND.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ChecksumError, ConfigError, RouteError
from .addresses import Endpoint, IPAddress, IPv4Address, IPv6Address, MacAddress
from .checksum import pseudo_header_v4, pseudo_header_v6
from .headers.ip import IPv4Header, IPv6Header, PROTO_TCP, PROTO_UDP
from .headers.link import (ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetHeader,
                           MyrinetHeader)
from .headers.transport import (TCPHeader, UDPHeader, tcp_fill_checksum,
                                tcp_verify_checksum, udp_fill_checksum,
                                udp_verify_checksum)
from .packet import Packet, Payload


@dataclass
class RouteEntry:
    """How to reach one destination: the egress interface plus link framing."""

    iface: object                                 # duck-typed NIC port
    next_mac: Optional[MacAddress] = None         # Ethernet next hop
    source_route: List[int] = field(default_factory=list)  # Myrinet ports


@dataclass
class ParsedSegment:
    """A validated transport segment handed up from the IP layer."""

    proto: int
    src: Endpoint
    dst: Endpoint
    transport: object            # TCPHeader | UDPHeader
    payload: Payload
    checksum_ok: bool
    ce: bool = False             # IP-layer Congestion Experienced mark


class IpModule:
    """Builds and parses IP packets over a static route table."""

    def __init__(self, name: str = "ip"):
        self.name = name
        self.local_addrs: set = set()
        self.routes: Dict[IPAddress, RouteEntry] = {}
        self._ident = itertools.count(1)
        self.sent = 0
        self.received = 0
        self.dropped_not_ours = 0
        self.dropped_bad = 0

    def add_local(self, addr: IPAddress) -> None:
        self.local_addrs.add(addr)

    def add_route(self, dst: IPAddress, entry: RouteEntry) -> None:
        self.routes[dst] = entry

    def route_for(self, dst: IPAddress) -> RouteEntry:
        entry = self.routes.get(dst)
        if entry is None:
            raise RouteError(f"{self.name}: no route to {dst!r}")
        return entry

    # -- output ----------------------------------------------------------

    def build(self, src_ip: IPAddress, dst_ip: IPAddress, transport,
              payload: Payload, hop_limit: int = 64, ecn: int = 0) -> Packet:
        """Construct a link-ready packet: fills transport checksum, IP and
        link headers, and the source route / MAC framing."""
        entry = self.route_for(dst_ip)
        proto = PROTO_TCP if isinstance(transport, TCPHeader) else PROTO_UDP
        upper_len = transport.header_len() + payload.length

        if isinstance(src_ip, IPv6Address):
            if not isinstance(dst_ip, IPv6Address):
                raise ConfigError("mixed IP versions")
            psum = pseudo_header_v6(src_ip.packed, dst_ip.packed, upper_len, proto)
            ip_hdr = IPv6Header(src_ip, dst_ip, next_header=proto,
                                payload_length=upper_len, hop_limit=hop_limit)
            ip_hdr.ecn = ecn
            ethertype = ETHERTYPE_IPV6
        else:
            psum = pseudo_header_v4(src_ip.packed, dst_ip.packed, upper_len, proto)
            ip_hdr = IPv4Header(src_ip, dst_ip, protocol=proto,
                                total_length=20 + upper_len,
                                identification=next(self._ident) & 0xFFFF,
                                ttl=hop_limit)
            ip_hdr.ecn = ecn
            ethertype = ETHERTYPE_IPV4

        if proto == PROTO_TCP:
            tcp_fill_checksum(transport, psum, payload)
        else:
            udp_fill_checksum(transport, psum, payload)

        pkt = Packet([ip_hdr, transport], payload)
        if entry.source_route:
            pkt.push(MyrinetHeader(route=list(entry.source_route),
                                   ptype=ethertype))
            pkt.route = list(entry.source_route)
        elif entry.next_mac is not None:
            src_mac = getattr(entry.iface, "mac", MacAddress.from_index(0))
            pkt.push(EthernetHeader(entry.next_mac, src_mac, ethertype))
        else:
            raise ConfigError(f"{self.name}: route to {dst_ip!r} has no framing")

        mtu = getattr(entry.iface, "mtu", None)
        if mtu is not None and pkt.wire_size - pkt.headers[0].header_len() > mtu:
            raise ConfigError(
                f"{self.name}: {pkt.wire_size}B packet exceeds MTU {mtu} "
                "(end-to-end fragmentation is out of scope, as in the paper)")
        self.sent += 1
        return pkt

    def send(self, src_ip: IPAddress, dst_ip: IPAddress, transport,
             payload: Payload, hop_limit: int = 64, ecn: int = 0) -> None:
        entry = self.route_for(dst_ip)
        pkt = self.build(src_ip, dst_ip, transport, payload, hop_limit, ecn)
        entry.iface.enqueue_tx(pkt)

    # -- input ------------------------------------------------------------

    def parse(self, pkt: Packet, verify_checksum: bool = True
              ) -> Optional[ParsedSegment]:
        """Strip link + IP headers, validate, and demux the transport header.

        Returns None for packets not addressed to this stack (or malformed
        ones); counters record why.
        """
        top = pkt.top()
        if isinstance(top, (EthernetHeader, MyrinetHeader)):
            pkt.pop()
            top = pkt.top()

        ce = False
        if isinstance(top, IPv6Header):
            ip6 = pkt.pop()
            if ip6.dst not in self.local_addrs:
                self.dropped_not_ours += 1
                return None
            src_ip, dst_ip = ip6.src, ip6.dst
            proto = ip6.next_header
            upper_len = ip6.payload_length
            ce = ip6.ecn == 0b11
            psum = pseudo_header_v6(src_ip.packed, dst_ip.packed, upper_len, proto)
        elif isinstance(top, IPv4Header):
            ip4 = pkt.pop()
            if ip4.dst not in self.local_addrs:
                self.dropped_not_ours += 1
                return None
            src_ip, dst_ip = ip4.src, ip4.dst
            proto = ip4.protocol
            upper_len = ip4.total_length - 20
            ce = ip4.ecn == 0b11
            psum = pseudo_header_v4(src_ip.packed, dst_ip.packed, upper_len, proto)
        else:
            self.dropped_bad += 1
            return None

        transport = pkt.top()
        payload = pkt.payload
        if proto == PROTO_TCP and isinstance(transport, TCPHeader):
            ok = (not verify_checksum) or tcp_verify_checksum(transport, psum, payload)
        elif proto == PROTO_UDP and isinstance(transport, UDPHeader):
            ok = (not verify_checksum) or udp_verify_checksum(transport, psum, payload)
        else:
            self.dropped_bad += 1
            return None
        if pkt.corrupted:
            ok = False
        if not ok:
            self.dropped_bad += 1
        self.received += 1
        return ParsedSegment(
            proto=proto,
            src=Endpoint(src_ip, transport.src_port),
            dst=Endpoint(dst_ip, transport.dst_port),
            transport=transport,
            payload=payload,
            checksum_ok=ok,
            ce=ce)
