"""State inspectors: human-readable reports on connections, NICs, fabrics.

These read simulation state the way `netstat`/`ethtool -S` read a real
system — purely observational.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List

from ..net.tcp import TcpConnection


def _canon(value):
    """JSON-able canonical form: bytes → hex strings, tuples → lists,
    dict keys → strings.  Floats pass through — the simulator is
    deterministic, so their reprs are bit-stable."""
    if isinstance(value, bytes):
        return "0x" + value.hex()
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in value.items()}
    return value


def canonical_json(value) -> str:
    """Canonical (sorted-key, no-whitespace) JSON rendering of ``value``."""
    return json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))


def stable_digest(value) -> str:
    """Short content hash of ``value``'s canonical JSON form.

    Stable across processes and Python invocations (unlike ``hash``),
    which is what golden-baseline comparison needs.
    """
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()[:16]


def cqe_stream_digest(flows: Dict[int, dict]) -> Dict[str, str]:
    """Per-flow digest over the full flow record — CQE streams (wr_id,
    qp_num, opcode, status, byte_len, timestamp), byte counters, verify
    counters, RTT samples.  Keyed by flow id so a drift report can name
    the diverging flow."""
    return {str(fid): stable_digest(flows[fid]) for fid in sorted(flows)}


def wire_trace_digest(wire: Dict[str, list]) -> Dict[str, str]:
    """Per-host digest over the wiretap records (timestamp, direction,
    on-the-wire bytes)."""
    return {host: stable_digest(wire[host]) for host in sorted(wire)}


def metrics_snapshot(dump: Dict[str, dict]) -> Dict[str, dict]:
    """Scalar view of a :meth:`MetricsRegistry.dump` for golden
    comparison: counters by value, gauges by extremes (a global
    last-write does not survive sharding), histograms by count/sum plus
    a digest of the sorted sample multiset.  The scalar fields are what
    tolerance bands apply to."""
    out: Dict[str, dict] = {}
    for name in sorted(dump):
        entry = dump[name]
        kind = entry["type"]
        if kind == "counter":
            out[name] = {"type": "counter", "value": entry["value"]}
        elif kind == "gauge":
            out[name] = {"type": "gauge", "min": entry["min"],
                         "max": entry["max"]}
        else:
            samples = sorted(entry["samples"])
            out[name] = {"type": "histogram", "count": len(samples),
                         "sum": sum(samples),
                         "digest": stable_digest(samples)}
    return out


def merge_metrics_dumps(dumps: Iterable[Dict[str, dict]]):
    """Merge per-shard :meth:`MetricsRegistry.dump` exports into one
    registry (`repro.cluster`: each worker process meters its own shard).

    * counters sum;
    * histograms concatenate exactly — every sample survives, so
      percentiles over the merged registry are exact order statistics of
      the union (shard concatenation order differs from the global
      chronological order, so compare sample *multisets*, not lists);
    * gauges keep the global min/max; ``value`` (last-write-wins) is
      taken from the last shard that set one, since a true global "last"
      does not survive sharding.
    """
    from ..obs.metrics import MetricsRegistry
    merged = MetricsRegistry()
    for dump in dumps:
        for name in sorted(dump):
            entry = dump[name]
            kind = entry["type"]
            if kind == "counter":
                merged.counter(name).add(entry["value"])
            elif kind == "gauge":
                gauge = merged.gauge(name)
                for bound, pick in (("min", min), ("max", max)):
                    val = entry[bound]
                    if val is not None:
                        prev = getattr(gauge, bound)
                        setattr(gauge, bound,
                                val if prev is None else pick(prev, val))
                if entry["value"] is not None:
                    gauge.value = entry["value"]
            elif kind == "histogram":
                hist = merged.histogram(name)
                hist.samples.extend(entry["samples"])
                hist._sorted = None
            else:
                raise ValueError(f"unknown instrument type {kind!r}")
    return merged


def collective_records(flows: Dict[int, dict]) -> Dict[int, dict]:
    """Extract ``rank -> record`` from a cluster result's flow map.

    Collective rank records live under ``COLLECTIVE_FLOW_BASE + rank``
    so they can share the map with ordinary flows.
    """
    from ..collectives.group import COLLECTIVE_FLOW_BASE
    return {fid - COLLECTIVE_FLOW_BASE: rec for fid, rec in flows.items()
            if fid >= COLLECTIVE_FLOW_BASE}


def collective_report(records: Dict[int, dict]) -> str:
    """Per-rank CollectiveStats table for one collective run.

    ``records`` maps rank to the record written by the rank driver
    (:func:`collective_records` extracts it from a cluster result).
    Surfaces the honest accounting: schedule steps taken, bytes handed
    to the transport split by phase, and the post-to-completion
    sim-clock latency each rank observed.
    """
    if not records:
        return "collective: no rank records"
    first = records[min(records)]
    lines = [
        f"collective: {first['algo']} ({first['variant']}) "
        f"engine={first['engine']} world={first['world']}",
        f"{'rank':>6} {'status':>10} {'steps':>6} {'bytes':>10} "
        f"{'wall us':>12}  digest",
    ]
    phase_totals: Dict[str, int] = {}
    for rank in sorted(records):
        rec = records[rank]
        stats = rec["stats"]
        lines.append(
            f"{rank:>6} {rec['status']:>10} {stats['steps']:>6} "
            f"{stats['bytes_sent']:>10,} {stats['wall_time_us']:>12,.1f}  "
            f"{rec['result_digest']}")
        for phase, nbytes in stats["phase_bytes"].items():
            phase_totals[phase] = phase_totals.get(phase, 0) + nbytes
    for phase, nbytes in sorted(phase_totals.items()):
        lines.append(f"  phase {phase:16s} {nbytes:>12,} bytes")
    return "\n".join(lines)


def connection_report(conn: TcpConnection) -> str:
    """A netstat-style dump of one TCP connection."""
    s = conn.stats
    lines = [
        f"connection {conn.tuple} [{conn.state.value}]",
        f"  snd: una={conn.snd_una} nxt={conn.snd_nxt} wnd={conn.snd_wnd} "
        f"flight={conn.flight_size} unsent={conn.bytes_unsent}",
        f"  rcv: nxt={conn.rcv_nxt} window={conn._advertisable_window()} "
        f"adv_edge={conn.rcv_adv}",
        f"  mss: eff={conn.effective_mss} peer={conn.peer_mss} "
        f"opts: ts={conn.ts_ok} ws={conn.ws_ok} "
        f"(snd<<{conn.snd_wscale}/rcv<<{conn.rcv_wscale}) ecn={conn.ecn_ok}",
        f"  rtt: srtt={conn.rtt.srtt:.1f}us rttvar={conn.rtt.rttvar:.1f}us "
        f"rto={conn.rtt.rto:.0f}us samples={conn.rtt.samples}",
        f"  cc:  cwnd={conn.cc.cwnd} ssthresh={conn.cc.ssthresh} "
        f"{'slow-start' if conn.cc.in_slow_start else 'cong-avoid'}"
        f"{' RECOVERY' if conn.cc.in_recovery else ''}",
        f"  io:  out={s.segs_out} segs/{s.bytes_out}B in={s.segs_in} "
        f"segs/{s.bytes_in}B acks_out={s.acks_out}",
        f"  err: retx={s.retransmitted_segs} fast_rtx={s.fast_retransmits} "
        f"rto={s.rto_timeouts} dupacks={s.dup_acks_in} ooo={s.ooo_segments} "
        f"(dropped {s.ooo_dropped}, queued {s.ooo_queued})",
    ]
    return "\n".join(lines)


def nic_report(nic) -> str:
    """Occupancy + per-stage breakdown for a ProgrammableNic."""
    lines = [
        f"nic {nic.name}: occupancy {nic.occupancy() * 100:.1f}% "
        f"(tx {nic.packets_tx} pkts, rx {nic.packets_rx} pkts, "
        f"doorbells {nic.doorbells_rung})",
    ]
    if nic.dma_faults or nic.stalls_injected or nic.doorbells_dropped:
        lines.append(
            f"  faults: dma_errors {nic.dma_faults}, "
            f"stalls {nic.stalls_injected}, "
            f"doorbells_dropped {nic.doorbells_dropped}"
            f"{' [overflow pending]' if nic.doorbell_overflow else ''}")
    total = sum(nic.cycles.by_stage.values()) or 1.0
    for stage, busy in sorted(nic.cycles.by_stage.items(),
                              key=lambda kv: -kv[1]):
        n = nic.cycles.samples[stage]
        lines.append(f"  {stage:18s} {busy:10.1f}us  ({n:6d} x "
                     f"{busy / n:6.2f}us)  {busy / total * 100:5.1f}%")
    return "\n".join(lines)


def fabric_report(fabric) -> str:
    """Per-link utilization and switch counters for a fabric."""
    lines: List[str] = []
    now = fabric.sim.now or 1.0
    if hasattr(fabric, "switches"):          # MyrinetFabric
        for i, sw in enumerate(fabric.switches):
            lines.append(f"switch {sw.name}: forwarded {sw.forwarded}, "
                         f"dropped(no-route) {sw.dropped_no_route}"
                         f"{_switch_faults(sw)}")
        for name, node in fabric.hosts.items():
            link = node.attachment.link
            d_out = link.direction_from(node.attachment)
            lines.append(
                f"host {name}: tx {d_out.packets_sent} pkts / "
                f"{d_out.bytes_sent}B, util {d_out.utilization(0, now) * 100:.1f}%, "
                f"drops {d_out.packets_dropped}{_direction_faults(d_out)}")
    else:                                     # EthernetFabric
        sw = fabric.switch
        extra = ""
        if sw.red is not None:
            extra = f", RED marked {sw.red_marked} dropped {sw.red_dropped}"
        lines.append(f"switch {sw.name}: forwarded {sw.forwarded}, flooded "
                     f"{sw.flooded}, overflow {sw.dropped_overflow}{extra}"
                     f"{_switch_faults(sw)}")
        for name, attachment in fabric.hosts.items():
            d_out = attachment.link.direction_from(attachment)
            lines.append(
                f"host {name}: tx {d_out.packets_sent} pkts / "
                f"{d_out.bytes_sent}B, util {d_out.utilization(0, now) * 100:.1f}%"
                f"{_direction_faults(d_out)}")
    return "\n".join(lines)


def recovery_report(session) -> str:
    """Health/recovery counters for a RecoveryManager or RecoveryAcceptor.

    Reads the session's ``report()`` dict the way the other inspectors
    read live protocol state; works on either end of a healed session.
    """
    rep = session.report()
    name = getattr(session, "name", "session")
    qp = session.qp
    state = qp.state.name if qp is not None else "DOWN"
    lines = [f"recovery {name}: qp={state}"]
    if "incarnations" in rep:               # manager side
        lines.append(
            f"  session: incarnation {rep['incarnations']}, "
            f"{rep.get('heals', 0)} heals over "
            f"{rep.get('attempts', 0)} attempts "
            f"({rep.get('attempt_timeouts', 0)} timed out), "
            f"unacked {rep.get('unacked', 0)}")
        lines.append(
            f"  wire: {rep.get('wrs_posted', 0)} WRs posted, "
            f"{rep.get('wrs_completed', 0)} completed, "
            f"{rep.get('replayed_wrs', 0)} replayed, "
            f"{rep.get('stale_cqes', 0)} stale CQEs, "
            f"{rep.get('duplicates_dropped', 0)} dups dropped")
        lines.append(
            f"  health: {rep.get('heartbeats_sent', 0)} heartbeats, "
            f"{rep.get('watchdog_escalations', 0)} watchdog escalations, "
            f"{rep.get('qp_failures', 0)} QP failures; "
            f"breaker {rep.get('breaker_state', '?')} "
            f"(opened {rep.get('breaker_opens', 0)}, "
            f"shed {rep.get('breaker_shed', 0)})")
    else:                                   # acceptor side
        lines.append(
            f"  served: {rep.get('accepts', 0)} accepts, "
            f"{rep.get('conn_failures', 0)} connection failures, "
            f"{rep.get('delivered', 0)} delivered, "
            f"{rep.get('duplicates_dropped', 0)} dups dropped, "
            f"{rep.get('replayed_wrs', 0)} responses replayed")
        for sid, sess in rep.get("sessions", {}).items():
            lines.append(
                f"  session {sid}: incarnation {sess['incarnations']}, "
                f"rcv_next {sess['rcv_next']}, "
                f"unacked {sess['unacked']}, "
                f"duplicates {sess['duplicates']}")
    return "\n".join(lines)


def breaker_report(breaker) -> str:
    """One-line state dump of a CircuitBreaker."""
    line = (f"breaker {breaker.name}: {breaker.state.value}, "
            f"{breaker.failures} failures/{breaker.successes} successes "
            f"({breaker.consecutive_failures} consecutive), "
            f"opened {breaker.opens}x, shed {breaker.shed}")
    remaining = breaker.cooldown_remaining
    if remaining > 0:
        line += f", cooldown {remaining:.0f}us remaining"
    return line


def _direction_faults(direction) -> str:
    """Injected-fault counters for one link direction (empty if clean)."""
    if not (direction.packets_duplicated or direction.packets_delayed
            or direction.packets_corrupted):
        return ""
    return (f", faults(dup {direction.packets_duplicated} "
            f"delay {direction.packets_delayed} "
            f"corrupt {direction.packets_corrupted})")


def _switch_faults(switch) -> str:
    """Egress-hook fault counters for a switch (empty if clean)."""
    if not (switch.dropped_fault or switch.duplicated_fault
            or switch.corrupted_fault):
        return ""
    return (f", faults(drop {switch.dropped_fault} "
            f"dup {switch.duplicated_fault} "
            f"corrupt {switch.corrupted_fault})")
