"""Diagnostics: wire taps, connection inspectors, fabric reports."""

from .wiretap import Wiretap, format_packet
from .inspect import (breaker_report, connection_report, fabric_report,
                      nic_report, recovery_report)

__all__ = ["Wiretap", "format_packet", "connection_report", "fabric_report",
           "nic_report", "recovery_report", "breaker_report"]
