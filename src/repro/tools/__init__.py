"""Diagnostics: wire taps, connection inspectors, fabric reports."""

from .wiretap import Wiretap, format_packet
from .inspect import connection_report, fabric_report, nic_report

__all__ = ["Wiretap", "format_packet", "connection_report", "fabric_report",
           "nic_report"]
