"""Wire taps: capture and render packets tcpdump-style.

A :class:`Wiretap` hooks a QPIP NIC, a conventional NIC, or a link
direction and records every packet with its timestamp.  Records render
like::

    1083.4  fd00::1.32768 > fd00::2.9000: Flags [PA], seq 68922:68932,
            ack 116045626, win 2048, length 10
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..net.headers.ip import IPv4Header, IPv6Header
from ..net.headers.transport import (ACK, CWR, ECE, FIN, PSH, RST, SYN,
                                     TCPHeader, UDPHeader)
from ..net.packet import Packet


def _tcp_flags(hdr: TCPHeader) -> str:
    out = []
    for mask, ch in ((SYN, "S"), (FIN, "F"), (RST, "R"), (PSH, "P"),
                     (ACK, "."), (ECE, "E"), (CWR, "W")):
        if hdr.flags & mask:
            out.append(ch)
    return "".join(out) or "none"


def format_packet(pkt: Packet, now: float = 0.0) -> str:
    """One-line, tcpdump-flavoured rendering of a packet."""
    ip = pkt.find(IPv6Header) or pkt.find(IPv4Header)
    tcp = pkt.find(TCPHeader)
    udp = pkt.find(UDPHeader)
    length = pkt.payload.length
    if ip is None:
        return f"{now:10.1f}  <non-IP frame, {pkt.wire_size}B>"
    src, dst = ip.src, ip.dst
    ce = " [CE]" if ip.ecn == 0b11 else ""
    if tcp is not None:
        seq_part = f"seq {tcp.seq}"
        if length:
            seq_part = f"seq {tcp.seq}:{(tcp.seq + length) & 0xFFFFFFFF}"
        opts = []
        if tcp.mss is not None:
            opts.append(f"mss {tcp.mss}")
        if tcp.wscale is not None:
            opts.append(f"wscale {tcp.wscale}")
        if tcp.ts_val is not None:
            opts.append(f"TS val {tcp.ts_val} ecr {tcp.ts_ecr}")
        opt_part = f" <{','.join(opts)}>" if opts else ""
        return (f"{now:10.1f}  {src!r}.{tcp.src_port} > {dst!r}.{tcp.dst_port}: "
                f"Flags [{_tcp_flags(tcp)}], {seq_part}, ack {tcp.ack}, "
                f"win {tcp.window}{opt_part}, length {length}{ce}")
    if udp is not None:
        return (f"{now:10.1f}  {src!r}.{udp.src_port} > {dst!r}.{udp.dst_port}: "
                f"UDP, length {length}{ce}")
    return f"{now:10.1f}  {src!r} > {dst!r}: proto?, length {length}{ce}"


@dataclass
class TapRecord:
    time: float
    direction: str            # 'tx' | 'rx'
    packet: Packet
    line: str = field(default="", repr=False)


class Wiretap:
    """Captures traffic at a NIC without perturbing timing."""

    def __init__(self, sim, capacity: int = 100_000):
        self.sim = sim
        self.capacity = capacity
        self.records: List[TapRecord] = []
        self.dropped_records = 0
        self.filter: Optional[Callable[[Packet], bool]] = None

    # -- attachment points -------------------------------------------------

    def attach_qpip_nic(self, nic) -> None:
        """Tap a ProgrammableNic's wire in both directions."""
        orig_tx = nic.wire_transmit
        orig_rx = nic._on_wire_receive

        def tx(pkt):
            self._record("tx", pkt)
            orig_tx(pkt)

        def rx(pkt, at):
            self._record("rx", pkt)
            orig_rx(pkt, at)

        nic.wire_transmit = tx
        nic.attachment.on_receive = rx

    def attach_dumb_nic(self, nic) -> None:
        """Tap a DumbNic/GmNic at its attachment."""
        orig_rx = nic.attachment.on_receive
        orig_tx = nic.attachment.transmit

        def rx(pkt, at):
            self._record("rx", pkt)
            orig_rx(pkt, at)

        def tx(pkt):
            self._record("tx", pkt)
            orig_tx(pkt)

        nic.attachment.on_receive = rx
        nic.attachment.transmit = tx

    # -- capture ----------------------------------------------------------------

    def _record(self, direction: str, pkt: Packet) -> None:
        if self.filter is not None and not self.filter(pkt):
            return
        if len(self.records) >= self.capacity:
            self.dropped_records += 1
            return
        # The receive path pops headers off the live packet; snapshot the
        # stack now and render eagerly so records stay faithful.
        snapshot = pkt.copy_shallow()
        record = TapRecord(self.sim.now, direction, snapshot)
        record.line = format_packet(snapshot, self.sim.now)
        self.records.append(record)

    # -- inspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def lines(self, direction: Optional[str] = None) -> List[str]:
        return [r.line for r in self.records
                if direction is None or r.direction == direction]

    def tcp_records(self) -> List[TapRecord]:
        return [r for r in self.records
                if r.packet.find(TCPHeader) is not None]

    def count_flag(self, mask: int) -> int:
        return sum(1 for r in self.tcp_records()
                   if r.packet.find(TCPHeader).flags & mask)

    def retransmissions(self) -> int:
        """Count repeated (seq, length>0) transmissions."""
        seen = set()
        retx = 0
        for r in self.records:
            if r.direction != "tx":
                continue
            tcp = r.packet.find(TCPHeader)
            if tcp is None or r.packet.payload.length == 0:
                continue
            key = (tcp.src_port, tcp.dst_port, tcp.seq)
            if key in seen:
                retx += 1
            seen.add(key)
        return retx

    def dump(self, limit: int = 50) -> str:
        lines = [r.line for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        return "\n".join(lines)

    def write_pcap(self, path: str) -> int:
        """Write the capture as a classic libpcap file (LINKTYPE_RAW for
        bare-IP frames, LINKTYPE_ETHERNET when frames carry Ethernet).
        Myrinet-framed packets are written without their route header.
        Returns the number of packets written."""
        import struct as _struct
        from ..net.headers.link import EthernetHeader, MyrinetHeader
        from ..net.wire import serialize
        ethernet = any(r.packet.find(EthernetHeader) is not None
                       for r in self.records)
        linktype = 1 if ethernet else 101      # EN10MB vs RAW
        count = 0
        with open(path, "wb") as f:
            f.write(_struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, linktype))
            for r in self.records:
                pkt = r.packet.copy_shallow()
                if pkt.headers and isinstance(pkt.headers[0], MyrinetHeader):
                    pkt.pop()                  # no pcap linktype for Myrinet
                raw = serialize(pkt)
                sec = int(r.time // 1_000_000)
                usec = int(r.time % 1_000_000)
                f.write(_struct.pack("<IIII", sec, usec, len(raw), len(raw)))
                f.write(raw)
                count += 1
        return count

    def write_pcapng(self, path: str) -> int:
        """Write the capture as a pcapng file (Wireshark-loadable).

        Same linktype selection and Myrinet-header stripping as
        :meth:`write_pcap`, but with nanosecond-resolution timestamps, so
        sub-microsecond simulated timing survives the export.  Returns
        the number of packets written."""
        from ..net.headers.link import EthernetHeader, MyrinetHeader
        from ..net.wire import serialize
        from ..obs.pcapng import (LINKTYPE_ETHERNET, LINKTYPE_RAW,
                                  write_pcapng)
        ethernet = any(r.packet.find(EthernetHeader) is not None
                       for r in self.records)

        def frames():
            for r in self.records:
                pkt = r.packet.copy_shallow()
                if pkt.headers and isinstance(pkt.headers[0], MyrinetHeader):
                    pkt.pop()              # no pcap linktype for Myrinet
                yield r.time, serialize(pkt)

        return write_pcapng(
            path, frames(),
            linktype=LINKTYPE_ETHERNET if ethernet else LINKTYPE_RAW)
