"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro list
    python -m repro fig3
    python -m repro fig4
    python -m repro mtu
    python -m repro table1
    python -m repro tables23
    python -m repro fig7 [--mb 409]
    python -m repro ablation
    python -m repro all [--mb 409]
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench import (run_fabric_scaling, run_fig3, run_fig4, run_fig7,
                    run_hw_ablation, run_msgsize_sweep, run_mtu_sweep,
                    run_occupancy_tables, run_table1)
from .units import MB

EXPERIMENTS = {
    "fig3": ("Figure 3: application-to-application RTT",
             lambda args: run_fig3().render()),
    "fig4": ("Figure 4: ttcp throughput + CPU utilization",
             lambda args: run_fig4().render()),
    "mtu": ("Figure 4 text: QPIP MTU sweep + checksum variant",
            lambda args: run_mtu_sweep().render()),
    "table1": ("Table 1: host overhead (1-byte TCP message)",
               lambda args: run_table1().render()),
    "tables23": ("Tables 2 & 3: NIC occupancy per stage",
                 lambda args: run_occupancy_tables().render()),
    "fig7": ("Figure 7: NBD throughput + CPU effectiveness",
             lambda args: run_fig7(total_bytes=args.mb * MB).render()),
    "ablation": ("§5.2: Infiniband-class hardware applied to QPIP",
                 lambda args: run_hw_ablation().render()),
    "msgsize": ("QPIP latency/bandwidth vs message size (n1/2)",
                lambda args: run_msgsize_sweep().render()),
    "scaling": ("Aggregate throughput vs concurrent pairs (§1 claim)",
                lambda args: run_fabric_scaling().render()),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QPIP reproduction: regenerate the paper's experiments")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (desc, _fn) in EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        if name == "fig7":
            p.add_argument("--mb", type=int, default=409,
                           help="working-set size in MB (paper: 409)")
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--mb", type=int, default=409)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        print("experiments:")
        for name, (desc, _fn) in EXPERIMENTS.items():
            print(f"  {name:10s} {desc}")
        print("  all        run everything (slow: full-size NBD)")
        return 0
    names = list(EXPERIMENTS) if args.command == "all" else [args.command]
    for name in names:
        desc, fn = EXPERIMENTS[name]
        t0 = time.time()
        if name == "fig7" and not hasattr(args, "mb"):
            args.mb = 409
        print(fn(args))
        print(f"[{name} ran in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
