"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro list
    python -m repro fig3
    python -m repro fig4
    python -m repro mtu
    python -m repro table1
    python -m repro tables23
    python -m repro fig7 [--mb 409]
    python -m repro ablation
    python -m repro all [--mb 409]
    python -m repro chaos --seed 1 [--drop 0.02 --corrupt 0.01 ...]
    python -m repro perf [--quick]
    python -m repro trace ttcp [--out-dir traces/]
    python -m repro metrics pingpong [--json]
    python -m repro cluster --hosts 16 --workers 2 [--check-determinism]
    python -m repro collective --engine nic --algo allreduce --hosts 64
    python -m repro collective --bench [--quick --out BENCH_perf.json]
    python -m repro gate check [--tier commit --workers 2 --json]
    python -m repro gate check --only 'incast_*'
    python -m repro serve run [--dir serve-data --port 8700 --pool 2]
    python -m repro serve submit --spec scenarios/incast_8to1.yaml --wait
    python -m repro serve bench [--duration 4 --json]
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench import (run_fabric_scaling, run_fig3, run_fig4, run_fig7,
                    run_hw_ablation, run_msgsize_sweep, run_mtu_sweep,
                    run_occupancy_tables, run_table1)
from .units import MB

EXPERIMENTS = {
    "fig3": ("Figure 3: application-to-application RTT",
             lambda args: run_fig3().render()),
    "fig4": ("Figure 4: ttcp throughput + CPU utilization",
             lambda args: run_fig4().render()),
    "mtu": ("Figure 4 text: QPIP MTU sweep + checksum variant",
            lambda args: run_mtu_sweep().render()),
    "table1": ("Table 1: host overhead (1-byte TCP message)",
               lambda args: run_table1().render()),
    "tables23": ("Tables 2 & 3: NIC occupancy per stage",
                 lambda args: run_occupancy_tables().render()),
    "fig7": ("Figure 7: NBD throughput + CPU effectiveness",
             lambda args: run_fig7(total_bytes=args.mb * MB).render()),
    "ablation": ("§5.2: Infiniband-class hardware applied to QPIP",
                 lambda args: run_hw_ablation().render()),
    "msgsize": ("QPIP latency/bandwidth vs message size (n1/2)",
                lambda args: run_msgsize_sweep().render()),
    "scaling": ("Aggregate throughput vs concurrent pairs (§1 claim)",
                lambda args: run_fabric_scaling().render()),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QPIP reproduction: regenerate the paper's experiments")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (desc, _fn) in EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        if name == "fig7":
            p.add_argument("--mb", type=int, default=409,
                           help="working-set size in MB (paper: 409)")
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--mb", type=int, default=409)
    chaos_p = sub.add_parser(
        "chaos", help="run a workload under fault injection and check "
                      "the delivery/completion invariants")
    chaos_p.add_argument("--seed", type=int, default=1,
                         help="RNG seed (same seed => identical run)")
    chaos_p.add_argument("--workload",
                         choices=("ttcp", "pingpong", "kvstore"),
                         default="ttcp",
                         help="kvstore (replicated, client failover) "
                              "requires --recover")
    chaos_p.add_argument("--messages", type=int, default=64)
    chaos_p.add_argument("--size", type=int, default=4096,
                         help="message size in bytes")
    chaos_p.add_argument("--drop", type=float, default=0.02,
                         help="per-packet drop probability")
    chaos_p.add_argument("--corrupt", type=float, default=0.01,
                         help="per-packet bit-flip probability")
    chaos_p.add_argument("--reorder", type=float, default=0.0,
                         help="per-packet reorder (delay) probability")
    chaos_p.add_argument("--duplicate", type=float, default=0.0,
                         help="per-packet duplication probability")
    chaos_p.add_argument("--kill", choices=("none", "rst", "dma"),
                         default="none",
                         help="kill the QP mid-transfer and check that "
                              "every outstanding WR is flushed")
    chaos_p.add_argument("--kill-at", type=float, default=5000.0,
                         help="kill time in simulated microseconds")
    chaos_p.add_argument("--recover", action="store_true",
                         help="run the workload through the self-healing "
                              "session layer and force QP restarts "
                              "mid-transfer; the invariant becomes "
                              "exactly-once delivery of every message")
    chaos_p.add_argument("--restarts", type=int, default=3,
                         help="forced QP restarts in --recover mode")
    chaos_p.add_argument("--check-determinism", action="store_true",
                         help="run twice and compare completion traces")
    chaos_p.add_argument("--json", action="store_true",
                         help="print the result (or a structured error "
                              "object) as JSON")
    perf_p = sub.add_parser(
        "perf", help="measure simulator wall-clock performance (events/sec) "
                     "on fixed workloads and write BENCH_perf.json")
    perf_p.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    perf_p.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path")
    perf_p.add_argument("--baseline", default=None,
                        help="baseline JSON to compare against "
                             "(default: the committed baseline)")
    perf_p.add_argument("--no-baseline", action="store_true",
                        help="skip the baseline comparison")
    perf_p.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed events/sec drop vs baseline (0.30 = 30%%)")
    perf_p.add_argument("--write-baseline", action="store_true",
                        help="also overwrite the committed baseline")
    perf_p.add_argument("--no-profile", action="store_true",
                        help="skip the cProfile subsystem breakdown")
    perf_p.add_argument("--workload", default=None, metavar="GLOB",
                        help="only run workloads matching this glob "
                             "(e.g. 'ttcp*'); the written report merges "
                             "into an existing BENCH_perf.json")
    for cmd, help_text in (
            ("trace", "run a workload with full observability on and "
                      "write trace.jsonl / trace.chrome.json (Perfetto) / "
                      "capture.pcapng (Wireshark) / metrics.txt"),
            ("metrics", "run a workload with the metrics registry on and "
                        "print the report")):
        p = sub.add_parser(cmd, help=help_text)
        p.add_argument("workload", choices=("ttcp", "pingpong"))
        p.add_argument("--bytes", type=int, default=256 * 1024,
                       help="ttcp transfer size")
        p.add_argument("--chunk", type=int, default=8192,
                       help="ttcp message size")
        p.add_argument("--iterations", type=int, default=20,
                       help="pingpong round trips")
        p.add_argument("--msg-size", type=int, default=64,
                       help="pingpong message size")
        p.add_argument("--json", action="store_true",
                       help="print the summary as JSON")
        if cmd == "trace":
            p.add_argument("--out-dir", default="traces",
                           help="artifact output directory")
    cluster_p = sub.add_parser(
        "cluster", help="sharded parallel simulation of a large fabric; "
                        "bit-for-bit deterministic vs one process")
    cluster_p.add_argument("--workload", choices=("ttcp", "pingpong"),
                           default="ttcp")
    cluster_p.add_argument("--topology", choices=("fat-tree", "ring"),
                           default="fat-tree")
    cluster_p.add_argument("--hosts", type=int, default=16)
    cluster_p.add_argument("--flows", type=int, default=8)
    cluster_p.add_argument("--workers", type=int, default=2,
                           help="shard count (1 = plain single-process run)")
    cluster_p.add_argument("--bytes", type=int, default=65536,
                           help="ttcp bytes per flow")
    cluster_p.add_argument("--iterations", type=int, default=10,
                           help="pingpong round trips per flow")
    cluster_p.add_argument("--seed", type=int, default=1)
    cluster_p.add_argument("--horizon", type=float, default=20_000_000.0,
                           help="simulated horizon in microseconds")
    cluster_p.add_argument("--in-process", action="store_true",
                           help="drive shards in one OS process (debug)")
    cluster_p.add_argument("--check-determinism", action="store_true",
                           help="also run the 1-process oracle and require "
                                "bit-for-bit identical observables")
    cluster_p.add_argument("--bench", action="store_true",
                           help="measure events/sec at 1/2/4 workers and "
                                "merge into BENCH_perf.json")
    cluster_p.add_argument("--out", default="BENCH_perf.json",
                           help="--bench report path")
    cluster_p.add_argument("--json", action="store_true",
                           help="print the result as JSON")
    coll_p = sub.add_parser(
        "collective", help="one collective op (barrier/broadcast/allreduce) "
                           "across every host: host engine vs NIC offload")
    coll_p.add_argument("--algo",
                        choices=("barrier", "broadcast", "allreduce"),
                        default="allreduce")
    coll_p.add_argument("--engine", choices=("host", "nic"), default="nic",
                        help="host = schedule in the application (a verbs "
                             "round trip per step); nic = schedule in "
                             "firmware (one doorbell, one CQE)")
    coll_p.add_argument("--variant", choices=("ring", "rd"), default="ring",
                        help="rd = recursive doubling (host allreduce only, "
                             "power-of-two world)")
    coll_p.add_argument("--hosts", type=int, default=16,
                        help="world size: rank i runs on host i")
    coll_p.add_argument("--vector-len", type=int, default=1024,
                        help="float64 elements per rank")
    coll_p.add_argument("--root", type=int, default=0,
                        help="broadcast root rank")
    coll_p.add_argument("--eager-threshold", type=int, default=4096,
                        help="NIC engine: chunk bytes above this go "
                             "rendezvous (RTS/CTS) instead of eager")
    coll_p.add_argument("--topology", choices=("fat-tree", "ring"),
                        default="fat-tree")
    coll_p.add_argument("--hosts-per-edge", type=int, default=4,
                        help="fat-tree: hosts per edge switch (raise for "
                             "large worlds, e.g. 8 at 1024 hosts)")
    coll_p.add_argument("--spines", type=int, default=2)
    coll_p.add_argument("--ring-switches", type=int, default=4)
    coll_p.add_argument("--workers", type=int, default=1,
                        help="shard count (1 = single process)")
    coll_p.add_argument("--in-process", action="store_true",
                        help="drive shards in one OS process (debug)")
    coll_p.add_argument("--check-determinism", action="store_true",
                        help="also run the 1-process oracle and require "
                             "bit-for-bit identical observables")
    coll_p.add_argument("--seed", type=int, default=1)
    coll_p.add_argument("--horizon", type=float, default=20_000_000.0,
                        help="simulated horizon in microseconds (raise "
                             "for 512+ hosts)")
    coll_p.add_argument("--bench", action="store_true",
                        help="NIC-vs-host latency curves over several "
                             "world sizes, merged into BENCH_perf.json")
    coll_p.add_argument("--quick", action="store_true",
                        help="--bench: small worlds (CI smoke)")
    coll_p.add_argument("--out", default="BENCH_perf.json",
                        help="--bench report path")
    coll_p.add_argument("--json", action="store_true",
                        help="print the result (or a structured error "
                             "object) as JSON")
    gate_p = sub.add_parser(
        "gate", help="scenario-corpus regression gate: run the committed "
                     "scenarios/ specs and compare against golden digests")
    gate_p.add_argument("action",
                        choices=("list", "run", "record", "check"),
                        help="list specs / run with invariants only / "
                             "record golden baselines / check for drift")
    gate_p.add_argument("names", nargs="*",
                        help="scenario names (default: the whole tier)")
    gate_p.add_argument("--scenarios-dir", default="scenarios",
                        help="spec directory (default: scenarios/)")
    gate_p.add_argument("--tier", choices=("commit", "nightly"),
                        default="commit",
                        help="commit = fast subset (default); "
                             "nightly = the full corpus")
    gate_p.add_argument("--workers", type=int, default=2,
                        help="concurrent scenario worker processes")
    gate_p.add_argument("--only", default=None, metavar="GLOB",
                        help="fnmatch glob over scenario names (e.g. "
                             "'incast_*'): run one scenario or family "
                             "without replaying the whole corpus")
    gate_p.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    gate_p.add_argument("--report", default=None,
                        help="also write the JSON report to this path "
                             "(CI drift artifact)")
    serve_p = sub.add_parser(
        "serve", help="simulation-as-a-service: a supervised job server "
                      "with admission control and crash-safe results")
    serve_p.add_argument("action",
                         choices=("run", "bench", "submit", "status"),
                         help="run the server / open-loop Poisson bench / "
                              "submit one scenario / show server status")
    serve_p.add_argument("--dir", default="serve-data",
                         help="data directory (journal, snapshot, "
                              "serve.json endpoint file)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="0 = ephemeral (written to serve.json)")
    serve_p.add_argument("--pool", type=int, default=2,
                         help="concurrent forked job workers")
    serve_p.add_argument("--max-queue", type=int, default=64,
                         help="admission: bounded queue depth")
    serve_p.add_argument("--client-cap", type=int, default=8,
                         help="admission: per-client in-flight cap")
    serve_p.add_argument("--max-attempts", type=int, default=3,
                         help="supervised retries per job")
    serve_p.add_argument("--breaker-deaths", type=int, default=3,
                         help="consecutive worker deaths before a "
                              "scenario is quarantined")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         help="SIGTERM: seconds to wait for running jobs")
    serve_p.add_argument("--url", default=None,
                         help="bench/submit/status: server endpoint "
                              "(default: read <dir>/serve.json)")
    serve_p.add_argument("--spec", default=None,
                         help="submit/bench: scenario spec file "
                              "(YAML/JSON)")
    serve_p.add_argument("--key", default=None,
                         help="submit: idempotency key")
    serve_p.add_argument("--client-name", default="cli",
                         help="submit: client id for in-flight caps")
    serve_p.add_argument("--wait", action="store_true",
                         help="submit: block until the job is terminal")
    serve_p.add_argument("--timeout", type=float, default=120.0,
                         help="submit --wait budget (seconds)")
    serve_p.add_argument("--duration", type=float, default=4.0,
                         help="bench: seconds per load phase")
    serve_p.add_argument("--rate", type=float, default=None,
                         help="bench: explicit arrival rate (default: "
                              "sweep 0.5x and 2x measured capacity)")
    serve_p.add_argument("--seed", type=int, default=1,
                         help="bench: Poisson arrival RNG seed")
    serve_p.add_argument("--out", default="BENCH_perf.json",
                         help="bench: report merge path")
    serve_p.add_argument("--json", action="store_true",
                         help="print results (or a structured error "
                              "object) as JSON")
    return parser


def _json_error(command: str, kind: str, message: str, exit_code: int,
                **extra) -> int:
    """Machine-readable failure contract shared by the cluster/chaos/gate
    commands: nonzero exit + one structured JSON error object on stdout."""
    import json as _json
    obj = {"ok": False, "command": command,
           "error": dict(extra, kind=kind, message=message)}
    print(_json.dumps(obj, indent=2, sort_keys=True))
    return exit_code


def run_trace_cmd(args) -> int:
    import json as _json
    from .obs.runner import render_summary, run_traced
    write = args.command == "trace"
    summary = run_traced(
        workload=args.workload,
        out_dir=getattr(args, "out_dir", "."),
        total_bytes=args.bytes, chunk=args.chunk,
        iterations=args.iterations, msg_size=args.msg_size,
        write_artifacts=write)
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(render_summary(summary))
    if args.command == "metrics":
        print(_render_metrics_snapshot(summary["metrics"]))
    return 0


def _render_metrics_snapshot(snapshot: dict) -> str:
    lines = ["metrics:"]
    for name, value in snapshot.items():
        if isinstance(value, dict):
            detail = " ".join(f"{k}={v:.2f}" if isinstance(v, float)
                              else f"{k}={v}" for k, v in value.items())
            lines.append(f"  {name:40s} {detail}")
        else:
            lines.append(f"  {name:40s} {value:>12,}")
    return "\n".join(lines)


def run_perf_cmd(args) -> int:
    from .bench.perf import (DEFAULT_BASELINE, compare_to_baseline,
                             load_baseline, render, run_perf, write_report)
    try:
        report = run_perf(quick=args.quick, profile=not args.no_profile,
                          workload=args.workload)
    except ValueError as exc:
        print(f"perf: {exc}", file=sys.stderr)
        return 2
    path = write_report(report, args.out)
    print(render(report))
    print(f"[wrote {path}]")
    if args.write_baseline:
        write_report(report, str(DEFAULT_BASELINE))
        print(f"[wrote baseline {DEFAULT_BASELINE}]")
        return 0
    if args.no_baseline:
        return 0
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print("perf: no baseline found; skipping regression check")
        return 0
    ok, messages = compare_to_baseline(report, baseline,
                                       max_regression=args.max_regression)
    for line in messages:
        print("  " + line)
    if not ok:
        print(f"perf: events/sec regressed more than "
              f"{args.max_regression:.0%} vs baseline", file=sys.stderr)
        return 1
    return 0


def run_chaos_cmd(args) -> int:
    import json as _json
    from .errors import ReproError
    from .faults import FaultPlan, check_determinism, run_chaos
    try:
        plan = FaultPlan()
        if args.drop:
            plan.drop(args.drop)
        if args.corrupt:
            plan.corrupt(args.corrupt)
        if args.reorder:
            plan.reorder(args.reorder, delay=40.0, jitter=20.0)
        if args.duplicate:
            plan.duplicate(args.duplicate)
        kwargs = dict(workload=args.workload, plan=plan,
                      messages=args.messages, msg_size=args.size,
                      kill=args.kill, kill_at=args.kill_at,
                      recover=args.recover, restarts=args.restarts)
        if args.check_determinism:
            result, _again = check_determinism(seed=args.seed, **kwargs)
        else:
            result = run_chaos(seed=args.seed, **kwargs)
    except ReproError as exc:
        if args.json:
            return _json_error("chaos", type(exc).__name__, str(exc), 2)
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    violations = result.violations()
    if args.json:
        if violations:
            return _json_error("chaos", "invariant_violation",
                               "; ".join(violations), 1,
                               violations=violations, seed=args.seed,
                               workload=args.workload)
        summary = {"ok": True, "command": "chaos", "seed": args.seed,
                   "workload": args.workload,
                   "messages_delivered": result.messages_delivered,
                   "bytes_delivered": result.bytes_delivered,
                   "determinism": bool(args.check_determinism)}
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(result.summary())
    if args.check_determinism:
        print("  determinism: identical traces across two runs")
    if violations:
        print("repro chaos: invariant violation: "
              + "; ".join(violations), file=sys.stderr)
        return 1
    return 0


def run_cluster_cmd(args) -> int:
    import json as _json
    from .cluster import (ClusterError, ClusterSpec, assert_equivalent,
                          make_flows, run_cluster, run_single)
    from .cluster.bench import (measure_scaling, merge_into_bench_report,
                                render_scaling, scaling_spec)
    if args.bench:
        spec = scaling_spec(hosts=max(args.hosts, 32), seed=args.seed,
                            horizon=args.horizon)
        scaling = measure_scaling(spec, processes=not args.in_process,
                                  check_determinism=args.check_determinism)
        path = merge_into_bench_report(scaling, args.out)
        if args.json:
            print(_json.dumps(scaling, indent=2, sort_keys=True))
        else:
            print(render_scaling(scaling))
        print(f"[merged into {path}]")
        return 0
    spec = ClusterSpec(
        topology=args.topology, hosts=args.hosts, seed=args.seed,
        hosts_per_edge=max(2, min(4, args.hosts // args.workers)),
        horizon=args.horizon, metrics=True,
        flows=make_flows(args.workload, args.hosts, args.flows,
                         seed=args.seed, total_bytes=args.bytes,
                         iterations=args.iterations))
    try:
        result = run_cluster(spec, args.workers,
                             processes=not args.in_process
                             and args.workers > 1)
        if args.check_determinism:
            assert_equivalent(run_single(spec), result)
    except ClusterError as exc:
        if args.json:
            return _json_error("cluster", type(exc).__name__, str(exc), 1,
                               workers=args.workers, seed=args.seed)
        print(f"repro cluster: error: {exc}", file=sys.stderr)
        return 1
    summary = {
        "workload": args.workload, "topology": spec.topology,
        "hosts": spec.hosts, "flows": len(spec.flows),
        "workers": result.num_workers, "events": result.events,
        "barriers": result.barriers, "trunk_msgs": result.trunk_msgs,
        "events_per_sec": round(result.events_per_sec, 1),
        "sim_time_us": result.now,
        "per_worker_events": result.per_worker_events,
    }
    if args.check_determinism:
        summary["determinism"] = "bit-identical to 1-process oracle"
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"cluster: {args.workload} x{len(spec.flows)} on "
          f"{spec.hosts}-host {spec.topology}, "
          f"{result.num_workers} worker(s)")
    for key in ("events", "barriers", "trunk_msgs", "events_per_sec",
                "sim_time_us"):
        print(f"  {key:16s} {summary[key]:>14,}")
    if "determinism" in summary:
        print(f"  determinism: {summary['determinism']}")
    return 0


def run_collective_cmd(args) -> int:
    import json as _json
    from .collectives import CollectiveJob, CollectiveWorkSpec
    from .collectives.bench import (QUICK_WORLDS, measure_collectives,
                                    merge_into_bench_report, render_curves)
    from .errors import ReproError
    try:
        if args.bench:
            curves = measure_collectives(
                worlds=QUICK_WORLDS if args.quick else (16, 32, 64),
                algo=args.algo, vector_len=min(args.vector_len, 256),
                seed=args.seed, horizon=args.horizon)
            path = merge_into_bench_report(curves, args.out)
            if args.json:
                print(_json.dumps(curves, indent=2, sort_keys=True))
            else:
                print(render_curves(curves))
            print(f"[merged into {path}]")
            return 0 if curves["all_ok"] and curves["engines_agree"] else 1
        work = CollectiveWorkSpec(
            algo=args.algo, engine=args.engine, variant=args.variant,
            vector_len=args.vector_len, root=args.root, seed=args.seed,
            eager_threshold=args.eager_threshold)
        summary = CollectiveJob(
            work, hosts=args.hosts, topology=args.topology,
            hosts_per_edge=args.hosts_per_edge, spines=args.spines,
            ring_switches=args.ring_switches, workers=args.workers,
            processes=not args.in_process and args.workers > 1,
            check_determinism=args.check_determinism,
            horizon=args.horizon, seed=args.seed).run()
    except ReproError as exc:
        if args.json:
            return _json_error("collective", type(exc).__name__,
                               str(exc), 1, engine=args.engine,
                               algo=args.algo, hosts=args.hosts)
        print(f"repro collective: error: {exc}", file=sys.stderr)
        return 1
    ok = bool(summary["status_ok"] and summary["ranks_agree"]
              and summary["oracle_match"])
    if args.json:
        print(_json.dumps(dict(summary, ok=ok), indent=2, sort_keys=True))
        return 0 if ok else 1
    print(f"collective: {summary['algo']} ({summary['variant']}) on "
          f"{summary['world']} hosts, engine={summary['engine']}, "
          f"{summary['vector_len']} float64/rank")
    print(f"  latency (max rank)   {summary['max_wall_time_us']:>14,.1f} us")
    print(f"  latency (mean rank)  {summary['mean_wall_time_us']:>14,.1f} us")
    print(f"  bytes on the wire    {summary['total_bytes_sent']:>14,}")
    print(f"  steps per rank       "
          f"{'/'.join(str(s) for s in summary['steps_per_rank']):>14}")
    print(f"  sim events           {summary['sim_events']:>14,}")
    print(f"  statuses: {', '.join(summary['statuses'])}; "
          f"ranks agree: {summary['ranks_agree']}; "
          f"oracle match: {summary['oracle_match']}")
    if summary["determinism_checked"]:
        print("  determinism: sharded run bit-identical to 1-process oracle")
    if not ok:
        print("repro collective: exactness check failed", file=sys.stderr)
    return 0 if ok else 1


def run_gate_cmd(args) -> int:
    import json as _json
    from .errors import ReproError
    from .gate import (check_outcomes, checks_json, load_corpus,
                       outcomes_json, record_outcomes, render_checks,
                       render_outcomes, render_scenario_list, run_corpus)
    try:
        specs = load_corpus(args.scenarios_dir, tier=args.tier,
                            names=args.names or None, only=args.only)
    except ReproError as exc:
        if args.json:
            return _json_error("gate", type(exc).__name__, str(exc), 2)
        print(f"repro gate: error: {exc}", file=sys.stderr)
        return 2
    if args.action == "list":
        if args.json:
            print(_json.dumps(
                {"ok": True, "command": "gate",
                 "scenarios": [s.to_dict() for s in specs]},
                indent=2, sort_keys=True))
        else:
            print(render_scenario_list(specs))
        return 0
    if not specs:
        if args.json:
            return _json_error("gate", "ConfigError",
                               "no scenarios selected", 2)
        print("repro gate: error: no scenarios selected", file=sys.stderr)
        return 2

    def progress(outcome):
        if not args.json:
            mark = "PASS" if outcome.ok else "FAIL"
            print(f"  [{mark}] {outcome.name} ({outcome.status}, "
                  f"{outcome.wall_s:.2f}s)", flush=True)

    if not args.json:
        print(f"gate {args.action}: {len(specs)} scenario(s), "
              f"{args.workers} worker(s)", flush=True)
    outcomes = run_corpus(specs, jobs=args.workers, progress=progress)
    if args.action == "check":
        checks = check_outcomes(specs, outcomes, args.scenarios_dir)
        report = checks_json(checks)
        rendered = render_checks(checks)
    else:
        report = outcomes_json(outcomes)
        rendered = render_outcomes(outcomes)
        if args.action == "record":
            paths = record_outcomes(specs, outcomes, args.scenarios_dir)
            report["recorded"] = paths
            rendered += "\n  recorded {} golden file(s)".format(len(paths))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            _json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(rendered)
        if not report["ok"]:
            print("repro gate: FAILED", file=sys.stderr)
    return 0 if report["ok"] else 1


def _serve_url(args) -> str:
    """Resolve the server endpoint: --url, else <dir>/serve.json."""
    import json as _json
    import os
    from .errors import ReproError
    if args.url:
        return args.url
    endpoint = os.path.join(args.dir, "serve.json")
    if not os.path.exists(endpoint):
        raise ReproError(
            f"no --url given and {endpoint} not found; is the server "
            f"running with --dir {args.dir}?")
    with open(endpoint, encoding="utf-8") as f:
        return _json.load(f)["url"]


def _serve_spec(args) -> dict:
    """Load the scenario spec for submit/bench (or the bench default)."""
    from .errors import ReproError
    from .gate.spec import ScenarioSpec, WorkloadSpec, load_scenario
    if args.spec:
        return load_scenario(args.spec).to_dict()
    if args.action == "bench":
        return ScenarioSpec(
            name="serve_bench", hosts=8, seed=7,
            workload=WorkloadSpec(count=2, total_bytes=131072,
                                  chunk=8192),
            workers=(1,), timeout_s=60.0).to_dict()
    raise ReproError("serve submit needs --spec <scenario file>")


def _serve_run_server(args) -> int:
    import signal as _signal
    import threading
    from .serve import ReproServer, ServeConfig
    config = ServeConfig(
        data_dir=args.dir, host=args.host, port=args.port,
        pool_size=args.pool, max_queue=args.max_queue,
        client_cap=args.client_cap, max_attempts=args.max_attempts,
        breaker_deaths=args.breaker_deaths,
        drain_timeout_s=args.drain_timeout, seed=args.seed)
    server = ReproServer(config).start()
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    _signal.signal(_signal.SIGTERM, _on_signal)
    _signal.signal(_signal.SIGINT, _on_signal)
    print(f"repro serve: listening on {server.url} "
          f"(pool={config.pool_size}, queue<={config.max_queue}, "
          f"data in {config.data_dir})", flush=True)
    while not stop.is_set() and server._http_thread.is_alive():
        stop.wait(0.2)      # POST /drain stops the http thread itself
    stragglers = server.drain_and_stop(args.drain_timeout)
    print(f"repro serve: drained and stopped "
          f"({stragglers} job(s) interrupted)", flush=True)
    return 0


def run_serve_cmd(args) -> int:
    import json as _json
    from .errors import ReproError
    from .serve import ServeClient, merge_into_bench_report, \
        render_loadgen, run_loadgen
    try:
        if args.action == "run":
            return _serve_run_server(args)
        if args.action == "status":
            client = ServeClient(_serve_url(args))
            ready_status, ready = client.readyz()
            summary = {"ok": ready_status == 200, "command": "serve",
                       "readyz": ready, "metricz": client.metricz()}
            if args.json:
                print(_json.dumps(summary, indent=2, sort_keys=True))
            else:
                print(f"serve at {client.host}:{client.port}: "
                      f"{'ready' if summary['ok'] else 'NOT READY'}")
                for name, count in sorted(
                        summary["metricz"].get("jobs", {}).items()):
                    print(f"  {name:12s} {count}")
                print(f"  queue depth  "
                      f"{summary['metricz'].get('queue_depth', 0)}")
            return 0 if summary["ok"] else 1
        if args.action == "submit":
            spec = _serve_spec(args)
            client = ServeClient(_serve_url(args))
            status, data, headers = client.submit(
                spec, key=args.key, client=args.client_name)
            if status not in (200, 202):
                error = data.get("error", {"kind": f"http_{status}",
                                           "message": repr(data)})
                if args.json:
                    return _json_error("serve", error.get("kind", "error"),
                                       error.get("message", ""), 1,
                                       http_status=status)
                print(f"repro serve: submit rejected ({status}): "
                      f"{error.get('message')}", file=sys.stderr)
                return 1
            job = data["job"]
            if args.wait:
                job = client.wait(job["id"], timeout_s=args.timeout)
            ok = (not args.wait) or job["state"] == "done"
            if args.json:
                print(_json.dumps({"ok": ok, "command": "serve",
                                   "http_status": status, "job": job},
                                  indent=2, sort_keys=True))
            else:
                print(f"job {job['id']} ({job['key']}): {job['state']} "
                      f"after {job['attempts']} attempt(s)")
                if job.get("error"):
                    print(f"  error: {job['error']['kind']}: "
                          f"{job['error']['message']}")
            return 0 if ok else 1
        # bench: drive an existing server (--url) or a private one
        spec = _serve_spec(args)
        own_server = None
        if args.url:
            url = args.url
        else:
            import tempfile
            from .serve import ReproServer, ServeConfig
            own_server = ReproServer(ServeConfig(
                data_dir=tempfile.mkdtemp(prefix="repro-serve-bench-"),
                pool_size=args.pool, max_queue=args.max_queue,
                client_cap=max(args.client_cap, args.max_queue),
                seed=args.seed)).start()
            url = own_server.url
        try:
            report = run_loadgen(url, spec, duration_s=args.duration,
                                 seed=args.seed, rate_per_s=args.rate)
        finally:
            if own_server is not None:
                own_server.drain_and_stop(10.0)
        path = merge_into_bench_report(report, args.out)
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_loadgen(report))
        print(f"[merged into {path}]")
        return 0
    except ReproError as exc:
        if args.json:
            return _json_error("serve", type(exc).__name__, str(exc), 2)
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        print("experiments:")
        for name, (desc, _fn) in EXPERIMENTS.items():
            print(f"  {name:10s} {desc}")
        print("  all        run everything (slow: full-size NBD)")
        print("  chaos      fault-injection run with invariant checks")
        print("  perf       simulator wall-clock benchmark (BENCH_perf.json)")
        print("  trace      traced run: Perfetto/Wireshark/metrics artifacts")
        print("  metrics    traced run: print the metrics report")
        print("  cluster    sharded parallel run of a large fabric "
              "(bit-for-bit deterministic)")
        print("  collective barrier/broadcast/allreduce across every host: "
              "host engine vs NIC offload")
        print("  gate       scenario-corpus regression gate "
              "(record/check golden digests)")
        print("  serve      supervised simulation service "
              "(run/submit/status/bench)")
        return 0
    if args.command == "chaos":
        return run_chaos_cmd(args)
    if args.command == "perf":
        return run_perf_cmd(args)
    if args.command in ("trace", "metrics"):
        return run_trace_cmd(args)
    if args.command == "cluster":
        return run_cluster_cmd(args)
    if args.command == "collective":
        return run_collective_cmd(args)
    if args.command == "gate":
        return run_gate_cmd(args)
    if args.command == "serve":
        return run_serve_cmd(args)
    names = list(EXPERIMENTS) if args.command == "all" else [args.command]
    for name in names:
        desc, fn = EXPERIMENTS[name]
        t0 = time.time()
        if name == "fig7" and not hasattr(args, "mb"):
            args.mb = 409
        print(fn(args))
        print(f"[{name} ran in {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
