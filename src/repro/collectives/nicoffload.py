"""NIC-offloaded collective engine: firmware-resident state machines.

The host doorbells **once** per collective operation; the firmware DMAs
the vector into NIC SRAM, runs the ring schedule entirely on the
interface — forwarding and combining incoming frames as they arrive —
and posts a **single CQE** when the operation completes.  Contrast with
the host engine (:mod:`repro.collectives.host`) where every schedule
step costs a host-side post, doorbell, CQE and wakeup.

Transport: each ring neighbor pair is joined by a firmware-internal TCP
connection (the same on-NIC stack QPs use), so retransmission heals
drops and the collective result stays exact under fault injection —
that property is pinned by gate scenarios.  Frames above the group's
``eager_threshold`` go rendezvous: an RTS/CTS exchange on the same
connection pair (the CTS rides the reverse direction) models SRAM
staging admission and costs one extra round trip per step.

Determinism: every charge goes through ``nic.stage`` / DMA events that
behave identically in fast and naive modes, so NIC-offloaded results
are bit-identical across ``repro.fastpath`` modes and across cluster
shardings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .. import obs
from ..errors import ConnectionReset, DmaError, VerbsError
from ..mem import SGE, Access
from ..net.addresses import Endpoint, IPv6Address
from ..net.packet import BytesPayload
from ..core.firmware import (RDMA_WINDOW_CREDIT, FwEndpoint, QpipFirmware)
from ..core.wr import Completion, WROpcode, WRStatus
from . import frames
from .group import (ELEM, CollectiveStats, ag_recv_chunk, ag_send_chunk,
                    chunk_bounds, combine_into, pack_vector, rs_recv_chunk,
                    rs_send_chunk, unpack_vector)

# Collective CQEs carry a synthetic qp_num so they can never collide
# with real QP numbers in application-side bookkeeping.
COLL_QPN_BASE = 1_000_000

# How long after group creation the outbound ring connection SYNs.  All
# ranks install their listeners within the first few mgmt commands, so
# a generous fixed delay guarantees no SYN races a missing listener.
CONNECT_DELAY_US = 30_000.0


@dataclass
class CollGroupConfig:
    """Everything the firmware needs to join a collective ring."""

    group: int
    rank: int
    world: int
    right_addr: Optional[IPv6Address]    # None when world == 1
    port: int
    eager_threshold: int
    cq: object                           # CompletionQueue for the single CQE
    connect_delay_us: float = CONNECT_DELAY_US


@dataclass
class CollOp:
    """One posted collective operation (the host-side descriptor)."""

    wr_id: int
    algo: str
    seq: int
    root: int
    nelems: int
    sge: Optional[SGE] = None


class CollectiveUnit:
    """Per-group firmware state machine (one instance per NIC per group)."""

    def __init__(self, fw: QpipFirmware, config: CollGroupConfig, done):
        self.fw = fw
        self.nic = fw.nic
        self.sim = fw.sim
        self.config = config
        self.done = done
        self.stats = CollectiveStats()
        self.host_ring: Deque[CollOp] = deque()
        self.posted_seq = 0
        self.out_ep: Optional[FwEndpoint] = None
        self.in_ep: Optional[FwEndpoint] = None
        self.out_established = False
        self.ready = False
        self.failed: Optional[WRStatus] = None
        self.start_wanted = False
        self.op: Optional[CollOp] = None
        self._op_started = 0.0
        self._pending: Dict[FwEndpoint, Deque[Tuple[bytes, str, bool]]] = {}
        self._stash: List[Tuple[frames.FrameHeader, bytes]] = []
        self._frame_elems = frames.max_frame_elems(self.nic.mtu)
        # allreduce schedule cursors
        self.acc: List[float] = []
        self._bounds: List[Tuple[int, int]] = []
        self.send_idx = 0
        self.recv_idx = 0
        self.recv_got = 0
        self.rts_sent = False
        self.cts_granted = False
        self.bcast_received = 0
        if config.world <= 1:
            self.ready = True
            fw._notify_host(done, config.group)
        else:
            self._listener = fw.stack.tcp.listen(
                Endpoint(fw.addr, config.port), fw._conn_config(),
                self._ctx_factory)
            self.sim.call_later(config.connect_delay_us, self._connect_out)

    # -- ring setup ---------------------------------------------------------

    def _ctx_factory(self) -> FwEndpoint:
        ep = FwEndpoint(self.fw, qp=None)
        ep.coll_unit = self
        return ep

    def _connect_out(self) -> None:
        ep = FwEndpoint(self.fw, qp=None)
        ep.coll_unit = self
        local = Endpoint(self.fw.addr, self.fw.stack.tcp.ephemeral_port())
        remote = Endpoint(self.config.right_addr, self.config.port)
        ep.conn = self.fw.stack.tcp.connect(
            local, remote, self.fw._conn_config(), ep)
        ep.conn.enable_credit_window(RDMA_WINDOW_CREDIT)
        self.out_ep = ep

    def on_established(self, ep: FwEndpoint) -> None:
        if ep is self.out_ep:
            self.out_established = True
        else:
            self.in_ep = ep
        if self.out_established and self.in_ep is not None and not self.ready:
            self.ready = True
            self.fw._notify_host(self.done, self.config.group)
            if self.start_wanted or self.host_ring:
                self.start_wanted = False
                self.fw._push_action(("coll_start", self))

    def on_closed(self, ep: FwEndpoint, exc: Optional[Exception]) -> None:
        if not self.ready and not self.done.triggered:
            self.done.fail(exc or ConnectionReset(
                f"collective group {self.config.group}: ring setup failed"))
            self.failed = WRStatus.REMOTE_ABORTED
            return
        if self.failed is None:
            self._fail(WRStatus.REMOTE_ABORTED)

    # -- host-facing surface (used by verbs) --------------------------------

    def alloc_seq(self) -> int:
        seq, self.posted_seq = self.posted_seq, self.posted_seq + 1
        return seq

    # -- op lifecycle -------------------------------------------------------

    def start_next(self):
        """Doorbell service: begin the next posted op (action handler)."""
        if self.op is not None or not self.host_ring:
            return
        if self.failed is not None:
            while self.host_ring:
                op = self.host_ring.popleft()
                self._post_op_cqe(op, WRStatus.FLUSHED)
            return
        if not self.ready:
            self.start_wanted = True
            return
        t = self.nic.timing
        op = self.host_ring.popleft()
        self.op = op
        self._op_started = self.sim.now
        yield self.nic.stage("coll_get_wr", t.get_wr)
        rec = obs.RECORDER
        if rec is not None:
            rec.event("coll", "coll.start", track=self._track(),
                      group=self.config.group, seq=op.seq, algo=op.algo,
                      rank=self.config.rank, nelems=op.nelems)
            rec.metrics.counter("coll.ops_started").add()
        world, rank = self.config.world, self.config.rank
        if op.algo == "allreduce":
            yield from self._start_allreduce(op)
        elif op.algo == "broadcast":
            yield from self._start_broadcast(op)
        else:   # barrier
            if world == 1:
                yield from self._complete()
                return
            self._begin_span("collective.barrier")
            if rank == 0:
                self._queue_token(0)
            yield from self._drain_stash()

    def _start_allreduce(self, op: CollOp):
        world, rank = self.config.world, self.config.rank
        if op.nelems:
            yield from self._dma_vector_in(op)
            if self.op is None:     # DMA/protection failure ended the op
                return
        else:
            self.acc = []
        if world == 1 or op.nelems == 0:
            # Degenerate: the reduction is this rank's own contribution
            # (or empty).  No wire traffic.
            yield from self._complete()
            return
        self._bounds = chunk_bounds(op.nelems, world)
        self.send_idx = self.recv_idx = self.recv_got = 0
        self.rts_sent = self.cts_granted = False
        self._begin_span("collective.reduce_scatter")
        self._pump_allreduce()
        yield from self._drain_stash()
        if self._allreduce_done():
            yield from self._complete()

    def _start_broadcast(self, op: CollOp):
        world, rank = self.config.world, self.config.rank
        if op.nelems == 0 or world == 1:
            yield from self._complete()
            return
        self._begin_span("collective.broadcast")
        if rank == op.root:
            yield from self._dma_vector_in(op)
            if self.op is None:
                return
            frames_out = self._data_frames(0, 0, 0, op.nelems)
            for i, data in enumerate(frames_out):
                last = i == len(frames_out) - 1
                self._queue_frame(self.out_ep, data, "broadcast", notify=last)
                self.stats.steps += 1
        else:
            self.acc = [0.0] * op.nelems
            self.bcast_received = 0
            yield from self._drain_stash()

    # -- receive path -------------------------------------------------------

    def on_deliver(self, ep: FwEndpoint, payload):
        t = self.nic.timing
        yield self.nic.stage("coll_frame", t.coll_frame)
        if ep.conn is not None:
            ep.conn.set_receive_credit(RDMA_WINDOW_CREDIT)
        try:
            hdr, body = frames.decode_frame(payload.to_bytes())
        except Exception:
            self._fail(WRStatus.REMOTE_ABORTED)
            return
        if hdr.group != self.config.group:
            self._fail(WRStatus.REMOTE_ABORTED)
            return
        if self.op is None or hdr.seq != (self.op.seq & 0xFFFF):
            self._stash.append((hdr, bytes(body)))
            return
        yield from self._handle_frame(hdr, bytes(body))

    def _drain_stash(self):
        while self.op is not None and self._stash:
            seq = self.op.seq & 0xFFFF
            if self._stash[0][0].seq != seq:
                break
            hdr, body = self._stash.pop(0)
            yield from self._handle_frame(hdr, body)

    def _handle_frame(self, hdr: frames.FrameHeader, body: bytes):
        op = self.op
        algo_code = frames.ALGO_CODES[op.algo]
        if hdr.algo != algo_code:
            self._fail(WRStatus.REMOTE_ABORTED)
            return
        if hdr.kind == frames.KIND_TOKEN:
            yield from self._on_token(hdr)
        elif hdr.kind == frames.KIND_RTS:
            # Grant immediately on the reverse path: the combine engine
            # consumes at line rate, admission is only a staging handshake.
            self._queue_frame(self.in_ep, frames.encode_frame(
                frames.KIND_CTS, hdr.algo, hdr.phase, hdr.group, hdr.seq,
                hdr.step, hdr.offset, hdr.count), "rendezvous")
        elif hdr.kind == frames.KIND_CTS:
            self.cts_granted = True
            self._pump_allreduce()
            if self._allreduce_done():
                yield from self._complete()
        elif op.algo == "allreduce":
            yield from self._on_data_allreduce(hdr, body)
        else:
            yield from self._on_data_broadcast(hdr, body)

    def _on_data_allreduce(self, hdr: frames.FrameHeader, body: bytes):
        t = self.nic.timing
        world = self.config.world
        if body:
            yield self.nic.stage("coll_combine",
                                 t.coll_combine_per_byte * len(body))
        values = unpack_vector(body)
        if self.recv_idx < world - 1:
            combine_into(self.acc, hdr.offset, values)
        else:
            self.acc[hdr.offset:hdr.offset + len(values)] = values
        self.recv_got += hdr.count
        _off, expected = self._recv_chunk()
        if self.recv_got >= expected:
            self.recv_got = 0
            self._finish_recv_step()
        self._pump_allreduce()
        if self._allreduce_done():
            yield from self._complete()

    def _on_data_broadcast(self, hdr: frames.FrameHeader, body: bytes):
        t = self.nic.timing
        op = self.op
        if body:
            yield self.nic.stage("coll_combine",
                                 t.coll_combine_per_byte * len(body))
        values = unpack_vector(body)
        self.acc[hdr.offset:hdr.offset + len(values)] = values
        self.bcast_received += hdr.count
        self.stats.steps += 1
        right = (self.config.rank + 1) % self.config.world
        if right != op.root:
            self._queue_frame(self.out_ep, frames.encode_frame(
                frames.KIND_DATA, hdr.algo, hdr.phase, hdr.group, hdr.seq,
                hdr.step, hdr.offset, hdr.count, body), "broadcast")
        if self.bcast_received >= op.nelems:
            yield from self._complete()

    def _on_token(self, hdr: frames.FrameHeader):
        rank = self.config.rank
        if rank == 0:
            if hdr.step == 0:
                self._queue_token(1)
            else:
                yield from self._complete()
        else:
            self._queue_token(hdr.step)
            if hdr.step == 1:
                yield from self._complete()

    # -- allreduce schedule -------------------------------------------------

    def _chunk_at(self, idx: int, recv: bool) -> Tuple[int, int]:
        world, rank = self.config.world, self.config.rank
        if idx < world - 1:
            chunk = (rs_recv_chunk if recv else rs_send_chunk)(
                rank, world, idx)
        else:
            chunk = (ag_recv_chunk if recv else ag_send_chunk)(
                rank, world, idx - (world - 1))
        return self._bounds[chunk]

    def _recv_chunk(self) -> Tuple[int, int]:
        return self._chunk_at(self.recv_idx, recv=True)

    def _finish_recv_step(self) -> None:
        self.recv_idx += 1
        self.stats.steps += 1
        if self.recv_idx == self.config.world - 1:
            self._end_span("collective.reduce_scatter")
            self._begin_span("collective.allgather")

    def _pump_allreduce(self) -> None:
        world = self.config.world
        total = 2 * (world - 1)
        progressed = True
        while progressed:
            progressed = False
            if self.recv_idx < total:
                _off, cnt = self._recv_chunk()
                if cnt == 0:
                    self._finish_recv_step()
                    progressed = True
                    continue
            if self.send_idx < total and (
                    self.send_idx == 0 or self.recv_idx >= self.send_idx):
                off, cnt = self._chunk_at(self.send_idx, recv=False)
                if cnt == 0:
                    self._advance_send()
                    progressed = True
                elif (cnt * ELEM > self.config.eager_threshold
                        and not self.cts_granted):
                    if not self.rts_sent:
                        self._queue_frame(self.out_ep, frames.encode_frame(
                            frames.KIND_RTS,
                            frames.ALGO_CODES["allreduce"],
                            self._send_phase(), self.config.group,
                            self.op.seq, self.send_idx, off, cnt),
                            "rendezvous")
                        self.rts_sent = True
                else:
                    phase_name = frames.PHASE_NAMES[self._send_phase()]
                    for data in self._data_frames(
                            self._send_phase(), self.send_idx, off, cnt):
                        self._queue_frame(self.out_ep, data, phase_name)
                    self._advance_send()
                    progressed = True

    def _send_phase(self) -> int:
        return (frames.PHASE_REDUCE_SCATTER
                if self.send_idx < self.config.world - 1
                else frames.PHASE_ALLGATHER)

    def _advance_send(self) -> None:
        self.send_idx += 1
        self.rts_sent = False
        self.cts_granted = False

    def _allreduce_done(self) -> bool:
        total = 2 * (self.config.world - 1)
        return (self.op is not None and self.op.algo == "allreduce"
                and self.recv_idx >= total and self.send_idx >= total)

    def _data_frames(self, phase: int, step: int, offset: int,
                     count: int) -> List[bytes]:
        """Fragment ``count`` elements at ``offset`` into DATA frames."""
        op = self.op
        out: List[bytes] = []
        done = 0
        while done < count:
            n = min(self._frame_elems, count - done)
            off = offset + done
            out.append(frames.encode_frame(
                frames.KIND_DATA, frames.ALGO_CODES[op.algo], phase,
                self.config.group, op.seq, step, off, n,
                pack_vector(self.acc[off:off + n])))
            done += n
        return out

    # -- transmit side ------------------------------------------------------

    def _queue_frame(self, ep: Optional[FwEndpoint], data: bytes,
                     phase: str, notify: bool = False) -> None:
        if ep is None:
            self._fail(WRStatus.REMOTE_ABORTED)
            return
        self._pending.setdefault(ep, deque()).append((data, phase, notify))
        # Accounted at SRAM handoff, not at wire fetch: a frame queued in
        # the same handler that completes the op must still show in the
        # stats snapshot the completing CQE triggers.
        self.stats.add_phase_bytes(phase, len(data))
        self.fw._queue_tx(ep)

    def _queue_token(self, round_: int) -> None:
        self._queue_frame(self.out_ep, frames.encode_frame(
            frames.KIND_TOKEN, frames.ALGO_CODES["barrier"], 0,
            self.config.group, self.op.seq, round_, 0, 0), "barrier")
        self.stats.steps += 1

    def has_pending(self, ep: FwEndpoint) -> bool:
        return bool(self._pending.get(ep))

    def fetch_next(self, ep: FwEndpoint):
        """Transmit-FSM service: hand one queued frame to the connection."""
        t = self.nic.timing
        yield self.nic.stage("coll_frame", t.coll_frame)
        q = self._pending.get(ep)
        if not q or ep.conn is None:
            return
        data, _phase, notify = q.popleft()
        msg_id = next(ep._msg_ids)
        try:
            ep.conn.send_message(BytesPayload(data), msg_id=msg_id)
        except ConnectionReset:
            self._fail(WRStatus.REMOTE_ABORTED)
            return
        # ACK bookkeeping is charged via "send_done"; no CQE (wr=None).
        ep.msg_map[msg_id] = None
        if notify and self.op is not None:
            yield from self._complete()

    # -- completion / failure ----------------------------------------------

    def _dma_vector_in(self, op: CollOp):
        t = self.nic.timing
        nbytes = op.nelems * ELEM
        sge = op.sge
        if sge is None or sge.length < nbytes:
            self._fail(WRStatus.LOCAL_LENGTH_ERROR)
            return
        try:
            region = self.fw.translation.check(sge.lkey, sge.addr, nbytes,
                                               Access.LOCAL_READ)
        except Exception:
            self._fail(WRStatus.LOCAL_PROTECTION_ERROR)
            return
        try:
            dma = self.nic.dma_from_host(nbytes)
        except DmaError:
            self._fail(WRStatus.LOCAL_DMA_ERROR)
            return
        if not t.overlap_dma:
            yield dma
        self.acc = unpack_vector(region.aspace.read(sge.addr, nbytes))

    def _complete(self):
        t = self.nic.timing
        op = self.op
        if op is None:
            return
        writes_back = (op.algo == "allreduce"
                       or (op.algo == "broadcast"
                           and self.config.rank != op.root))
        if writes_back and op.sge is not None and op.nelems:
            data = pack_vector(self.acc)
            try:
                region = self.fw.translation.check(
                    op.sge.lkey, op.sge.addr, len(data), Access.LOCAL_WRITE)
            except Exception:
                self._fail(WRStatus.LOCAL_PROTECTION_ERROR)
                return
            try:
                dma = self.nic.dma_to_host(len(data))
            except DmaError:
                self._fail(WRStatus.LOCAL_DMA_ERROR)
                return
            if not t.overlap_dma:
                yield dma
            region.aspace.write(op.sge.addr, data)
        if op.algo == "allreduce" and self.config.world > 1 and op.nelems:
            self._end_span("collective.allgather")
        elif op.algo == "broadcast" and self.config.world > 1 and op.nelems:
            self._end_span("collective.broadcast")
        elif op.algo == "barrier" and self.config.world > 1:
            self._end_span("collective.barrier")
        rec = obs.RECORDER
        if rec is not None:
            if op.algo == "barrier":
                rec.event("coll", "collective.barrier_release",
                          track=self._track(), group=self.config.group,
                          seq=op.seq, rank=self.config.rank)
            rec.metrics.counter("coll.ops_completed").add()
        self.stats.wall_time_us += self.sim.now - self._op_started
        self.op = None
        self.acc = [] if op.algo == "barrier" else self.acc
        self._post_op_cqe(op, WRStatus.SUCCESS)
        if self.host_ring:
            self.fw._push_action(("coll_start", self))

    def _post_op_cqe(self, op: CollOp, status: WRStatus) -> None:
        self.fw._post_cqe(self.config.cq, Completion(
            op.wr_id, COLL_QPN_BASE + self.config.group, WROpcode.COLLECTIVE,
            status=status, byte_len=op.nelems * ELEM if status is
            WRStatus.SUCCESS else 0))

    def _fail(self, status: WRStatus) -> None:
        """Fail the active op (and everything queued behind it) loudly."""
        if self.failed is not None:
            return
        self.failed = status
        rec = obs.RECORDER
        if rec is not None:
            rec.event("coll", "coll.failed", track=self._track(),
                      group=self.config.group, status=status.name)
            rec.metrics.counter("coll.failures").add()
        if self.op is not None:
            op, self.op = self.op, None
            self._post_op_cqe(op, status)
        while self.host_ring:
            self._post_op_cqe(self.host_ring.popleft(), WRStatus.FLUSHED)
        for ep in (self.in_ep, self.out_ep):
            if ep is not None and ep.conn is not None:
                ep.conn.abort()

    # -- observability ------------------------------------------------------

    def _track(self) -> str:
        return f"{self.nic.attachment.name}.coll"

    def _span_key(self, name: str):
        return ("coll", self.nic.name, self.config.group,
                self.op.seq if self.op else -1, name)

    def _begin_span(self, name: str) -> None:
        rec = obs.RECORDER
        if rec is not None:
            rec.begin("coll", name, self._span_key(name), track=self._track(),
                      group=self.config.group, rank=self.config.rank,
                      seq=self.op.seq, algo=self.op.algo)

    def _end_span(self, name: str) -> None:
        rec = obs.RECORDER
        if rec is not None:
            rec.end(self._span_key(name))
