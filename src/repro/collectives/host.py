"""Host-level collective engine: the schedule runs in the application.

Every schedule step costs the full verbs round trip — build WR, post,
doorbell, firmware send, remote CQE, host wakeup — times the number of
steps.  That per-step host overhead is exactly what the NIC-offloaded
engine (:mod:`repro.collectives.nicoffload`) eliminates, so comparing
the two engines on the same fabric isolates the offload benefit.

Both engines speak the same wire framing (:mod:`repro.collectives.frames`)
and share the one accumulation rule (:func:`repro.collectives.group.
combine_into`), so for the same seed and vector their numerical results
are bit-identical.

Two allreduce variants: the bandwidth-optimal chunked **ring**
(reduce-scatter + allgather, the NIC engine's schedule) and
**recursive doubling** (log₂ N full-vector exchanges, power-of-two
worlds) — the latency-optimal layout small SAN clusters actually ran.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from .. import obs
from ..core import QPTransport, WROpcode
from ..errors import ReproError
from ..net.addresses import Endpoint
from . import frames
from .group import (COLLECTIVE_FLOW_BASE, ELEM, CollectiveStats,
                    CollectiveWorkSpec, ag_recv_chunk, ag_send_chunk,
                    chunk_bounds, combine_into, pack_vector, rank_vector,
                    rs_recv_chunk, rs_send_chunk, unpack_vector)

# Host-side elementwise combine: a scalar float loop, slower than the
# block memcpy rate (HostTiming.copy_per_byte, ~1/360 µs/B).
HOST_COMBINE_PER_BYTE = 1 / 180.0

BUF_SIZE = 16 * 1024        # registered buffer size (>= one frame at mtu 16K)
RECV_BUFS = 8               # posted receive ring per inbound QP
MAX_SENDS = 2               # app-level sends in flight per QP


class _CollPump:
    """CQ dispatcher for one member: routes completions by QP number.

    Unlike the NBD pump, received frames are copied out and the buffer
    re-posted *immediately* — inside :meth:`pump_once` — so the peer's
    receive credit is never starved by a rank that is deep in its own
    send loop.  That property is what makes the send-all-then-receive
    step structure deadlock-free for chunks spanning many frames.
    """

    def __init__(self, iface, cq):
        self.iface = iface
        self.cq = cq
        self._qps: Dict[int, object] = {}
        self._posted: Dict[int, deque] = {}
        self._inbox: Dict[int, deque] = {}
        self._sends: Dict[int, int] = {}
        self.dead = False

    def add_qp(self, qp, recv_bufs) -> None:
        self._qps[qp.qp_num] = qp
        self._posted[qp.qp_num] = deque(recv_bufs)
        self._inbox[qp.qp_num] = deque()
        self._sends[qp.qp_num] = 0

    def pump_once(self) -> Generator:
        cqes = yield from self.iface.wait(self.cq)
        for cqe in cqes:
            if cqe.opcode is WROpcode.RECV:
                if not cqe.ok:
                    self.dead = True
                    continue
                buf = self._posted[cqe.qp_num].popleft()
                self._inbox[cqe.qp_num].append(buf.read(cqe.byte_len))
                yield from self.iface.post_recv(self._qps[cqe.qp_num],
                                                [buf.sge()])
                self._posted[cqe.qp_num].append(buf)
            else:
                self._sends[cqe.qp_num] -= 1
                if not cqe.ok:
                    self.dead = True

    def recv(self, qp) -> Generator:
        """Next received frame (raw bytes) on ``qp``, or None if broken."""
        inbox = self._inbox[qp.qp_num]
        while not inbox:
            if self.dead:
                return None
            yield from self.pump_once()
        return inbox.popleft()

    def wait_send_slot(self, qp) -> Generator:
        while self._sends[qp.qp_num] >= MAX_SENDS and not self.dead:
            yield from self.pump_once()

    def note_send(self, qp) -> None:
        self._sends[qp.qp_num] += 1


class HostCollectiveMember:
    """One rank of a host-engine collective group.

    ``addrs`` lists every rank's NIC address (rank ``i`` at index ``i``)
    so the member works identically in single-process runs and on
    cluster shards where remote ranks have no local node record.
    """

    def __init__(self, node, rank: int, addrs: Sequence,
                 spec: CollectiveWorkSpec, group: int = 0):
        self.node = node
        self.iface = node.iface
        self.host = node.host
        self.sim = node.host.sim
        self.rank = rank
        self.addrs = list(addrs)
        self.world = len(self.addrs)
        self.spec = spec
        self.group = group
        self.stats = CollectiveStats()
        spec.validate_world(self.world)
        mtu = self.iface.fw.nic.mtu
        self._frame_elems = min(frames.max_frame_elems(mtu),
                                (BUF_SIZE - frames.HEADER_SIZE) // ELEM)
        self._send_bufs: Dict[int, List] = {}
        self._send_idx: Dict[int, int] = {}
        self.pump: Optional[_CollPump] = None
        self.in_qp = None
        self.out_qp = None
        self._rd_qps: List = []

    # -- wiring --------------------------------------------------------------

    def setup(self) -> Generator:
        """Establish the group links (run as a process on every rank)."""
        self.cq = yield from self.iface.create_cq()
        self.pump = _CollPump(self.iface, self.cq)
        if self.world == 1:
            return
        if self.spec.variant == "rd":
            yield from self._setup_rd()
        else:
            yield from self._setup_ring()

    def _alloc_send_bufs(self, qp) -> Generator:
        bufs = []
        for _ in range(MAX_SENDS):
            buf = yield from self.iface.register_memory(BUF_SIZE)
            bufs.append(buf)
        self._send_bufs[qp.qp_num] = bufs
        self._send_idx[qp.qp_num] = 0

    def _recv_ring(self, qp) -> Generator:
        bufs = []
        for _ in range(RECV_BUFS):
            buf = yield from self.iface.register_memory(BUF_SIZE)
            yield from self.iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        return bufs

    def _setup_ring(self) -> Generator:
        iface = self.iface
        right = (self.rank + 1) % self.world
        self.in_qp = yield from iface.create_qp(QPTransport.TCP, self.cq,
                                                max_recv_wr=64)
        recv_bufs = yield from self._recv_ring(self.in_qp)
        listener = yield from iface.listen(self.spec.port)
        self.out_qp = yield from iface.create_qp(QPTransport.TCP, self.cq)
        yield from self._alloc_send_bufs(self.out_qp)
        accept_done = {}

        def acceptor():
            yield from iface.accept(listener, self.in_qp)
            accept_done["ok"] = True

        acc = self.sim.process(acceptor())
        yield self.sim.timeout(1000.0 + 100.0 * self.rank)
        yield from iface.connect(self.out_qp,
                                 Endpoint(self.addrs[right], self.spec.port))
        yield acc
        if not accept_done.get("ok"):
            raise ReproError(f"rank {self.rank}: collective ring accept failed")
        self.pump.add_qp(self.in_qp, recv_bufs)
        self.pump.add_qp(self.out_qp, [])

    def _setup_rd(self) -> Generator:
        """One QP per recursive-doubling round; the lower rank of each
        pair listens on ``port + 1 + round``, the higher connects."""
        iface = self.iface
        rounds = self.world.bit_length() - 1
        listeners = {}
        for k in range(rounds):
            if self.rank < self.rank ^ (1 << k):
                listeners[k] = yield from iface.listen(self.spec.port + 1 + k)
        self._rd_qps = []
        recv_rings = []
        for k in range(rounds):
            qp = yield from iface.create_qp(QPTransport.TCP, self.cq,
                                            max_recv_wr=64)
            recv_rings.append((yield from self._recv_ring(qp)))
            yield from self._alloc_send_bufs(qp)
            self._rd_qps.append(qp)
        accept_done = {}

        def acceptor(k, qp):
            yield from iface.accept(listeners[k], qp)
            accept_done[k] = True

        procs = []
        for k in range(rounds):
            if k in listeners:
                procs.append(self.sim.process(acceptor(k, self._rd_qps[k])))
        yield self.sim.timeout(1000.0 + 100.0 * self.rank)
        for k in range(rounds):
            partner = self.rank ^ (1 << k)
            if self.rank > partner:
                yield from iface.connect(
                    self._rd_qps[k],
                    Endpoint(self.addrs[partner], self.spec.port + 1 + k))
        for p in procs:
            yield p
        if len(accept_done) != len(listeners):
            raise ReproError(f"rank {self.rank}: rd pair accept failed")
        for qp, bufs in zip(self._rd_qps, recv_rings):
            self.pump.add_qp(qp, bufs)

    # -- framed send/recv ----------------------------------------------------

    def _send_frame(self, qp, data: bytes, phase: str) -> Generator:
        yield from self.pump.wait_send_slot(qp)
        if self.pump.dead:
            raise ReproError(f"rank {self.rank}: collective link broken")
        idx = self._send_idx[qp.qp_num]
        self._send_idx[qp.qp_num] = (idx + 1) % MAX_SENDS
        buf = self._send_bufs[qp.qp_num][idx]
        buf.write(data)
        yield from self.iface.post_send(qp, [buf.sge(0, len(data))])
        self.pump.note_send(qp)
        self.stats.add_phase_bytes(phase, len(data))

    def _recv_frame(self, qp, algo_code: int) -> Generator:
        data = yield from self.pump.recv(qp)
        if data is None:
            raise ReproError(f"rank {self.rank}: collective link broken")
        hdr, body = frames.decode_frame(data)
        if hdr.group != self.group or hdr.algo != algo_code:
            raise ReproError(
                f"rank {self.rank}: unexpected collective frame {hdr}")
        return hdr, body

    def _data_frames(self, vector: Sequence[float], algo: int, phase: int,
                     step: int, offset: int, count: int) -> List[bytes]:
        out = []
        done = 0
        while done < count:
            n = min(self._frame_elems, count - done)
            off = offset + done
            out.append(frames.encode_frame(
                frames.KIND_DATA, algo, phase, self.group, 0, step, off, n,
                pack_vector(vector[off:off + n])))
            done += n
        return out

    # -- collectives ---------------------------------------------------------

    def run(self, values: Optional[Sequence[float]] = None) -> Generator:
        """Execute the spec's operation; returns the result vector
        (allreduce/broadcast) or None (barrier)."""
        spec = self.spec
        if values is None and spec.algo != "barrier":
            if spec.algo == "allreduce" or self.rank == spec.root:
                values = rank_vector(self.rank, self.world, spec.vector_len,
                                     spec.seed)
            else:
                values = [0.0] * spec.vector_len
        t0 = self.sim.now
        rec = obs.RECORDER
        if rec is not None:
            rec.event("coll", "coll.start", track=self._track(),
                      group=self.group, seq=0, algo=spec.algo,
                      rank=self.rank, nelems=spec.vector_len,
                      engine="host")
            rec.metrics.counter("coll.ops_started").add()
        if spec.algo == "barrier":
            result = None
            yield from self._barrier()
        elif spec.algo == "broadcast":
            result = yield from self._broadcast(values)
        elif spec.variant == "rd":
            result = yield from self._allreduce_rd(values)
        else:
            result = yield from self._allreduce_ring(values)
        self.stats.wall_time_us += self.sim.now - t0
        if rec is not None:
            rec.metrics.counter("coll.ops_completed").add()
        return result

    def _allreduce_ring(self, values: Sequence[float]) -> Generator:
        world, rank = self.world, self.rank
        acc = list(values)
        if world == 1 or not acc:
            return acc
        algo = frames.ALGO_CODES["allreduce"]
        bounds = chunk_bounds(len(acc), world)
        total = 2 * (world - 1)
        self._begin_span("collective.reduce_scatter")
        for step in range(total):
            rs = step < world - 1
            s = step if rs else step - (world - 1)
            phase_code = (frames.PHASE_REDUCE_SCATTER if rs
                          else frames.PHASE_ALLGATHER)
            phase = frames.PHASE_NAMES[phase_code]
            send_fn = rs_send_chunk if rs else ag_send_chunk
            recv_fn = rs_recv_chunk if rs else ag_recv_chunk
            send_off, send_cnt = bounds[send_fn(rank, world, s)]
            recv_off, recv_cnt = bounds[recv_fn(rank, world, s)]
            for data in self._data_frames(acc, algo, phase_code, step,
                                          send_off, send_cnt):
                yield from self._send_frame(self.out_qp, data, phase)
            got = 0
            while got < recv_cnt:
                hdr, body = yield from self._recv_frame(self.in_qp, algo)
                incoming = unpack_vector(body)
                if rs:
                    yield self.host.cpu.submit(
                        HOST_COMBINE_PER_BYTE * len(body), "collective")
                    combine_into(acc, hdr.offset, incoming)
                else:
                    yield self.host.cpu.submit(
                        self.host.copy_cost(len(body)), "collective")
                    acc[hdr.offset:hdr.offset + len(incoming)] = incoming
                got += hdr.count
            self.stats.steps += 1
            if step == world - 2:
                self._end_span("collective.reduce_scatter")
                self._begin_span("collective.allgather")
        self._end_span("collective.allgather")
        return acc

    def _allreduce_rd(self, values: Sequence[float]) -> Generator:
        world, rank = self.world, self.rank
        acc = list(values)
        if world == 1 or not acc:
            return acc
        n = len(acc)
        algo = frames.ALGO_CODES["allreduce"]
        self._begin_span("collective.allreduce")
        k, step = 1, 0
        while k < world:
            qp = self._rd_qps[step]
            # Snapshot before combining: the partner must see this
            # round's *input*, not a half-combined vector.
            outgoing = acc[:]
            for data in self._data_frames(outgoing, algo, 0, step, 0, n):
                yield from self._send_frame(qp, data, "rd_exchange")
            got = 0
            while got < n:
                hdr, body = yield from self._recv_frame(qp, algo)
                yield self.host.cpu.submit(
                    HOST_COMBINE_PER_BYTE * len(body), "collective")
                combine_into(acc, hdr.offset, unpack_vector(body))
                got += hdr.count
            self.stats.steps += 1
            k <<= 1
            step += 1
        self._end_span("collective.allreduce")
        return acc

    def _broadcast(self, values: Sequence[float]) -> Generator:
        world, rank, root = self.world, self.rank, self.spec.root
        acc = list(values)
        n = len(acc)
        if world == 1 or n == 0:
            return acc
        algo = frames.ALGO_CODES["broadcast"]
        right = (rank + 1) % world
        self._begin_span("collective.broadcast")
        if rank == root:
            for data in self._data_frames(acc, algo, 0, 0, 0, n):
                yield from self._send_frame(self.out_qp, data, "broadcast")
                self.stats.steps += 1
        else:
            got = 0
            while got < n:
                hdr, body = yield from self._recv_frame(self.in_qp, algo)
                yield self.host.cpu.submit(
                    self.host.copy_cost(len(body)), "collective")
                incoming = unpack_vector(body)
                acc[hdr.offset:hdr.offset + len(incoming)] = incoming
                got += hdr.count
                self.stats.steps += 1
                if right != root:
                    yield from self._send_frame(
                        self.out_qp, frames.encode_frame(
                            frames.KIND_DATA, algo, 0, self.group, 0,
                            hdr.step, hdr.offset, hdr.count, body),
                        "broadcast")
        self._end_span("collective.broadcast")
        return acc

    def _barrier(self) -> Generator:
        if self.world == 1:
            return
        algo = frames.ALGO_CODES["barrier"]
        self._begin_span("collective.barrier")
        for round_ in range(2):
            if self.rank == 0:
                yield from self._send_frame(self.out_qp, frames.encode_frame(
                    frames.KIND_TOKEN, algo, 0, self.group, 0, round_, 0, 0),
                    "barrier")
                yield from self._recv_frame(self.in_qp, algo)
            else:
                hdr, _ = yield from self._recv_frame(self.in_qp, algo)
                yield from self._send_frame(self.out_qp, frames.encode_frame(
                    frames.KIND_TOKEN, algo, 0, self.group, 0, hdr.step,
                    0, 0), "barrier")
            self.stats.steps += 1
        self._end_span("collective.barrier")
        rec = obs.RECORDER
        if rec is not None:
            rec.event("coll", "collective.barrier_release",
                      track=self._track(), group=self.group, seq=0,
                      rank=self.rank)

    # -- observability -------------------------------------------------------

    def _track(self) -> str:
        return f"{self.iface.fw.nic.attachment.name}.coll"

    def _span_key(self, name: str):
        return ("coll-host", self.iface.fw.nic.name, self.group, 0, name)

    def _begin_span(self, name: str) -> None:
        rec = obs.RECORDER
        if rec is not None:
            rec.begin("coll", name, self._span_key(name), track=self._track(),
                      group=self.group, rank=self.rank, seq=0,
                      algo=self.spec.algo, engine="host")

    def _end_span(self, name: str) -> None:
        rec = obs.RECORDER
        if rec is not None:
            rec.end(self._span_key(name))
