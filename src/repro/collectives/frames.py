"""Collective wire frames: a fixed 18-byte header plus packed float64s.

Both engines speak this framing (one frame per TCP message), so their
byte counts — and under fault injection their retransmit behavior — are
directly comparable.  The header carries an op sequence number so a
rank that finishes op ``k`` and immediately posts op ``k+1`` cannot
confuse a neighbor still draining op ``k``: frames for a future op are
buffered by sequence, never dropped.
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Tuple

from ..errors import NetworkError

# version, kind, algo, phase, group, seq, step, offset_elems, count_elems
HEADER = struct.Struct("!BBBBHHHII")
HEADER_SIZE = HEADER.size   # 18 bytes
VERSION = 1

KIND_DATA = 1    # payload carries count_elems float64s at offset_elems
KIND_RTS = 2     # rendezvous request-to-send for (phase, step)
KIND_CTS = 3     # rendezvous clear-to-send, flows on the reverse path
KIND_TOKEN = 4   # barrier token; step is the round (0 = gather, 1 = release)

KIND_NAMES = {KIND_DATA: "DATA", KIND_RTS: "RTS",
              KIND_CTS: "CTS", KIND_TOKEN: "TOKEN"}

ALGO_CODES = {"barrier": 0, "broadcast": 1, "allreduce": 2}
ALGO_NAMES = {code: name for name, code in ALGO_CODES.items()}

PHASE_REDUCE_SCATTER = 0
PHASE_ALLGATHER = 1
PHASE_NAMES = {PHASE_REDUCE_SCATTER: "reduce_scatter",
               PHASE_ALLGATHER: "allgather"}

# Transport budget: QPIP TCP's max message is the effective MSS
# (mtu - 60 IP/TCP - 12 timestamp option); keep a small margin.
_TRANSPORT_OVERHEAD = 80


class FrameHeader(NamedTuple):
    kind: int
    algo: int
    phase: int
    group: int
    seq: int
    step: int
    offset: int     # element offset into the vector
    count: int      # element count in this frame's payload


def max_frame_elems(mtu: int) -> int:
    elems = (mtu - _TRANSPORT_OVERHEAD - HEADER_SIZE) // 8
    if elems < 1:
        raise NetworkError(f"mtu {mtu} too small for collective frames")
    return elems


def encode_frame(kind: int, algo: int, phase: int, group: int, seq: int,
                 step: int, offset: int, count: int,
                 payload: bytes = b"") -> bytes:
    return HEADER.pack(VERSION, kind, algo, phase, group,
                       seq & 0xFFFF, step, offset, count) + payload


def decode_frame(data: bytes) -> Tuple[FrameHeader, bytes]:
    if len(data) < HEADER_SIZE:
        raise NetworkError(f"short collective frame: {len(data)} bytes")
    version, kind, algo, phase, group, seq, step, offset, count = \
        HEADER.unpack_from(data)
    if version != VERSION:
        raise NetworkError(f"collective frame version {version}")
    if kind not in KIND_NAMES:
        raise NetworkError(f"unknown collective frame kind {kind}")
    payload = data[HEADER_SIZE:]
    if kind == KIND_DATA and len(payload) != count * 8:
        raise NetworkError(
            f"frame payload {len(payload)}B does not match count {count}")
    return FrameHeader(kind, algo, phase, group, seq, step, offset, count), \
        payload
