"""Collective group math: schedules, oracles, stats — no simulator deps.

Everything the two engines must agree on byte-for-byte lives here:

* the ring reduce-scatter / allgather chunk schedule,
* the single :func:`combine_into` accumulation rule (operand order is
  part of the contract — both engines produce bit-identical float64
  results for the same seed/vector because they share this function),
* deterministic per-rank test vectors (:func:`rank_vector`) chosen
  integer-valued so float64 sums are exact in *any* association order,
  which is what lets the recursive-doubling variant match the oracle
  bit-for-bit too,
* pure in-memory executors (:func:`ring_allreduce_local`,
  :func:`recursive_doubling_local`) used as numpy-free oracles by the
  property tests.

The ring schedule (bandwidth-optimal, Baidu/Horovod style): with world
``N`` and the vector split into ``N`` chunks, reduce-scatter step
``s ∈ [0, N-2]`` has rank ``r`` send chunk ``(r - s) mod N`` to rank
``r+1`` and combine incoming chunk ``(r - s - 1) mod N`` from rank
``r-1``; after ``N-1`` steps rank ``r`` owns the fully reduced chunk
``(r + 1) mod N``.  Allgather step ``s`` sends chunk ``(r + 1 - s) mod
N`` and overwrites incoming chunk ``(r - s) mod N``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..errors import ConfigError

ELEM = 8                      # bytes per float64 element
COLLECTIVE_PORT = 12000       # default TCP port for collective rings
ALGOS = ("barrier", "broadcast", "allreduce")
ENGINES = ("host", "nic")
VARIANTS = ("ring", "rd")

# Collective rank records land in cluster results under
# ``COLLECTIVE_FLOW_BASE + rank`` so they can never collide with flow ids.
COLLECTIVE_FLOW_BASE = 100_000


def pack_vector(values: Sequence[float]) -> bytes:
    return struct.pack(f"!{len(values)}d", *values)


def unpack_vector(data: bytes) -> List[float]:
    return list(struct.unpack(f"!{len(data) // ELEM}d", data))


@dataclass
class CollectiveStats:
    """Honest per-rank accounting, filled from sim-clock deltas.

    ``wall_time_us`` is ``done_at - start_at`` on the simulated clock
    (post-to-completion as the application observes it).  ``bytes_sent``
    counts bytes handed to the transport including frame headers;
    ``phase_bytes`` splits the same total by phase name.
    """

    steps: int = 0
    bytes_sent: int = 0
    wall_time_us: float = 0.0
    phase_bytes: Dict[str, int] = field(default_factory=dict)

    def add_phase_bytes(self, phase: str, nbytes: int) -> None:
        self.bytes_sent += nbytes
        self.phase_bytes[phase] = self.phase_bytes.get(phase, 0) + nbytes

    def to_dict(self) -> Dict[str, object]:
        return {
            "steps": self.steps,
            "bytes_sent": self.bytes_sent,
            "wall_time_us": self.wall_time_us,
            "phase_bytes": dict(sorted(self.phase_bytes.items())),
        }


@dataclass(frozen=True)
class CollectiveWorkSpec:
    """One collective operation over every host of a cluster spec.

    World size is implied by ``ClusterSpec.hosts`` — rank ``i`` runs on
    host ``i``.  ``variant="rd"`` (recursive doubling) is host-engine
    allreduce only and needs a power-of-two world; the NIC engine
    implements the ring schedule for all three algorithms.
    """

    algo: str = "allreduce"
    engine: str = "nic"
    vector_len: int = 1024
    root: int = 0
    seed: int = 1
    eager_threshold: int = 4096   # bytes; chunks above go rendezvous
    variant: str = "ring"
    port: int = COLLECTIVE_PORT
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.algo not in ALGOS:
            raise ConfigError(f"unknown collective algo {self.algo!r}")
        if self.engine not in ENGINES:
            raise ConfigError(f"unknown collective engine {self.engine!r}")
        if self.variant not in VARIANTS:
            raise ConfigError(f"unknown collective variant {self.variant!r}")
        if self.variant == "rd" and (self.engine != "host"
                                     or self.algo != "allreduce"):
            raise ConfigError(
                "recursive doubling is host-engine allreduce only")
        if self.vector_len < 0:
            raise ConfigError("vector_len must be >= 0")
        if self.eager_threshold < 0:
            raise ConfigError("eager_threshold must be >= 0")
        if not 0 < self.port < 65536:
            raise ConfigError("port must be a valid TCP port")
        if self.root < 0:
            raise ConfigError("root must be >= 0")
        if self.start < 0:
            raise ConfigError("start must be >= 0")

    def validate_world(self, world: int) -> None:
        if world < 1:
            raise ConfigError("collective needs at least one rank")
        if self.root >= world:
            raise ConfigError(f"root {self.root} outside world {world}")
        if self.variant == "rd" and world & (world - 1):
            raise ConfigError(
                f"recursive doubling needs a power-of-two world, got {world}")


def rank_vector(rank: int, world: int, length: int, seed: int) -> List[float]:
    """Deterministic integer-valued contribution of ``rank``.

    Values lie in [-500, 500]; with world <= 1024 every partial sum is
    an integer well inside float64's exact range, so the reduced result
    is bit-identical no matter how additions associate.
    """
    return [float((seed * 31 + rank * 7 + i * 3) % 1001 - 500)
            for i in range(length)]


def allreduce_oracle(world: int, length: int, seed: int) -> List[float]:
    """Element-wise sum of every rank's vector, folded in rank order."""
    acc = [0.0] * length
    for rank in range(world):
        contrib = rank_vector(rank, world, length, seed)
        for i in range(length):
            acc[i] = acc[i] + contrib[i]
    return acc


def chunk_bounds(length: int, world: int) -> List[Tuple[int, int]]:
    """``(offset, count)`` for each of ``world`` chunks; remainder spread
    over the leading chunks so sizes differ by at most one element."""
    base, rem = divmod(length, world)
    bounds: List[Tuple[int, int]] = []
    offset = 0
    for i in range(world):
        count = base + (1 if i < rem else 0)
        bounds.append((offset, count))
        offset += count
    return bounds


def rs_send_chunk(rank: int, world: int, step: int) -> int:
    return (rank - step) % world


def rs_recv_chunk(rank: int, world: int, step: int) -> int:
    return (rank - step - 1) % world


def ag_send_chunk(rank: int, world: int, step: int) -> int:
    return (rank + 1 - step) % world


def ag_recv_chunk(rank: int, world: int, step: int) -> int:
    return (rank - step) % world


def combine_into(acc: List[float], offset: int,
                 incoming: Sequence[float]) -> None:
    """The one accumulation rule: ``acc[o+i] = incoming[i] + acc[o+i]``.

    Operand order is deliberate and shared by both engines; changing it
    changes bit patterns for non-integer inputs.
    """
    for i, value in enumerate(incoming):
        acc[offset + i] = value + acc[offset + i]


def peer_pairs(world: int, algo: str = "allreduce",
               variant: str = "ring") -> List[Tuple[int, int]]:
    """Unordered rank pairs that exchange traffic, for route install."""
    pairs: Set[Tuple[int, int]] = set()
    if world < 2:
        return []
    if variant == "rd":
        k = 1
        while k < world:
            for r in range(world):
                p = r ^ k
                pairs.add((min(r, p), max(r, p)))
            k <<= 1
    else:
        for r in range(world):
            p = (r + 1) % world
            pairs.add((min(r, p), max(r, p)))
    return sorted(pairs)


def ring_allreduce_local(vectors: Sequence[Sequence[float]]) -> List[List[float]]:
    """Pure in-memory execution of the ring schedule — the oracle the
    property tests hold both simulated engines against."""
    world = len(vectors)
    if world == 0:
        raise ConfigError("need at least one vector")
    length = len(vectors[0])
    accs = [list(v) for v in vectors]
    if world == 1:
        return accs
    bounds = chunk_bounds(length, world)
    for step in range(world - 1):
        outgoing = []
        for r in range(world):
            off, cnt = bounds[rs_send_chunk(r, world, step)]
            outgoing.append(accs[r][off:off + cnt])
        for r in range(world):
            chunk = rs_recv_chunk(r, world, step)
            off, _cnt = bounds[chunk]
            combine_into(accs[r], off, outgoing[(r - 1) % world])
    for step in range(world - 1):
        outgoing = []
        for r in range(world):
            off, cnt = bounds[ag_send_chunk(r, world, step)]
            outgoing.append(accs[r][off:off + cnt])
        for r in range(world):
            chunk = ag_recv_chunk(r, world, step)
            off, cnt = bounds[chunk]
            accs[r][off:off + cnt] = outgoing[(r - 1) % world]
    return accs


def recursive_doubling_local(vectors: Sequence[Sequence[float]]) -> List[List[float]]:
    """In-memory recursive doubling; world must be a power of two."""
    world = len(vectors)
    if world == 0 or world & (world - 1):
        raise ConfigError("recursive doubling needs a power-of-two world")
    accs = [list(v) for v in vectors]
    k = 1
    while k < world:
        snapshot = [list(a) for a in accs]
        for r in range(world):
            combine_into(accs[r], 0, snapshot[r ^ k])
        k <<= 1
    return accs
