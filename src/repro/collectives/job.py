"""CollectiveJob: one collective workload on a fabric blueprint, at scale.

Thin orchestration over :mod:`repro.cluster`: build a ``ClusterSpec``
whose every host is one rank, run it single-process or sharded, and
summarize the per-rank records into the exactness checks that matter —
all ranks agree, and they agree with the pure (non-simulated) oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigError
from .group import (COLLECTIVE_FLOW_BASE, CollectiveWorkSpec,
                    allreduce_oracle, rank_vector)
from .runner import result_digest

# repro.cluster imports this package (spec field, shard drivers), so the
# reverse imports happen lazily inside the functions below.


def collective_cluster_spec(work: CollectiveWorkSpec, hosts: int = 16,
                            topology: str = "fat-tree",
                            hosts_per_edge: int = 4, spines: int = 2,
                            ring_switches: int = 4,
                            horizon: float = 5_000_000.0,
                            metrics: bool = False, seed: int = 1,
                            mtu: int = 16384) -> "ClusterSpec":
    """A ClusterSpec whose only workload is ``work`` over all hosts."""
    from ..cluster import ClusterSpec
    work.validate_world(hosts)
    return ClusterSpec(topology=topology, hosts=hosts,
                       hosts_per_edge=hosts_per_edge, spines=spines,
                       ring_switches=ring_switches, horizon=horizon,
                       seed=seed, mtu=mtu, metrics=metrics, collective=work)


def expected_digest(work: CollectiveWorkSpec, world: int) -> str:
    """Digest of the correct result, computed without the simulator."""
    if work.algo == "barrier":
        return result_digest(None)
    if work.algo == "broadcast":
        return result_digest(rank_vector(work.root, world, work.vector_len,
                                         work.seed))
    return result_digest(allreduce_oracle(world, work.vector_len, work.seed))


def summarize_collective(result, work: CollectiveWorkSpec) -> Dict:
    """Fold a ClusterResult's per-rank records into one summary dict."""
    ranks = {fid - COLLECTIVE_FLOW_BASE: rec
             for fid, rec in result.flows.items()
             if fid >= COLLECTIVE_FLOW_BASE}
    if not ranks:
        raise ConfigError("run produced no collective records")
    world = len(ranks)
    digests = sorted({rec["result_digest"] for rec in ranks.values()})
    statuses = sorted({rec["status"] for rec in ranks.values()})
    walls = [rec["stats"]["wall_time_us"] for rec in ranks.values()]
    expected = expected_digest(work, world)
    return {
        "engine": work.engine,
        "algo": work.algo,
        "variant": work.variant,
        "world": world,
        "vector_len": work.vector_len,
        "status_ok": statuses == ["SUCCESS"],
        "statuses": statuses,
        "ranks_agree": len(digests) == 1,
        "result_digest": digests[0] if len(digests) == 1 else None,
        "expected_digest": expected,
        "oracle_match": digests == [expected],
        "max_wall_time_us": max(walls),
        "mean_wall_time_us": sum(walls) / world,
        "total_bytes_sent": sum(rec["stats"]["bytes_sent"]
                                for rec in ranks.values()),
        "steps_per_rank": sorted({rec["stats"]["steps"]
                                  for rec in ranks.values()}),
        "sim_events": result.events,
        "sim_now_us": result.now,
        "wall_s": result.wall_s,
    }


@dataclass
class CollectiveJob:
    """Run one collective op end to end and summarize it.

    ``workers > 1`` shards the fabric; ``check_determinism`` additionally
    runs the single-process oracle and asserts bit-identical observables
    (``assert_equivalent``) before reporting.
    """

    work: CollectiveWorkSpec
    hosts: int = 16
    topology: str = "fat-tree"
    hosts_per_edge: int = 4
    spines: int = 2
    ring_switches: int = 4
    workers: int = 1
    processes: bool = False
    check_determinism: bool = False
    metrics: bool = False
    horizon: float = 5_000_000.0
    mtu: int = 16384
    seed: int = 1
    spec: Optional[object] = None       # built ClusterSpec (or inject one)

    def __post_init__(self) -> None:
        if self.spec is None:
            self.spec = collective_cluster_spec(
                self.work, hosts=self.hosts, topology=self.topology,
                hosts_per_edge=self.hosts_per_edge, spines=self.spines,
                ring_switches=self.ring_switches, horizon=self.horizon,
                metrics=self.metrics, seed=self.seed, mtu=self.mtu)

    def run(self) -> Dict:
        from ..cluster import assert_equivalent, run_cluster, run_single
        checked = False
        if self.check_determinism and self.workers > 1:
            oracle = run_single(self.spec)
            sharded = run_cluster(self.spec, self.workers,
                                  processes=self.processes)
            assert_equivalent(oracle, sharded)
            result = sharded
            checked = True
        else:
            result = run_cluster(self.spec, self.workers,
                                 processes=self.processes)
        summary = summarize_collective(result, self.work)
        summary["workers"] = self.workers
        summary["determinism_checked"] = checked
        return summary
