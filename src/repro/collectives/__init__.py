"""NIC-offloaded and host-level collectives over QPIP fabrics.

Two swappable engines run the same algorithms over the same wire
framing:

* **host** (:mod:`repro.collectives.host`) — the schedule runs in the
  application; every step pays the full verbs round trip (post,
  doorbell, firmware, CQE, wakeup).
* **nic** (:mod:`repro.collectives.nicoffload`) — the schedule runs in
  firmware; the host doorbells once and receives a single CQE.

Shared pieces: :mod:`~repro.collectives.group` (schedules, the one
accumulation rule, numpy-free oracles), :mod:`~repro.collectives.frames`
(the 18-byte wire header), :mod:`~repro.collectives.runner` (per-rank
drivers shared by single-process and sharded runs), and
:mod:`~repro.collectives.job` (the end-to-end runner).
"""

from .frames import HEADER_SIZE, decode_frame, encode_frame, max_frame_elems
from .group import (ALGOS, COLLECTIVE_FLOW_BASE, COLLECTIVE_PORT, ELEM,
                    ENGINES, VARIANTS, CollectiveStats, CollectiveWorkSpec,
                    allreduce_oracle, chunk_bounds, combine_into, peer_pairs,
                    rank_vector, recursive_doubling_local,
                    ring_allreduce_local)
from .host import HostCollectiveMember
from .job import (CollectiveJob, collective_cluster_spec, expected_digest,
                  summarize_collective)
from .runner import collective_rank_driver, initial_vector, result_digest

__all__ = [
    "ALGOS", "ENGINES", "VARIANTS", "ELEM",
    "COLLECTIVE_FLOW_BASE", "COLLECTIVE_PORT",
    "CollectiveStats", "CollectiveWorkSpec",
    "allreduce_oracle", "chunk_bounds", "combine_into", "peer_pairs",
    "rank_vector", "ring_allreduce_local", "recursive_doubling_local",
    "HEADER_SIZE", "encode_frame", "decode_frame", "max_frame_elems",
    "HostCollectiveMember",
    "CollectiveJob", "collective_cluster_spec", "expected_digest",
    "summarize_collective",
    "collective_rank_driver", "initial_vector", "result_digest",
]
