"""Collective latency curves: NIC offload vs host engine.

Feeds the BENCH pipeline: results merge into ``BENCH_perf.json`` under
``"collectives"`` and ``benchmarks/bench_collectives.py`` renders them.

The comparison is honest because both engines run the identical ring
schedule and :func:`~repro.collectives.group.combine_into` rule over the
same fabric blueprint — the latency gap is attributable to architecture
alone.  The host engine pays a full verbs round trip (post, doorbell,
firmware, CQE, process wakeup) per schedule step; the NIC engine
doorbells once, runs the schedule in firmware, and raises a single CQE.
Exactness is checked in the same run: every point records whether all
ranks agreed with the pure oracle and whether the two engines produced
bit-identical result digests.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable

from ..errors import ConfigError
from .group import ENGINES, CollectiveWorkSpec
from .job import CollectiveJob

QUICK_WORLDS = (8, 16)
FULL_WORLDS = (16, 32, 64)


def _one_point(engine: str, world: int, algo: str, vector_len: int,
               seed: int, horizon: float) -> Dict:
    work = CollectiveWorkSpec(algo=algo, engine=engine,
                              vector_len=vector_len, seed=seed)
    summary = CollectiveJob(work, hosts=world, horizon=horizon,
                            seed=seed).run()
    return {
        "latency_us": round(summary["max_wall_time_us"], 3),
        "mean_wall_time_us": round(summary["mean_wall_time_us"], 3),
        "total_bytes_sent": summary["total_bytes_sent"],
        "steps_per_rank": summary["steps_per_rank"],
        "sim_events": summary["sim_events"],
        "wall_s": round(summary["wall_s"], 4),
        "result_digest": summary["result_digest"],
        "ok": bool(summary["status_ok"] and summary["ranks_agree"]
                   and summary["oracle_match"]),
    }


def measure_collectives(worlds: Iterable[int] = FULL_WORLDS,
                        algo: str = "allreduce", vector_len: int = 256,
                        seed: int = 1,
                        horizon: float = 20_000_000.0) -> Dict:
    """NIC-vs-host latency at each world size, exactness checked inline."""
    worlds = tuple(worlds)
    if not worlds:
        raise ConfigError("collective bench needs at least one world size")
    report: Dict = {
        "algo": algo,
        "vector_len": vector_len,
        "seed": seed,
        "worlds": list(worlds),
        "curves": {engine: {} for engine in ENGINES},
        "nic_speedup": {},
        "engines_agree": True,
        "all_ok": True,
    }
    for world in worlds:
        points = {engine: _one_point(engine, world, algo, vector_len,
                                     seed, horizon)
                  for engine in ENGINES}
        for engine, point in points.items():
            report["curves"][engine][str(world)] = point
            report["all_ok"] = report["all_ok"] and point["ok"]
        if points["host"]["result_digest"] != points["nic"]["result_digest"]:
            report["engines_agree"] = False
        host_us = points["host"]["latency_us"]
        nic_us = points["nic"]["latency_us"]
        report["nic_speedup"][str(world)] = (
            round(host_us / nic_us, 3) if nic_us else 0.0)
    largest = str(max(worlds))
    report["nic_wins_at_largest"] = (
        report["curves"]["nic"][largest]["latency_us"]
        <= report["curves"]["host"][largest]["latency_us"])
    return report


def merge_into_bench_report(curves: Dict,
                            path: str = "BENCH_perf.json") -> str:
    """Record the collective curves alongside the kernel perf report."""
    report = {}
    if os.path.exists(path):
        with open(path) as f:
            report = json.load(f)
    report["collectives"] = curves
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def render_curves(curves: Dict) -> str:
    lines = [
        f"collectives: {curves['algo']} of {curves['vector_len']} float64 "
        f"(seed {curves['seed']})",
        f"{'hosts':>8} {'host us':>12} {'nic us':>12} {'speedup':>8} "
        f"{'host bytes':>12} {'nic bytes':>12}",
    ]
    for world in sorted(curves["curves"]["host"], key=int):
        host = curves["curves"]["host"][world]
        nic = curves["curves"]["nic"][world]
        lines.append(
            f"{world:>8} {host['latency_us']:>12,.1f} "
            f"{nic['latency_us']:>12,.1f} "
            f"{curves['nic_speedup'][world]:>8.2f} "
            f"{host['total_bytes_sent']:>12,} "
            f"{nic['total_bytes_sent']:>12,}")
    lines.append(
        f"  exactness: all ranks match the oracle: {curves['all_ok']}; "
        f"engines bit-identical: {curves['engines_agree']}")
    lines.append(
        f"  nic offload wins at the largest size: "
        f"{curves['nic_wins_at_largest']}")
    return "\n".join(lines)
