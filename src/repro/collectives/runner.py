"""Per-rank collective drivers for single-process and cluster runs.

The same generators execute in the one-kernel oracle and on every
cluster shard (the :mod:`repro.cluster.workloads` pattern), so sharded
collective runs are bit-for-bit comparable via ``assert_equivalent``.
Each rank's record lands under ``COLLECTIVE_FLOW_BASE + rank`` in the
cluster flow results and carries a stable digest of the packed result
vector — the observable the gate invariants compare across ranks and
against the pure oracle.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from ..core import WROpcode
from ..net.addresses import IPv6Address
from ..tools.inspect import stable_digest
from .group import (ELEM, CollectiveStats, CollectiveWorkSpec, pack_vector,
                    rank_vector, unpack_vector)
from .host import HostCollectiveMember


def result_digest(result: Optional[Sequence[float]]) -> str:
    """Stable digest of a result vector (None and [] digest alike)."""
    return stable_digest(pack_vector(list(result or [])))


def _fill_record(record: Dict, sim, spec: CollectiveWorkSpec, rank: int,
                 world: int, status: str, result, stats: CollectiveStats
                 ) -> None:
    vec = list(result or [])
    record["engine"] = spec.engine
    record["algo"] = spec.algo
    record["variant"] = spec.variant
    record["rank"] = rank
    record["world"] = world
    record["status"] = status
    record["result_len"] = len(vec)
    record["result_head"] = vec[:4]
    record["result_digest"] = result_digest(vec)
    record["stats"] = stats.to_dict()
    record["done_at"] = sim.now


def initial_vector(spec: CollectiveWorkSpec, rank: int,
                   world: int) -> List[float]:
    """The rank's contribution: seeded values for allreduce (and for the
    broadcast root), zeros elsewhere."""
    if spec.algo == "allreduce" or rank == spec.root:
        return rank_vector(rank, world, spec.vector_len, spec.seed)
    return [0.0] * spec.vector_len


def _host_rank(sim, node, rank: int, world: int, spec: CollectiveWorkSpec,
               record: Dict) -> Generator:
    addrs = [IPv6Address.from_index(i + 1) for i in range(world)]
    member = HostCollectiveMember(node, rank, addrs, spec)
    yield from member.setup()
    result = yield from member.run()
    _fill_record(record, sim, spec, rank, world, "SUCCESS", result,
                 member.stats)


def _nic_rank(sim, node, rank: int, world: int, spec: CollectiveWorkSpec,
              record: Dict) -> Generator:
    iface = node.iface
    nelems = 0 if spec.algo == "barrier" else spec.vector_len
    cq = yield from iface.create_cq()
    buf = None
    sge = None
    if nelems:
        buf = yield from iface.register_memory(nelems * ELEM)
        buf.write(pack_vector(initial_vector(spec, rank, world)))
        sge = buf.sge(0, nelems * ELEM)
    right = (IPv6Address.from_index((rank + 1) % world + 1)
             if world > 1 else None)
    yield from iface.coll_create(0, rank, world, right, spec.port, cq,
                                 eager_threshold=spec.eager_threshold)
    yield from iface.coll_post(0, spec.algo, nelems, sge, root=spec.root,
                               wr_id=rank)
    cqe = None
    while cqe is None:
        for c in (yield from iface.wait(cq)):
            if c.opcode is WROpcode.COLLECTIVE:
                cqe = c
    result = None
    if buf is not None and cqe.ok:
        result = unpack_vector(buf.read(nelems * ELEM))
    unit = iface.fw.collectives[0]
    _fill_record(record, sim, spec, rank, world, cqe.status.name, result,
                 unit.stats)


def collective_rank_driver(sim, node, rank: int, world: int,
                           spec: CollectiveWorkSpec,
                           record: Dict) -> Generator:
    """One rank of the spec's collective; fills ``record`` when done."""
    spec.validate_world(world)
    if spec.start:
        yield sim.timeout(spec.start)
    if spec.engine == "host":
        yield from _host_rank(sim, node, rank, world, spec, record)
    else:
        yield from _nic_rank(sim, node, rank, world, spec, record)
