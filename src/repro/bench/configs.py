"""Experiment testbeds: the three systems of the paper's evaluation.

* ``build_gige_pair``   — host TCP/IP over Gigabit Ethernet (1500 B MTU)
* ``build_gm_pair``     — host TCP/IP over Myrinet/GM (9000 B MTU)
* ``build_qpip_pair``   — QPIP: QPs over TCP/UDP/IPv6 in the NIC
                          (native 16 KB MTU; checksum/hardware variants)

Each returns two node records wired through the right fabric, ready for
the application layer (ping-pong, ttcp, NBD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..fabric import EthernetFabric, MyrinetFabric
from ..hw import (DumbNic, GmNic, Host, HostTiming, LanaiTiming,
                  ProgrammableNic, ib_class_timing, lanai_fw_checksum)
from ..hoststack import HostKernel
from ..net.addresses import IPv4Address, IPv6Address, MacAddress
from ..sim import Simulator


@dataclass
class HostNode:
    """One machine in a testbed."""

    host: Host
    kernel: Optional[HostKernel]
    nic: object
    addr: object
    name: str


def build_gige_pair(sim: Simulator, mtu: int = 1500,
                    host_timing: Optional[HostTiming] = None
                    ) -> Tuple[HostNode, HostNode, EthernetFabric]:
    """Two Linux hosts with Pro1000-class NICs on a GigE switch (IPv4)."""
    fabric = EthernetFabric(sim)
    nodes = []
    for i in range(2):
        host = Host(sim, f"gige-host{i}", timing=host_timing)
        kernel = HostKernel(sim, host, isn_seed=i)
        mac = MacAddress.from_index(i)
        nic = DumbNic(sim, host, mtu=mtu, name="eth0", mac=mac)
        addr = IPv4Address.from_index(i + 1)
        kernel.add_nic(nic, addr)
        fabric.attach_host(f"h{i}", nic.attachment)
        nodes.append(HostNode(host, kernel, nic, addr, f"gige-host{i}"))
    for i, node in enumerate(nodes):
        peer = nodes[1 - i]
        node.kernel.add_route(peer.addr, node.nic, next_mac=peer.nic.mac)
    return nodes[0], nodes[1], fabric


@dataclass
class QpipNode:
    """One machine with a QPIP adapter."""

    host: Host
    nic: ProgrammableNic
    firmware: object
    iface: object            # QpipInterface for the benchmark process
    addr: IPv6Address
    name: str


def build_qpip_pair(sim: Simulator, mtu: int = 16384,
                    nic_timing: Optional[LanaiTiming] = None,
                    host_timing: Optional[HostTiming] = None,
                    tcp_config=None
                    ) -> Tuple[QpipNode, QpipNode, MyrinetFabric]:
    """Two hosts with LANai-9-class QPIP adapters on a Myrinet switch.

    ``nic_timing`` selects the checksum / hardware-support variant:
    default (hardware-assisted receive checksum), ``lanai_fw_checksum()``
    (prototype firmware checksum), or ``ib_class_timing()`` (§5.2).
    """
    from ..core import QpipFirmware, QpipInterface
    fabric = MyrinetFabric(sim)
    fabric.add_switch(8)
    nodes = []
    for i in range(2):
        host = Host(sim, f"qpip-host{i}", timing=host_timing)
        nic = ProgrammableNic(sim, host, timing=nic_timing, mtu=mtu,
                              name="qpnic")
        addr = IPv6Address.from_index(i + 1)
        firmware = QpipFirmware(nic, addr, tcp_config=tcp_config, isn_seed=i)
        fabric.attach_host(f"h{i}", nic.attachment)
        iface = QpipInterface(firmware, host, process_name=f"app{i}")
        nodes.append(QpipNode(host, nic, firmware, iface, addr,
                              f"qpip-host{i}"))
    for i, node in enumerate(nodes):
        peer = nodes[1 - i]
        route = fabric.source_route(f"h{i}", f"h{1 - i}")
        node.firmware.add_route(peer.addr, source_route=route)
    return nodes[0], nodes[1], fabric


def build_interop_pair(sim: Simulator, mtu: int = 9000
                       ) -> Tuple[QpipNode, HostNode, MyrinetFabric]:
    """A QPIP node and a conventional socket host on one Myrinet fabric.

    Paper §3: "Communication can occur between QPIP applications or QPIP
    and traditional (socket) systems" because QPIP "does not add any
    additional protocol formats".  Both ends speak TCP/IPv6 here; only
    the interface differs.
    """
    from ..core import QpipFirmware, QpipInterface
    fabric = MyrinetFabric(sim)
    fabric.add_switch(8)

    qp_host = Host(sim, "qpip-host")
    qp_nic = ProgrammableNic(sim, qp_host, mtu=mtu, name="qpnic")
    qp_addr = IPv6Address.from_index(1)
    firmware = QpipFirmware(qp_nic, qp_addr, isn_seed=0)
    fabric.attach_host("qp", qp_nic.attachment)
    iface = QpipInterface(firmware, qp_host, process_name="app")
    qp_node = QpipNode(qp_host, qp_nic, firmware, iface, qp_addr, "qpip-host")

    sock_host = Host(sim, "sock-host")
    kernel = HostKernel(sim, sock_host, isn_seed=1)
    sock_nic = GmNic(sim, sock_host, mtu=mtu, name="myri0",
                     mac=MacAddress.from_index(32))
    sock_addr = IPv6Address.from_index(2)
    kernel.add_nic(sock_nic, sock_addr)
    fabric.attach_host("sock", sock_nic.attachment)
    sock_node = HostNode(sock_host, kernel, sock_nic, sock_addr, "sock-host")

    firmware.add_route(sock_addr, source_route=fabric.source_route("qp", "sock"))
    kernel.add_route(qp_addr, sock_nic,
                     source_route=fabric.source_route("sock", "qp"))
    return qp_node, sock_node, fabric


def build_qpip_cluster(sim: Simulator, n: int, mtu: int = 16384,
                       nic_timing: Optional[LanaiTiming] = None
                       ) -> Tuple[list, MyrinetFabric]:
    """``n`` QPIP hosts on one Myrinet switch, full-mesh routed."""
    from ..core import QpipFirmware, QpipInterface
    fabric = MyrinetFabric(sim)
    fabric.add_switch(max(8, n + 2))
    nodes = []
    for i in range(n):
        host = Host(sim, f"qpip-node{i}")
        nic = ProgrammableNic(sim, host, timing=nic_timing, mtu=mtu,
                              name="qpnic")
        addr = IPv6Address.from_index(i + 1)
        firmware = QpipFirmware(nic, addr, isn_seed=i)
        fabric.attach_host(f"h{i}", nic.attachment)
        iface = QpipInterface(firmware, host, process_name=f"app{i}")
        nodes.append(QpipNode(host, nic, firmware, iface, addr,
                              f"qpip-node{i}"))
    for i in range(n):
        for j in range(n):
            if i != j:
                nodes[i].firmware.add_route(
                    nodes[j].addr,
                    source_route=fabric.source_route(f"h{i}", f"h{j}"))
    return nodes, fabric


def build_gm_pair(sim: Simulator, mtu: int = 9000,
                  host_timing: Optional[HostTiming] = None
                  ) -> Tuple[HostNode, HostNode, MyrinetFabric]:
    """Two Linux hosts doing IP over Myrinet/GM (the paper's second baseline)."""
    fabric = MyrinetFabric(sim)
    fabric.add_switch(8)
    nodes = []
    for i in range(2):
        host = Host(sim, f"gm-host{i}", timing=host_timing)
        kernel = HostKernel(sim, host, isn_seed=i)
        nic = GmNic(sim, host, mtu=mtu, name="myri0",
                    mac=MacAddress.from_index(16 + i))
        addr = IPv4Address.from_index(i + 1, net="10.1.0.0")
        kernel.add_nic(nic, addr)
        fabric.attach_host(f"h{i}", nic.attachment)
        nodes.append(HostNode(host, kernel, nic, addr, f"gm-host{i}"))
    for i, node in enumerate(nodes):
        peer = nodes[1 - i]
        route = fabric.source_route(f"h{i}", f"h{1 - i}")
        node.kernel.add_route(peer.addr, node.nic, source_route=route)
    return nodes[0], nodes[1], fabric
