"""ASCII rendering of experiment results against paper references."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with a title rule."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)] \
        if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in cols]

    def fmt_row(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [f"== {title} ==", fmt_row(headers), rule]
    lines += [fmt_row(r) for r in rows]
    return "\n".join(lines)


def compare(measured: float, paper: Optional[float]) -> str:
    """'measured (paper, ratio)' cell."""
    if paper is None or paper == 0:
        return f"{measured:.1f}"
    return f"{measured:8.1f}  (paper {paper:g}, x{measured / paper:.2f})"


def pct(x: float) -> str:
    return f"{100 * x:.1f}%"
