"""Experiment harness: testbeds, runners, and paper reference values."""

from .configs import (HostNode, QpipNode, build_gige_pair, build_gm_pair,
                      build_interop_pair, build_qpip_cluster, build_qpip_pair)
from .runners import (Fig3Result, Fig4Result, Fig7Result, HwAblationResult,
                      MsgSizeSweepResult, MtuSweepResult, OccupancyResult,
                      ScalingResult,
                      Table1Result, run_fig3, run_fig4, run_fig7,
                      run_fabric_scaling, run_hw_ablation, run_msgsize_sweep,
                      run_mtu_sweep,
                      run_occupancy_tables, run_table1)

__all__ = [
    "HostNode", "QpipNode", "build_gige_pair", "build_gm_pair",
    "build_interop_pair", "build_qpip_cluster", "build_qpip_pair", "Fig3Result", "Fig4Result", "Fig7Result",
    "HwAblationResult", "MtuSweepResult", "OccupancyResult", "Table1Result",
    "MsgSizeSweepResult", "run_msgsize_sweep", "ScalingResult",
    "run_fabric_scaling",
    "run_fig3", "run_fig4", "run_fig7", "run_hw_ablation", "run_mtu_sweep",
    "run_occupancy_tables", "run_table1",
]
