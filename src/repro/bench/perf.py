"""Wall-clock performance harness (``repro perf``).

The paper's experiments are *simulated-time* measurements; this module
measures the *simulator itself*: how many kernel events per second of
wall clock the hot loops sustain on fixed workloads.  Results land in
``BENCH_perf.json`` so CI can catch regressions of the fast paths
(checksum folding, wire caching, eager work queues, timer compaction —
see ``docs/performance.md``).

Nothing here affects simulated results: the harness only runs existing
workloads and reads wall-clock + event counters.
"""

from __future__ import annotations

import cProfile
import fnmatch
import json
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from .. import fastpath
from ..sim import Simulator

#: Committed reference numbers for the CI regression gate.
DEFAULT_BASELINE = Path(__file__).with_name("baseline_perf.json")

#: Modules whose self-time gets its own profile bucket.  First substring
#: match wins, so the TCP engine's bucket must precede its parent
#: ``repro/net`` bucket.
_PROFILE_BUCKETS = ("repro/sim", "repro/net/tcp", "repro/net", "repro/core",
                    "repro/hw", "repro/fabric", "repro/apps")


# -- workloads --------------------------------------------------------------
#
# Each workload builds a fresh Simulator, runs to completion, and returns
# (simulator_or_None, payload_bytes).  The harness reads wall clock and
# the kernel's event counter around the call.


def _quiet(*nodes) -> None:
    """Turn off per-stage instrumentation for a perf run.

    The harness measures kernel throughput, not stage attribution, so it
    exercises the zero-cost-when-disabled hooks: cycle counters off,
    per-category busy accounting off.  Simulated results are unaffected
    (these are pure host-side counters).
    """
    for node in nodes:
        nic = node.nic
        nic.cycles.enabled = False
        nic.processor.detailed = False
        nic.host.cpu.detailed = False
        nic.host.pci.queue.detailed = False


def _ttcp_bulk(total_bytes: int, chunk: int = 16384) -> Tuple[Simulator, int]:
    from ..apps.ttcp import qpip_ttcp
    from .configs import build_qpip_pair
    sim = Simulator()
    a, b, _fabric = build_qpip_pair(sim)
    _quiet(a, b)
    res = qpip_ttcp(sim, a, b, total_bytes=total_bytes, chunk=chunk)
    return sim, res.bytes_moved


def _pingpong(iterations: int, msg_size: int = 64) -> Tuple[Simulator, int]:
    from ..apps.pingpong import qpip_tcp_rtt
    from .configs import build_qpip_pair
    sim = Simulator()
    a, b, _fabric = build_qpip_pair(sim)
    _quiet(a, b)
    qpip_tcp_rtt(sim, a, b, iterations=iterations, msg_size=msg_size)
    return sim, 2 * iterations * msg_size


def _kvstore_mixed(ops: int, value_size: int = 128) -> Tuple[Simulator, int]:
    from ..apps.kvstore import KvClient, KvServer
    from .configs import build_qpip_pair
    sim = Simulator()
    a, b, _fabric = build_qpip_pair(sim)
    _quiet(a, b)
    server = KvServer(b, slot_count=256, slot_size=256)
    sim.process(server.run())
    client = KvClient(a, b.addr)
    moved = 0

    def body():
        nonlocal moved
        info = yield server.ready
        yield sim.timeout(500)
        yield from client.connect(info)
        value = bytes(value_size)
        for i in range(ops):
            key = b"key-%d" % (i % 32)
            yield from client.put(key, value)
            moved += value_size
            if i % 3 == 0:
                got = yield from client.get_rdma(key)
            else:
                got = yield from client.get(key)
            moved += len(got)
        yield from client.disconnect()

    proc = sim.process(body())
    sim.run(until=sim.now + 120_000_000)
    if not proc.triggered:
        raise RuntimeError("kvstore perf workload did not finish")
    if not proc.ok:
        raise proc.value
    return sim, moved


def _chaos_recover(messages: int, msg_size: int = 4096) -> Tuple[None, int]:
    from ..faults import FaultPlan, run_chaos
    plan = FaultPlan()
    plan.drop(0.02)
    result = run_chaos(seed=7, workload="ttcp", plan=plan, messages=messages,
                       msg_size=msg_size, recover=True, restarts=2)
    if not result.ok:
        raise RuntimeError(f"chaos perf workload violated invariants: "
                           f"{result.violations()}")
    return None, result.bytes_delivered


def _workloads(quick: bool) -> Dict[str, Callable[[], Tuple[Optional[Simulator], int]]]:
    if quick:
        return {
            "ttcp_bulk": lambda: _ttcp_bulk(2 * 1024 * 1024),
            "pingpong": lambda: _pingpong(50),
            "kvstore_mixed": lambda: _kvstore_mixed(30),
            "chaos_recover": lambda: _chaos_recover(24),
        }
    return {
        "ttcp_bulk": lambda: _ttcp_bulk(10 * 1024 * 1024),
        "pingpong": lambda: _pingpong(200),
        "kvstore_mixed": lambda: _kvstore_mixed(100),
        "chaos_recover": lambda: _chaos_recover(64),
    }


# -- measurement ------------------------------------------------------------


def _measure(fn: Callable[[], Tuple[Optional[Simulator], int]],
             repeats: int = 1) -> Dict:
    """Run ``fn`` ``repeats`` times and report the best (min) wall time.

    The workloads are deterministic, so every repeat produces the same
    simulation; min-of-N just filters out scheduler noise on the host.
    """
    wall = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        sim, nbytes = fn()
        elapsed = time.perf_counter() - t0
        if wall is None or elapsed < wall:
            wall = elapsed
    events = sim._events_processed if sim is not None else None
    sim_us = sim.now if sim is not None else None
    out = {
        "wall_s": round(wall, 4),
        "bytes": nbytes,
        "sim_bytes_per_wall_s": round(nbytes / wall) if wall > 0 else None,
        "events": events,
        "sim_us": round(sim_us, 1) if sim_us is not None else None,
        "events_per_sec": (round(events / wall) if events and wall > 0
                           else None),
    }
    return out


def _profile_buckets(fn: Callable[[], Tuple[Optional[Simulator], int]]) -> Dict[str, float]:
    """Self-time per subsystem for one workload run, in seconds."""
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    buckets = {name: 0.0 for name in _PROFILE_BUCKETS}
    buckets["other"] = 0.0
    for entry in prof.getstats():
        code = entry.code
        filename = getattr(code, "co_filename", "") or ""
        path = filename.replace("\\", "/")
        for name in _PROFILE_BUCKETS:
            if name in path:
                buckets[name] += entry.inlinetime
                break
        else:
            buckets["other"] += entry.inlinetime
    return {name: round(secs, 4) for name, secs in buckets.items()}


def run_perf(quick: bool = False, profile: bool = True,
             compare_naive: bool = True,
             workload: Optional[str] = None) -> Dict:
    """Run the perf workloads; returns the ``BENCH_perf.json`` payload.

    ``workload`` is an optional glob filter (``fnmatch``) selecting a
    subset of workloads — ``repro perf --workload 'ttcp*'``.  The
    profile breakdown and the naive comparison only run when their
    subject (``ttcp_bulk``) survives the filter.
    """
    workloads = _workloads(quick)
    if workload:
        workloads = {name: fn for name, fn in workloads.items()
                     if fnmatch.fnmatch(name, workload)}
        if not workloads:
            raise ValueError(
                f"no perf workload matches {workload!r} "
                f"(have: {', '.join(_workloads(quick))})")
    report: Dict = {
        "harness": "repro-perf",
        "quick": quick,
        "fastpath": fastpath.ENABLED,
        "workloads": {},
    }
    repeats = 2 if quick else 3
    for name, fn in workloads.items():
        report["workloads"][name] = _measure(fn, repeats=repeats)
    if profile and "ttcp_bulk" in workloads:
        report["profile"] = {"ttcp_bulk": _profile_buckets(
            workloads["ttcp_bulk"])}
    if compare_naive and fastpath.ENABLED and "ttcp_bulk" in workloads:
        # The headline number: same ttcp workload with every fast path
        # switched off.  Simulated results are identical by construction
        # (that's the determinism test's job); only wall clock moves.
        fast = report["workloads"]["ttcp_bulk"]
        prev = fastpath.set_enabled(False)
        try:
            slow = _measure(workloads["ttcp_bulk"], repeats=repeats)
        finally:
            fastpath.set_enabled(prev)
        report["naive_ttcp_bulk"] = slow
        if slow["wall_s"] > 0 and fast["wall_s"] > 0:
            report["speedup_vs_naive"] = round(
                slow["wall_s"] / fast["wall_s"], 2)
    return report


# -- regression gate --------------------------------------------------------


def compare_to_baseline(report: Dict, baseline: Dict,
                        max_regression: float = 0.30) -> Tuple[bool, list]:
    """Check events/sec against a committed baseline.

    Returns ``(ok, messages)``; a workload regresses when its events/sec
    falls more than ``max_regression`` below the baseline value.  Missing
    or unmeasurable workloads are reported but never fail the gate (the
    chaos workload has no event counter, and baselines from other
    machines may lack a workload).

    When both sides recorded a fast-vs-naive speedup ratio, that ratio is
    gated too: it is machine-independent (both measurements ran on the
    same host), so a drop below the baseline ratio means the fast paths
    themselves lost ground, not that CI got a slower machine.
    """
    messages = []
    ok = True
    base_workloads = baseline.get("workloads", {})
    for name, current in report.get("workloads", {}).items():
        base = base_workloads.get(name, {})
        base_eps = base.get("events_per_sec")
        cur_eps = current.get("events_per_sec")
        if base_eps is None or cur_eps is None:
            messages.append(f"{name}: no events/sec to compare (skipped)")
            continue
        floor = base_eps * (1.0 - max_regression)
        ratio = cur_eps / base_eps
        line = (f"{name}: {cur_eps:,} ev/s vs baseline {base_eps:,} "
                f"({ratio:.2f}x)")
        if cur_eps < floor:
            ok = False
            messages.append(line + "  REGRESSION")
        else:
            messages.append(line)
    base_speedup = baseline.get("speedup_vs_naive")
    cur_speedup = report.get("speedup_vs_naive")
    if base_speedup and cur_speedup:
        line = (f"ttcp_bulk speedup vs naive: {cur_speedup:.2f}x vs "
                f"baseline {base_speedup:.2f}x")
        if cur_speedup < base_speedup * (1.0 - max_regression):
            ok = False
            messages.append(line + "  REGRESSION")
        else:
            messages.append(line)
    return ok, messages


def load_baseline(path: Optional[str] = None) -> Optional[Dict]:
    p = Path(path) if path else DEFAULT_BASELINE
    if not p.exists():
        return None
    with open(p) as fh:
        return json.load(fh)


def write_report(report: Dict, path: str = "BENCH_perf.json") -> str:
    """Write ``report`` to ``path``, merging with an existing file.

    Top-level keys this run did not produce are preserved — other
    subcommands park their sections in the same file (``repro cluster
    --bench`` writes ``cluster_scaling``, ``repro serve --bench`` writes
    ``serve_load``).  ``workloads`` merges one level deep so a filtered
    run (``--workload``) refreshes only what it measured.
    """
    merged = report
    p = Path(path)
    if p.exists():
        try:
            with open(p) as fh:
                merged = json.load(fh)
            if not isinstance(merged, dict):
                merged = {}
        except (OSError, ValueError):
            merged = {}
        old_workloads = merged.get("workloads")
        merged.update(report)
        if isinstance(old_workloads, dict):
            combined = dict(old_workloads)
            combined.update(report.get("workloads", {}))
            merged["workloads"] = combined
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render(report: Dict) -> str:
    lines = ["repro perf" + (" (quick)" if report.get("quick") else "")]
    for name, w in report.get("workloads", {}).items():
        eps = w.get("events_per_sec")
        eps_s = f"{eps:>12,} ev/s" if eps is not None else f"{'-':>12} ev/s"
        mbps = (w.get("sim_bytes_per_wall_s") or 0) / 1e6
        lines.append(f"  {name:14s} {w['wall_s']:8.3f}s wall  {eps_s}  "
                     f"{mbps:8.1f} simMB/s-wall")
    if "speedup_vs_naive" in report:
        lines.append(f"  ttcp_bulk speedup vs naive (fast paths off): "
                     f"{report['speedup_vs_naive']:.2f}x")
    prof = report.get("profile", {}).get("ttcp_bulk")
    if prof:
        hot = sorted(prof.items(), key=lambda kv: -kv[1])
        lines.append("  ttcp_bulk self-time by subsystem: "
                     + ", ".join(f"{k}={v:.3f}s" for k, v in hot if v > 0))
    return "\n".join(lines)
