"""Reference values from the paper.

Values quoted in the text are exact; values read off figure bars are
estimates (flagged ``est``).  The reproduction criterion is *shape* —
orderings, ratios, crossovers — not absolute numbers (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Ref:
    value: float
    unit: str
    exact: bool = True      # False = estimated from a figure bar

    def __str__(self):
        mark = "" if self.exact else " (est)"
        return f"{self.value:g} {self.unit}{mark}"


# --- Figure 3: application-to-application RTT, 1-byte message -------------
FIG3_RTT = {
    ("IP/GigE", "udp"): Ref(100, "µs", exact=False),
    ("IP/GigE", "tcp"): Ref(130, "µs", exact=False),
    ("IP/Myrinet", "udp"): Ref(95, "µs", exact=False),
    ("IP/Myrinet", "tcp"): Ref(120, "µs", exact=False),
    ("QPIP", "udp"): Ref(73, "µs"),      # §4.2.1, firmware checksum
    ("QPIP", "tcp"): Ref(113, "µs"),     # §4.2.1, firmware checksum
}

# --- Figure 4: ttcp throughput + CPU utilization --------------------------
FIG4_THROUGHPUT = {
    "IP/GigE": Ref(45.4, "MB/s"),        # §4.2.1: QPIP@1500 is "22% less"
    "IP/Myrinet": Ref(60, "MB/s", exact=False),
    "QPIP": Ref(75.6, "MB/s"),
}
FIG4_CPU = {
    "IP/GigE": Ref(0.75, "frac", exact=False),      # "half to ¾ of a processor"
    "IP/Myrinet": Ref(0.50, "frac", exact=False),
    "QPIP": Ref(0.01, "frac"),                       # "<1%"
}
MTU_SWEEP = {
    1500: Ref(35.4, "MB/s"),
    9000: Ref(70.1, "MB/s"),
    16384: Ref(75.6, "MB/s"),
}
FW_CHECKSUM_THROUGHPUT = Ref(26.4, "MB/s")

# --- Table 1: host overhead for a 1-byte TCP send+receive ------------------
TABLE1 = {
    "host_based_us": Ref(29.9, "µs"),
    "host_based_cycles": Ref(16445, "cycles"),
    "qpip_us": Ref(2.5, "µs"),
    "qpip_cycles": Ref(1386, "cycles"),
}

# --- Table 2: transmit-side NIC occupancy (µs) ------------------------------
TABLE2_TX = {
    # stage: (data send, ack send); None = not on that path
    "Doorbell Process": (1.0, 1.0),
    "Schedule": (2.0, 2.0),
    "Get WR": (5.5, None),
    "Get Data": (4.5, None),
    "Build TCP Hdr": (5.0, 5.0),
    "Build IP Hdr": (1.0, 1.0),
    "Send": (1.0, 1.0),
    "Update": (1.5, 1.5),
}

# --- Table 3: receive-side NIC occupancy (µs) -------------------------------
TABLE3_RX = {
    "Doorbell Process": (1.0, 1.0),
    "Media Rcv": (1.0, 1.0),
    "IP Parse": (1.5, 1.5),
    "TCP Parse": (7.0, 14.0),
    "Get WR": (5.5, None),
    "Put Data": (4.5, None),
    "Update": (1.5, 9.0),
}

# --- Figure 7: NBD client performance ----------------------------------------
FIG7_THROUGHPUT = {
    ("IP/GigE", "write"): Ref(20, "MB/s", exact=False),
    ("IP/GigE", "read"): Ref(30, "MB/s", exact=False),
    ("IP/Myrinet", "write"): Ref(33, "MB/s", exact=False),
    ("IP/Myrinet", "read"): Ref(50, "MB/s", exact=False),
    ("QPIP", "write"): Ref(46, "MB/s", exact=False),
    ("QPIP", "read"): Ref(70, "MB/s", exact=False),
}
FIG7_EFFECTIVENESS = {
    ("IP/GigE", "read"): Ref(45, "MB/CPU·s", exact=False),
    ("IP/Myrinet", "read"): Ref(77, "MB/CPU·s", exact=False),
    ("QPIP", "read"): Ref(180, "MB/CPU·s", exact=False),
}
# Text claims (§4.2.3): throughput improvement "40% to 137%"; CPU
# effectiveness "up to 133% better"; filesystem CPU "at least 26%".
NBD_IMPROVEMENT_RANGE = (0.40, 1.37)
NBD_FS_FLOOR = 0.20
