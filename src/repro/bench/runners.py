"""Experiment runners: one function per table/figure of the paper.

Each runner builds fresh testbeds, runs the workload, and returns a
result object carrying measured values, paper references, and a
``render()`` method that prints the same rows the paper reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.nbd import (DiskModel, NbdQpipClient, NbdSocketClient, NBD_PORT,
                        qpip_nbd_server, socket_nbd_server)
from ..apps.pingpong import (qpip_tcp_rtt, qpip_udp_rtt, socket_tcp_rtt,
                             socket_udp_rtt)
from ..apps.ttcp import qpip_ttcp, socket_ttcp
from ..core import QPTransport
from ..hoststack import TcpSocket, attach_loopback
from ..hoststack.kernel import HostKernel
from ..hw import Host, ib_class_timing, lanai_fw_checksum
from ..net.addresses import Endpoint, IPv4Address
from ..net.packet import ZeroPayload
from ..sim import Simulator
from ..units import MB, us_to_cycles
from . import paper
from .configs import build_gige_pair, build_gm_pair, build_qpip_pair
from .report import compare, pct, render_table

LANAI_MHZ = 133.0
HOST_MHZ = 550.0


def _nbd_total_bytes() -> int:
    """Paper workload: 409 MB; override with REPRO_NBD_MB for quick runs."""
    return int(os.environ.get("REPRO_NBD_MB", "409")) * MB


# ---------------------------------------------------------------------------
# Figure 3: RTT
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    rows: List[Tuple[str, str, float, Optional[paper.Ref]]]

    def measured(self, system: str, proto: str) -> float:
        for s, p, v, _ in self.rows:
            if s == system and p == proto:
                return v
        raise KeyError((system, proto))

    def render(self) -> str:
        return render_table(
            "Figure 3: application-to-application RTT (1-byte message)",
            ["system", "proto", "RTT µs (vs paper)"],
            [(s, p, compare(v, ref.value if ref else None))
             for s, p, v, ref in self.rows])


def run_fig3(iterations: int = 100, fw_checksum: bool = True) -> Fig3Result:
    """RTT for IP/GigE, IP/Myrinet and QPIP, TCP and UDP."""
    rows = []
    for system, builder in (("IP/GigE", build_gige_pair),
                            ("IP/Myrinet", build_gm_pair)):
        for proto, fn in (("udp", socket_udp_rtt), ("tcp", socket_tcp_rtt)):
            sim = Simulator()
            a, b, _f = builder(sim)
            result = fn(sim, a, b, iterations=iterations)
            rows.append((system, proto, result.mean,
                         paper.FIG3_RTT[(system, proto)]))
    nic_timing = lanai_fw_checksum() if fw_checksum else None
    for proto, fn in (("udp", qpip_udp_rtt), ("tcp", qpip_tcp_rtt)):
        sim = Simulator()
        a, b, _f = build_qpip_pair(sim, nic_timing=nic_timing)
        result = fn(sim, a, b, iterations=iterations)
        rows.append(("QPIP", proto, result.mean, paper.FIG3_RTT[("QPIP", proto)]))
    return Fig3Result(rows)


# ---------------------------------------------------------------------------
# Figure 4: throughput + CPU utilization (native MTUs)
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    rows: List[Tuple[str, float, float, Optional[paper.Ref], Optional[paper.Ref]]]

    def measured(self, system: str) -> Tuple[float, float]:
        for s, mbps, cpu, _r1, _r2 in self.rows:
            if s == system:
                return mbps, cpu
        raise KeyError(system)

    def render(self) -> str:
        return render_table(
            "Figure 4: ttcp throughput and transmit CPU utilization",
            ["system", "MB/s (vs paper)", "tx CPU (vs paper)"],
            [(s, compare(mbps, r1.value if r1 else None),
              f"{pct(cpu)} (paper {pct(r2.value)})" if r2 else pct(cpu))
             for s, mbps, cpu, r1, r2 in self.rows])


def run_fig4(total_bytes: int = 10 * MB) -> Fig4Result:
    rows = []
    sim = Simulator()
    a, b, _f = build_gige_pair(sim)
    r = socket_ttcp(sim, a, b, total_bytes=total_bytes)
    rows.append(("IP/GigE", r.mb_per_sec, r.tx_cpu_utilization,
                 paper.FIG4_THROUGHPUT["IP/GigE"], paper.FIG4_CPU["IP/GigE"]))
    sim = Simulator()
    a, b, _f = build_gm_pair(sim)
    r = socket_ttcp(sim, a, b, total_bytes=total_bytes)
    rows.append(("IP/Myrinet", r.mb_per_sec, r.tx_cpu_utilization,
                 paper.FIG4_THROUGHPUT["IP/Myrinet"], paper.FIG4_CPU["IP/Myrinet"]))
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)
    r = qpip_ttcp(sim, a, b, total_bytes=total_bytes)
    rows.append(("QPIP", r.mb_per_sec, r.tx_cpu_utilization,
                 paper.FIG4_THROUGHPUT["QPIP"], paper.FIG4_CPU["QPIP"]))
    return Fig4Result(rows)


@dataclass
class MtuSweepResult:
    rows: List[Tuple[int, float, Optional[paper.Ref]]]
    fw_checksum_mbps: float

    def measured(self, mtu: int) -> float:
        for m, v, _ in self.rows:
            if m == mtu:
                return v
        raise KeyError(mtu)

    def render(self) -> str:
        table = render_table(
            "Figure 4 (text): QPIP throughput vs MTU",
            ["MTU", "MB/s (vs paper)"],
            [(m, compare(v, ref.value if ref else None))
             for m, v, ref in self.rows])
        return table + (
            f"\nfirmware-checksum variant: "
            f"{compare(self.fw_checksum_mbps, paper.FW_CHECKSUM_THROUGHPUT.value)}")


def run_mtu_sweep(total_bytes: int = 10 * MB,
                  mtus: Tuple[int, ...] = (1500, 9000, 16384)) -> MtuSweepResult:
    rows = []
    for mtu in mtus:
        sim = Simulator()
        a, b, _f = build_qpip_pair(sim, mtu=mtu)
        r = qpip_ttcp(sim, a, b, total_bytes=total_bytes)
        rows.append((mtu, r.mb_per_sec, paper.MTU_SWEEP.get(mtu)))
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim, nic_timing=lanai_fw_checksum())
    r = qpip_ttcp(sim, a, b, total_bytes=total_bytes)
    return MtuSweepResult(rows, r.mb_per_sec)


# ---------------------------------------------------------------------------
# Table 1: host overhead
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    host_based_us: float
    qpip_us: float

    @property
    def host_based_cycles(self) -> int:
        return us_to_cycles(self.host_based_us, HOST_MHZ)

    @property
    def qpip_cycles(self) -> int:
        return us_to_cycles(self.qpip_us, HOST_MHZ)

    def render(self) -> str:
        return render_table(
            "Table 1: host overhead for transmit+receive of a 1-byte TCP message",
            ["implementation", "µs (vs paper)", "cycles (vs paper)"],
            [("Host-based IP",
              compare(self.host_based_us, paper.TABLE1["host_based_us"].value),
              compare(self.host_based_cycles,
                      paper.TABLE1["host_based_cycles"].value)),
             ("QPIP",
              compare(self.qpip_us, paper.TABLE1["qpip_us"].value),
              compare(self.qpip_cycles, paper.TABLE1["qpip_cycles"].value))])


def run_table1(iterations: int = 100) -> Table1Result:
    # Host-based: loopback RTT / 2 (the paper's methodology; a lower bound
    # because no interface driver runs).
    sim = Simulator()
    host = Host(sim, "lo-host")
    kernel = HostKernel(sim, host)
    addr = IPv4Address.parse("127.0.0.1")
    attach_loopback(kernel, addr)
    rtts: List[float] = []

    def server():
        lsock = TcpSocket(kernel, addr)
        lsock.listen(6000)
        conn = yield from lsock.accept()
        while True:
            data = yield from conn.recv(1)
            if data.length == 0:
                return
            yield from conn.send(data)

    def client():
        sock = TcpSocket(kernel, addr)
        yield from sock.connect(Endpoint(addr, 6000))
        for _ in range(iterations):
            t0 = sim.now
            yield from sock.send(ZeroPayload(1))
            yield from sock.recv_exact(1)
            rtts.append(sim.now - t0)
        sock.close()

    sim.process(server())
    cp = sim.process(client())
    sim.run(until=60_000_000)
    assert cp.triggered and cp.ok
    host_based = (sum(rtts) / len(rtts)) / 2

    # QPIP: "determined by directly timing the associated communication
    # methods from user-space" — CPU consumed by post_send + the
    # completion-reaping poll, per message.
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)
    measured = {}

    def qp_server():
        iface = b.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq)
        bufs = []
        for _ in range(8):
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        listener = yield from iface.listen(9000)
        yield from iface.accept(listener, qp)
        done = 0
        ring = 0
        while done < iterations:
            cqes = yield from iface.wait(cq)
            for _cqe in cqes:
                yield from iface.post_recv(qp, [bufs[ring].sge()])
                ring = (ring + 1) % len(bufs)
                done += 1

    def qp_client():
        iface = a.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq)
        buf = yield from iface.register_memory(4096)
        yield sim.timeout(1000)
        yield from iface.connect(qp, Endpoint(b.addr, 9000))
        cpu = a.host.cpu
        busy = 0.0
        for _ in range(iterations):
            b0 = cpu.busy_time
            yield from iface.post_send(qp, [buf.sge(0, 1)])
            busy += cpu.busy_time - b0
            # Wait off-CPU for the completion, then take the timed poll.
            while not len(cq):
                yield cq.wait_event()
            b0 = cpu.busy_time
            yield from iface.poll(cq)
            busy += cpu.busy_time - b0
        measured["qpip"] = busy / iterations

    sim.process(qp_server())
    cp = sim.process(qp_client())
    sim.run(until=120_000_000)
    assert cp.triggered and cp.ok
    return Table1Result(host_based, measured["qpip"])


# ---------------------------------------------------------------------------
# Tables 2 & 3: NIC occupancy per stage
# ---------------------------------------------------------------------------

@dataclass
class OccupancyResult:
    tx_rows: List[Tuple[str, Optional[float], Optional[float],
                        Optional[float], Optional[float]]]
    rx_rows: List[Tuple[str, Optional[float], Optional[float],
                        Optional[float], Optional[float]]]

    @staticmethod
    def _fmt(v: Optional[float]) -> str:
        return "-" if v is None else f"{v:.1f}"

    def render(self) -> str:
        t2 = render_table(
            "Table 2: transmit-side NIC occupancy (µs)",
            ["stage", "data (paper)", "ack (paper)"],
            [(name, f"{self._fmt(md)} ({self._fmt(pd)})",
              f"{self._fmt(ma)} ({self._fmt(pa)})")
             for name, md, pd, ma, pa in self.tx_rows])
        t3 = render_table(
            "Table 3: receive-side NIC occupancy (µs)",
            ["stage", "data (paper)", "ack (paper)"],
            [(name, f"{self._fmt(md)} ({self._fmt(pd)})",
              f"{self._fmt(ma)} ({self._fmt(pa)})")
             for name, md, pd, ma, pa in self.rx_rows])
        return t2 + "\n\n" + t3

    def stage_tx(self, name: str) -> Tuple[Optional[float], Optional[float]]:
        for n, md, _pd, ma, _pa in self.tx_rows:
            if n == name:
                return md, ma
        raise KeyError(name)


def run_occupancy_tables(messages: int = 50) -> OccupancyResult:
    """Instrument the firmware cycle counter over a 1-byte message stream.

    The client NIC shows the data-transmit and ACK-receive paths; the
    server NIC shows data-receive and ACK-transmit.
    """
    sim = Simulator()
    a, b, _f = build_qpip_pair(sim)

    def server():
        iface = b.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, max_recv_wr=300)
        bufs = []
        for _ in range(messages + 4):
            buf = yield from iface.register_memory(4096)
            yield from iface.post_recv(qp, [buf.sge()])
            bufs.append(buf)
        listener = yield from iface.listen(9000)
        yield from iface.accept(listener, qp)
        done = 0
        while done < messages:
            cqes = yield from iface.wait(cq)
            done += len(cqes)

    def client():
        iface = a.iface
        cq = yield from iface.create_cq()
        qp = yield from iface.create_qp(QPTransport.TCP, cq, max_send_wr=300)
        buf = yield from iface.register_memory(4096)
        yield sim.timeout(1000)
        yield from iface.connect(qp, Endpoint(b.addr, 9000))
        a.nic.reset_stats()
        b.nic.reset_stats()
        done = 0
        for _ in range(messages):
            yield from iface.post_send(qp, [buf.sge(0, 1)])
            cqes = yield from iface.wait(cq)
            done += len(cqes)

    sim.process(server())
    cp = sim.process(client())
    sim.run(until=300_000_000)
    assert cp.triggered and cp.ok

    tx_cc, rx_cc = a.nic.cycles, b.nic.cycles

    def mean(cc, stage):
        return cc.mean(stage) if cc.samples.get(stage) else None

    tx_rows = [
        ("Doorbell Process", mean(tx_cc, "doorbell"), 1.0,
         mean(rx_cc, "doorbell"), 1.0),
        ("Schedule", mean(tx_cc, "schedule"), 2.0, mean(rx_cc, "schedule"), 2.0),
        ("Get WR", mean(tx_cc, "get_wr"), 5.5, None, None),
        ("Get Data", mean(tx_cc, "get_data"), 4.5, None, None),
        ("Build TCP Hdr", mean(tx_cc, "build_tcp_hdr"), 5.0,
         mean(rx_cc, "build_tcp_hdr"), 5.0),
        ("Build IP Hdr", mean(tx_cc, "build_ip_hdr"), 1.0,
         mean(rx_cc, "build_ip_hdr"), 1.0),
        ("Send", mean(tx_cc, "media_send"), 1.0, mean(rx_cc, "media_send"), 1.0),
        ("Update", mean(tx_cc, "tx_update"), 1.5, mean(rx_cc, "tx_update"), 1.5),
    ]
    rx_rows = [
        ("Media Rcv", mean(rx_cc, "media_recv"), 1.0,
         mean(tx_cc, "media_recv"), 1.0),
        ("IP Parse", mean(rx_cc, "ip_parse"), 1.5, mean(tx_cc, "ip_parse"), 1.5),
        ("TCP Parse", mean(rx_cc, "tcp_parse_data"), 7.0,
         mean(tx_cc, "tcp_parse_ack"), 14.0),
        ("Get WR", mean(rx_cc, "get_wr"), 5.5, None, None),
        ("Put Data", mean(rx_cc, "put_data"), 4.5, None, None),
        ("Update", mean(rx_cc, "rx_update_data"), 1.5,
         mean(tx_cc, "rx_update_ack"), 9.0),
    ]
    return OccupancyResult(tx_rows, rx_rows)


# ---------------------------------------------------------------------------
# Figure 7: NBD
# ---------------------------------------------------------------------------

@dataclass
class Fig7Result:
    # system -> op -> (MB/s, MB per CPU-second, fs fraction)
    rows: Dict[Tuple[str, str], Tuple[float, float, float]]

    def measured(self, system: str, op: str) -> Tuple[float, float, float]:
        return self.rows[(system, op)]

    def render(self) -> str:
        table_rows = []
        for (system, op), (mbps, eff, fs) in sorted(self.rows.items()):
            ref = paper.FIG7_THROUGHPUT.get((system, op))
            table_rows.append((system, op,
                               compare(mbps, ref.value if ref else None),
                               f"{eff:.0f}", pct(fs)))
        return render_table(
            "Figure 7: NBD client throughput and CPU effectiveness",
            ["system", "op", "MB/s (vs paper)", "MB/CPU·s", "fs CPU"],
            table_rows)


def _run_nbd(system: str, total_bytes: int) -> Dict[str, object]:
    sim = Simulator()
    if system == "QPIP":
        client, server, _f = build_qpip_pair(sim, mtu=9000)  # §4.2.3: 9000 B
        disk = DiskModel(sim)
        sim.process(qpip_nbd_server(sim, server, disk))
        nbd_client = NbdQpipClient(client, server.addr, NBD_PORT)
    else:
        builder = build_gige_pair if system == "IP/GigE" else build_gm_pair
        client, server, _f = builder(sim)
        disk = DiskModel(sim)
        sim.process(socket_nbd_server(sim, server, disk))
        nbd_client = NbdSocketClient(client, server.addr, NBD_PORT)
    results = {}

    def run():
        yield from nbd_client.connect()
        results["write"] = yield from nbd_client.run_phase("write", total_bytes)
        yield disk.sync()                      # the paper's 'sync'
        results["read"] = yield from nbd_client.run_phase("read", total_bytes)
        yield from nbd_client.disconnect()

    cp = sim.process(run())
    sim.run(until=3_600_000_000)
    assert cp.triggered, f"{system} NBD run did not finish"
    if not cp.ok:
        raise cp.value
    return results


def run_fig7(total_bytes: Optional[int] = None,
             systems: Tuple[str, ...] = ("IP/GigE", "IP/Myrinet", "QPIP")
             ) -> Fig7Result:
    total = total_bytes if total_bytes is not None else _nbd_total_bytes()
    rows: Dict[Tuple[str, str], Tuple[float, float, float]] = {}
    for system in systems:
        results = _run_nbd(system, total)
        for op in ("write", "read"):
            r = results[op]
            fs_frac = r.fs_cpu_busy_us / r.elapsed_us
            rows[(system, op)] = (r.mb_per_sec, r.cpu_effectiveness, fs_frac)
    return Fig7Result(rows)


# ---------------------------------------------------------------------------
# Message-size sweep (latency/bandwidth curves; not a paper figure, but the
# standard SAN characterization the community drew for every interface)
# ---------------------------------------------------------------------------

@dataclass
class MsgSizeSweepResult:
    rows: List[Tuple[int, float, float]]     # (size, rtt/2 µs, MB/s)

    def half_power_point(self) -> int:
        """Smallest size achieving half the peak bandwidth (n_1/2)."""
        peak = max(r[2] for r in self.rows)
        for size, _lat, bw in self.rows:
            if bw >= peak / 2:
                return size
        return self.rows[-1][0]

    def render(self) -> str:
        peak = max(r[2] for r in self.rows)
        body = []
        for size, lat, bw in self.rows:
            bar = "#" * int(bw / peak * 40)
            body.append((size, f"{lat:8.1f}", f"{bw:7.2f}", bar))
        table = render_table(
            "QPIP message-size sweep (one-way latency, streaming bandwidth)",
            ["bytes", "lat µs", "MB/s", ""], body)
        return table + f"\nhalf-power point n1/2 = {self.half_power_point()} bytes"


def run_msgsize_sweep(sizes: Tuple[int, ...] = (1, 64, 256, 1024, 4096,
                                                8192, 16000)
                      ) -> MsgSizeSweepResult:
    from ..apps.pingpong import qpip_tcp_rtt
    rows = []
    for size in sizes:
        sim = Simulator()
        a, b, _f = build_qpip_pair(sim)
        rtt = qpip_tcp_rtt(sim, a, b, iterations=30, msg_size=size).mean
        sim2 = Simulator()
        a2, b2, _f2 = build_qpip_pair(sim2)
        # ~1000 messages per point keeps tiny-message points tractable.
        total = max(64 * 1024, min(4 * MB, size * 1000))
        thr = qpip_ttcp(sim2, a2, b2, total_bytes=total, chunk=size)
        rows.append((size, rtt / 2, thr.mb_per_sec))
    return MsgSizeSweepResult(rows)


# ---------------------------------------------------------------------------
# Fabric scaling (paper §1: "the switch-based design permits a large array
# of devices to be connected in a manner that provides scalable throughput")
# ---------------------------------------------------------------------------

@dataclass
class ScalingResult:
    rows: List[Tuple[int, float, float]]    # (pairs, aggregate MB/s, per-pair)

    def render(self) -> str:
        return render_table(
            "Fabric scaling: concurrent QPIP pairs on one Myrinet switch",
            ["pairs", "aggregate MB/s", "per-pair MB/s"],
            [(n, f"{agg:.1f}", f"{per:.1f}") for n, agg, per in self.rows])


def run_fabric_scaling(pair_counts: Tuple[int, ...] = (1, 2, 3),
                       total_bytes: int = 4 * MB) -> ScalingResult:
    """N disjoint sender->receiver pairs share one switch; a crossbar
    fabric should scale aggregate throughput ~linearly."""
    from .configs import build_qpip_cluster
    rows = []
    for n in pair_counts:
        sim = Simulator()
        nodes, _fabric = build_qpip_cluster(sim, 2 * n)
        done = {}
        t_start = {}

        def make_pair(i):
            src, dst = nodes[2 * i], nodes[2 * i + 1]
            port = 9000 + i

            def server():
                iface = dst.iface
                cq = yield from iface.create_cq()
                qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                                max_recv_wr=64)
                bufs = []
                for _ in range(16):
                    buf = yield from iface.register_memory(16 * 1024)
                    yield from iface.post_recv(qp, [buf.sge()])
                    bufs.append(buf)
                listener = yield from iface.listen(port)
                yield from iface.accept(listener, qp)
                got = 0
                ring = 0
                while got < total_bytes:
                    cqes = yield from iface.wait(cq)
                    for cqe in cqes:
                        got += cqe.byte_len
                        yield from iface.post_recv(qp, [bufs[ring].sge()])
                        ring = (ring + 1) % len(bufs)
                done[i] = sim.now

            def client():
                iface = src.iface
                cq = yield from iface.create_cq()
                qp = yield from iface.create_qp(QPTransport.TCP, cq,
                                                max_send_wr=32)
                sbuf = yield from iface.register_memory(16 * 1024)
                yield sim.timeout(1000)
                yield from iface.connect(qp, Endpoint(dst.addr, port))
                ep = src.firmware.endpoints[qp.qp_num]
                max_msg = ep.conn.max_message
                t_start[i] = sim.now
                sent = 0
                inflight = 0
                while sent < total_bytes or inflight > 0:
                    while sent < total_bytes and inflight < 8:
                        m = min(max_msg, total_bytes - sent)
                        yield from iface.post_send(qp, [sbuf.sge(0, m)])
                        sent += m
                        inflight += 1
                    cqes = yield from iface.wait(cq)
                    inflight -= len(cqes)

            return server(), client()

        procs = []
        for i in range(n):
            srv, cli = make_pair(i)
            procs += [sim.process(srv), sim.process(cli)]
        sim.run(until=sim.now + 600_000_000)
        assert all(p.triggered and p.ok for p in procs), "scaling run hung"
        elapsed = max(done.values()) - min(t_start.values())
        aggregate = n * total_bytes / elapsed * 1e6 / MB
        rows.append((n, aggregate, aggregate / n))
    return ScalingResult(rows)


# ---------------------------------------------------------------------------
# §5.2 ablation: Infiniband-class hardware support
# ---------------------------------------------------------------------------

@dataclass
class HwAblationResult:
    rows: List[Tuple[str, float, float]]     # (config, rtt µs, MB/s)

    def render(self) -> str:
        return render_table(
            "§5.2 ablation: hardware support applied to QPIP",
            ["NIC", "TCP RTT µs", "ttcp MB/s"],
            [(n, f"{r:.1f}", f"{t:.1f}") for n, r, t in self.rows])


def run_hw_ablation(total_bytes: int = 10 * MB) -> HwAblationResult:
    rows = []
    for name, timing in (("LANai-9 prototype", None),
                         ("LANai-9 + fw checksum", lanai_fw_checksum()),
                         ("Infiniband-class", ib_class_timing())):
        sim = Simulator()
        a, b, _f = build_qpip_pair(sim, nic_timing=timing)
        rtt = qpip_tcp_rtt(sim, a, b, iterations=50).mean
        sim2 = Simulator()
        a2, b2, _f2 = build_qpip_pair(sim2, nic_timing=timing)
        thr = qpip_ttcp(sim2, a2, b2, total_bytes=total_bytes).mb_per_sec
        rows.append((name, rtt, thr))
    return HwAblationResult(rows)
