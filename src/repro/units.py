"""Unit helpers.

Simulation time is microseconds (µs).  Sizes are bytes.  Rates are
bytes/µs internally; helpers convert to and from the units the paper
reports (MB/s, Mbit/s, Gbit/s).
"""

from __future__ import annotations

# -- time -----------------------------------------------------------------

US = 1.0
MS = 1_000.0
SECOND = 1_000_000.0
NS = 0.001


def seconds(t_us: float) -> float:
    """Convert µs to seconds."""
    return t_us / SECOND


def usec(t_seconds: float) -> float:
    """Convert seconds to µs."""
    return t_seconds * SECOND


# -- size -------------------------------------------------------------------

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


# -- rates ------------------------------------------------------------------


def gbit_per_sec(g: float) -> float:
    """Gbit/s -> bytes/µs."""
    return g * 1e9 / 8 / SECOND


def mbit_per_sec(m: float) -> float:
    """Mbit/s -> bytes/µs."""
    return m * 1e6 / 8 / SECOND


def mb_per_sec(m: float) -> float:
    """MB/s (2**20 bytes) -> bytes/µs."""
    return m * MB / SECOND


def to_mb_per_sec(bytes_per_us: float) -> float:
    """bytes/µs -> MB/s (2**20 bytes), the unit used in the paper's figures."""
    return bytes_per_us * SECOND / MB


def cycles_to_us(cycles: int, mhz: float) -> float:
    """CPU cycles at ``mhz`` MHz -> µs."""
    return cycles / mhz


def us_to_cycles(t_us: float, mhz: float) -> int:
    """µs -> CPU cycles at ``mhz`` MHz (rounded)."""
    return round(t_us * mhz)
