#!/usr/bin/env python
"""Regenerate the committed scenario corpus under scenarios/.

The corpus is maintained as code (this file) and serialized to YAML so
the gate's on-disk specs can never drift out of schema: every spec is
validated by construction before it is written.  Run from the repo
root::

    PYTHONPATH=src python tools/gen_scenarios.py

then re-pin the baselines with ``python -m repro gate record --tier
nightly``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import yaml

from repro.faults import FaultBinding, FaultEntry
from repro.gate import Expectation, ScenarioSpec, WorkloadSpec

E = FaultEntry
B = FaultBinding


def _bind(where: str, *entries: FaultEntry) -> FaultBinding:
    return B(where, tuple(entries))


SCENARIOS = [
    # -- clean baselines -------------------------------------------------
    ScenarioSpec(
        name="clean_ttcp_fat_tree",
        description="4 verified ttcp pairs on a clean 8-host fat-tree",
        hosts=8, seed=11, horizon=8_000_000.0,
        workload=WorkloadSpec(pattern="pairs", kind="ttcp", count=4,
                              total_bytes=32768, chunk=8192),
        expect=Expectation(completes_by_us=100_000.0)),
    ScenarioSpec(
        name="clean_pingpong_ring",
        description="4 pingpong pairs on a clean 8-host ring",
        topology="ring", hosts=8, ring_switches=4, seed=12,
        horizon=8_000_000.0,
        workload=WorkloadSpec(pattern="pairs", kind="pingpong", count=4,
                              iterations=10, msg_size=64, verify=False),
        expect=Expectation(completes_by_us=100_000.0)),

    # -- PR 1/2-style chaos plans ---------------------------------------
    ScenarioSpec(
        name="drop_host_links",
        description="random loss on the victim's rx and a sender's tx; "
                    "TCP retransmission must deliver every byte",
        hosts=8, seed=21, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=4,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("host:h0:rx", E("drop", rate=0.2)),
                _bind("host:h4:tx", E("drop", rate=0.2))),
        expect=Expectation(min_retransmits=1,
                           min_fault={"host:h0:rx.drops": 1})),
    ScenarioSpec(
        name="drop_blackout_window",
        description="total blackout of the victim's rx for 3ms "
                    "mid-transfer; RTO recovery must complete the flows",
        hosts=8, seed=22, horizon=40_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=2,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("host:h0:rx",
                      E("drop", rate=1.0, start=1_250.0, stop=2_500.0)),),
        expect=Expectation(min_retransmits=1,
                           min_fault={"host:h0:rx.drops": 1})),

    # -- hostile-network family -----------------------------------------
    ScenarioSpec(
        name="reorder_storm_trunk",
        description="reordering storm on the spine-to-edge trunks; "
                    "receivers must see in-order, exactly-once payloads",
        hosts=8, seed=31, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=4,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("trunk:0:b2a",
                      E("reorder", rate=0.3, delay=40.0, jitter=25.0)),
                _bind("trunk:2:a2b",
                      E("reorder", rate=0.3, delay=40.0, jitter=25.0))),
        expect=Expectation(min_fault={"trunk:0:b2a.delays": 1})),
    ScenarioSpec(
        name="dup_flood_trunk",
        description="duplication flood on a spine-to-edge trunk; TCP "
                    "must dedup to exactly-once app delivery",
        hosts=8, seed=32, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=4,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("trunk:0:b2a",
                      E("duplicate", rate=0.4, copies=2)),),
        expect=Expectation(min_fault={"trunk:0:b2a.duplicates": 1})),
    ScenarioSpec(
        name="corrupt_trunk",
        description="payload bit-flips on a spine-to-edge trunk, caught "
                    "by checksums and healed by retransmission with "
                    "zero app-visible corruption",
        hosts=8, seed=3, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=4,
                              total_bytes=16384, chunk=4096),
        capture_hosts=("h0",),
        faults=(_bind("trunk:0:b2a", E("corrupt", rate=0.3)),),
        expect=Expectation(min_checksum_errors=1, min_retransmits=1,
                           min_fault={"trunk:0:b2a.corruptions": 1})),
    ScenarioSpec(
        name="corrupt_burst_host",
        description="correlated corruption bursts at a sender's NIC "
                    "egress; checksum + retransmit must heal them",
        hosts=8, seed=34, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=4,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("host:h4:tx",
                      E("corrupt", rate=0.12, burst=2)),),
        expect=Expectation(min_checksum_errors=1, min_retransmits=1,
                           min_fault={"host:h4:tx.corruptions": 2})),
    ScenarioSpec(
        name="delay_jitter_storm",
        description="heavy jitter on every trunk direction; completion "
                    "may stretch but ordering and integrity must hold",
        hosts=8, seed=35, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=4,
                              total_bytes=16384, chunk=4096),
        faults=tuple(
            _bind(f"trunk:{t}:{d}",
                  E("delay", rate=0.3, delay=30.0, jitter=15.0))
            for t in range(4) for d in ("a2b", "b2a")),
        expect=Expectation()),

    # -- incast ----------------------------------------------------------
    ScenarioSpec(
        name="incast_8to1",
        description="8-to-1 incast on a 12-host fat-tree: bounded "
                    "completion, no WR loss, verified payloads",
        hosts=12, seed=41, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=8,
                              total_bytes=16384, chunk=4096),
        expect=Expectation(completes_by_us=10_000.0)),
    ScenarioSpec(
        name="incast_8to1_lossy",
        description="8-to-1 incast with loss at the victim's last hop; "
                    "retransmission must finish every flow",
        hosts=12, seed=42, horizon=40_000_000.0,
        workload=WorkloadSpec(pattern="incast", senders=8,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("host:h0:rx", E("drop", rate=0.1)),),
        expect=Expectation(min_retransmits=1,
                           min_fault={"host:h0:rx.drops": 1})),

    # -- collectives -----------------------------------------------------
    ScenarioSpec(
        name="coll_allreduce_clean_16",
        description="NIC-offloaded ring allreduce across a clean 16-host "
                    "fat-tree; every rank must hold the oracle's bits",
        hosts=16, seed=61, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="collective", algo="allreduce",
                              engine="nic", vector_len=512),
        expect=Expectation()),
    ScenarioSpec(
        name="coll_allreduce_trunk_drop",
        description="NIC-offloaded allreduce with loss on every trunk; "
                    "retransmission must heal the ring with bit-exact "
                    "results on all ranks",
        hosts=8, seed=62, horizon=40_000_000.0,
        workload=WorkloadSpec(pattern="collective", algo="allreduce",
                              engine="nic", vector_len=512),
        faults=tuple(_bind(f"trunk:{t}:{d}", E("drop", rate=0.08))
                     for t in range(4) for d in ("a2b", "b2a")),
        expect=Expectation(min_retransmits=1)),
    ScenarioSpec(
        name="coll_barrier_reorder",
        description="host-engine barrier under a trunk reordering storm; "
                    "token passing must stay exactly-once and release "
                    "every rank",
        hosts=8, seed=63, horizon=20_000_000.0,
        workload=WorkloadSpec(pattern="collective", algo="barrier",
                              engine="host"),
        faults=tuple(
            _bind(f"trunk:{t}:{d}",
                  E("reorder", rate=0.3, delay=40.0, jitter=25.0))
            for t in range(4) for d in ("a2b", "b2a")),
        expect=Expectation()),

    # -- nightly tail ----------------------------------------------------
    ScenarioSpec(
        name="clean_fat_tree_wide",
        description="12 verified ttcp pairs over a 32-host fat-tree, "
                    "cross-checked at 1/2/4 shards",
        tier="nightly", hosts=32, seed=51, horizon=20_000_000.0,
        workers=(1, 2, 4), timeout_s=300.0,
        workload=WorkloadSpec(pattern="pairs", kind="ttcp", count=12,
                              total_bytes=32768, chunk=8192),
        expect=Expectation()),
    ScenarioSpec(
        name="incast_16to1",
        description="16-to-1 incast on a 20-host fat-tree",
        tier="nightly", hosts=20, seed=52, horizon=40_000_000.0,
        timeout_s=300.0,
        workload=WorkloadSpec(pattern="incast", senders=16,
                              total_bytes=32768, chunk=4096),
        expect=Expectation()),
    ScenarioSpec(
        name="gauntlet_mixed",
        description="drops, corruption, duplication and reordering all "
                    "at once across trunks and host links",
        tier="nightly", hosts=8, seed=53, horizon=60_000_000.0,
        timeout_s=300.0,
        workload=WorkloadSpec(pattern="incast", senders=6,
                              total_bytes=16384, chunk=4096),
        faults=(_bind("trunk:0:b2a",
                      E("drop", rate=0.03), E("corrupt", rate=0.05)),
                _bind("trunk:2:a2b",
                      E("duplicate", rate=0.1),
                      E("reorder", rate=0.15, delay=40.0, jitter=20.0)),
                _bind("host:h0:rx", E("drop", rate=0.02))),
        expect=Expectation(min_retransmits=1)),
]


def main() -> int:
    out_dir = os.path.join(os.path.dirname(__file__), "..", "scenarios")
    os.makedirs(out_dir, exist_ok=True)
    names = set()
    for spec in SCENARIOS:
        names.add(spec.name)
        path = os.path.join(out_dir, f"{spec.name}.yaml")
        with open(path, "w", encoding="utf-8") as f:
            yaml.safe_dump(spec.to_dict(), f, sort_keys=True,
                           default_flow_style=False)
        print(f"wrote {path}")
    stale = [e for e in sorted(os.listdir(out_dir))
             if e.endswith((".yaml", ".yml", ".json"))
             and os.path.splitext(e)[0] not in names]
    for entry in stale:
        print(f"stale spec (not in generator): scenarios/{entry}",
              file=sys.stderr)
    return 1 if stale else 0


if __name__ == "__main__":
    sys.exit(main())
