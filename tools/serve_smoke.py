#!/usr/bin/env python
"""CI smoke test for ``repro serve``: the real-signal chaos pass.

The in-repo pytest suite covers the same properties with in-process
servers and injected executors; this script is the *black-box* version
CI runs against the real thing:

1. boot ``repro serve run`` as a subprocess (its own session/process
   group, like an operator would);
2. submit a real scenario big enough to be mid-run for a while;
3. SIGKILL the forked worker executing it (pid straight from the job
   record) and assert the job still completes — exactly once, via the
   supervisor's restart, with the duplicate-submit returning the same
   job;
4. SIGTERM the server and assert a clean drain: exit code 0, journal
   replayable, no process left in the server's process group.

On failure the journal directory is left in place (CI uploads it as an
artifact) and the tail of the journal is printed for the log.
"""

import json
import os
import signal
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.gate.spec import ScenarioSpec, WorkloadSpec  # noqa: E402
from repro.serve import JobStore, ServeClient  # noqa: E402

DATA_DIR = os.environ.get("SERVE_SMOKE_DIR", "serve-smoke-data")

#: ~1.5s of simulated work per attempt: wide enough to SIGKILL mid-run,
#: short enough that the supervised retry keeps the smoke fast.
SCENARIO = ScenarioSpec(
    name="smoke_kill", hosts=8, seed=7, horizon=2_000_000_000.0,
    workload=WorkloadSpec(count=2, total_bytes=1 << 23, chunk=8192),
    workers=(1,), timeout_s=120.0).to_dict()


def fail(step, detail, proc=None):
    print(f"serve-smoke FAILED at {step}: {detail}", file=sys.stderr)
    journal = os.path.join(DATA_DIR, "journal.jsonl")
    if os.path.exists(journal):
        with open(journal) as f:
            tail = f.readlines()[-20:]
        print("--- journal tail ---", file=sys.stderr)
        sys.stderr.writelines(tail)
    if proc is not None and proc.poll() is None:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    sys.exit(1)


def wait_for(predicate, timeout_s, step):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.01)
    fail(step, f"timed out after {timeout_s}s")


def main():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "run",
         "--dir", DATA_DIR, "--pool", "1", "--port", "0"],
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO, "src")),
        start_new_session=True)
    try:
        endpoint = os.path.join(DATA_DIR, "serve.json")
        wait_for(lambda: os.path.exists(endpoint), 30, "boot")
        with open(endpoint) as f:
            url = json.load(f)["url"]
        client = ServeClient(url)
        client.wait_ready(30)
        print(f"serve-smoke: server up at {url} (pid {proc.pid})")

        status, data, _ = client.submit(SCENARIO, key="smoke-1",
                                        client="smoke")
        if status != 202:
            fail("submit", f"expected 202, got {status}: {data}", proc)
        job_id = data["job"]["id"]

        def running_pid():
            _, record = client.job(job_id)
            job = record.get("job", {})
            return job.get("worker_pid") \
                if job.get("state") == "running" else None

        victim = wait_for(running_pid, 30, "await-worker")
        os.kill(victim, signal.SIGKILL)
        print(f"serve-smoke: SIGKILLed worker {victim} mid-run")

        job = client.wait(job_id, timeout_s=60)
        if job["state"] != "done":
            fail("completion", f"job ended {job['state']}: "
                               f"{job.get('error')}", proc)
        if job["attempts"] < 2:
            fail("completion", "job finished in one attempt — the kill "
                               "missed; nothing was proven", proc)
        print(f"serve-smoke: job {job_id} done after "
              f"{job['attempts']} attempts (supervised restart)")

        # exactly-once: the idempotency key returns the same completed
        # job, and the journal holds a single done record for it
        status, data, _ = client.submit(SCENARIO, key="smoke-1")
        if status != 200 or not data.get("duplicate"):
            fail("idempotency", f"resubmit got {status}: {data}", proc)
        done_records = 0
        with open(os.path.join(DATA_DIR, "journal.jsonl")) as f:
            for line in f:
                record = json.loads(line)
                if record.get("ev") == "state" \
                        and record.get("id") == job_id \
                        and record.get("state") == "done":
                    done_records += 1
        if done_records != 1:
            fail("exactly-once", f"{done_records} done records "
                                 f"journaled for {job_id}", proc)
        print("serve-smoke: exactly one done record journaled")

        pgid = os.getpgid(proc.pid)
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        if rc != 0:
            fail("drain", f"server exited {rc} on SIGTERM", proc)
        try:
            os.killpg(pgid, 0)
            fail("drain", f"process group {pgid} still has members "
                          f"after drain (orphaned workers)")
        except ProcessLookupError:
            pass
        print("serve-smoke: SIGTERM drained cleanly, no orphans")

        store = JobStore(DATA_DIR, fsync=False)
        if store.recovered_torn_tail:
            fail("journal", "journal has a torn tail after a clean drain")
        if store.get(job_id).state != "done":
            fail("journal", "replayed journal lost the completed job")
        store.close()
        print("serve-smoke: journal replays; completed result durable")
        print("serve-smoke PASSED")
        return 0
    finally:
        if proc.poll() is None:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
