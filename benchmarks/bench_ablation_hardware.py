"""§5.2 ablation: "if the same degree of hardware support [as Infiniband]
were to be applied to QPIP then an equivalent performance could be
reached."

The Infiniband-class timing collapses FSM stage costs to hardware-engine
latencies and overlaps DMA with processing.  The claim checks out when
RTT drops to SAN scale (~10 µs) and throughput approaches the wire.
"""

from conftest import save_report

from repro.bench import run_hw_ablation


def _run():
    return run_hw_ablation()


def test_hardware_support_ablation(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("ablation_hardware", result.render())

    rows = {name: (rtt, mbps) for name, rtt, mbps in result.rows}
    proto_rtt, proto_mbps = rows["LANai-9 prototype"]
    fw_rtt, fw_mbps = rows["LANai-9 + fw checksum"]
    ib_rtt, ib_mbps = rows["Infiniband-class"]

    # Firmware checksumming barely moves 1-byte RTT but destroys bandwidth.
    assert fw_rtt < proto_rtt * 1.1
    assert fw_mbps < proto_mbps / 2
    # Infiniband-class hardware reaches SAN targets: ~µs latency,
    # near-wire bandwidth (2 Gb/s link, PCI-bound around ~200 MB/s).
    assert ib_rtt < proto_rtt / 4
    assert ib_rtt < 25.0
    assert ib_mbps > 2 * proto_mbps
    assert ib_mbps > 150.0
