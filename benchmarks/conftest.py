"""Benchmark harness support: src import path + report collection."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "_output")


def save_report(name: str, text: str) -> None:
    """Persist a rendered table so EXPERIMENTS.md can quote real output."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
    print("\n" + text)
