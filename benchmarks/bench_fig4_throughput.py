"""Figure 4: ttcp throughput and CPU utilization at native MTUs.

10 MB in 16 KB chunks with TCP_NODELAY, as in §4.2.1.  Shape checks:
QPIP wins on throughput while using a tiny fraction of the host CPU the
socket stacks burn.
"""

from conftest import save_report

from repro.bench import run_fig4


def _run():
    return run_fig4()


def test_fig4_throughput_and_cpu(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("fig4_throughput", result.render())

    gige_mbps, gige_cpu = result.measured("IP/GigE")
    gm_mbps, gm_cpu = result.measured("IP/Myrinet")
    qpip_mbps, qpip_cpu = result.measured("QPIP")

    # Ordering (Figure 4): QPIP > IP/Myrinet > IP/GigE.
    assert qpip_mbps > gm_mbps > gige_mbps
    # QPIP native throughput near the paper's 75.6 MB/s (±15%).
    assert abs(qpip_mbps - 75.6) / 75.6 < 0.15
    # Host stacks burn "half to ¾ of a host processor"...
    assert 0.35 <= gm_cpu <= 0.95
    assert 0.5 <= gige_cpu <= 0.95
    # ... while QPIP uses a small fraction of that (paper: <1%).
    assert qpip_cpu < 0.08
    assert qpip_cpu < gige_cpu / 10
