"""Tables 2 & 3: per-stage network-interface processing occupancy.

Measured with the simulated LANai cycle counter over a 1-byte TCP
message stream, exactly as the paper instruments its prototype.  The
stage costs are this model's calibrated inputs, so the check here is
that the *instrumentation pipeline* reproduces them faithfully — every
FSM stage runs where the paper says it runs, once per message.
"""

import pytest
from conftest import save_report

from repro.bench import run_occupancy_tables
from repro.bench.paper import TABLE2_TX, TABLE3_RX


def _run():
    return run_occupancy_tables(messages=50)


def test_tables2_3_occupancy(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("tables2_3_occupancy", result.render())

    # Transmit data path: every Table 2 stage observed at its cost.
    for name, measured_data, paper_data, _ma, _pa in result.tx_rows:
        if paper_data is not None and name != "Doorbell Process":
            assert measured_data == pytest.approx(paper_data), name
    # Receive data path (server side) likewise for Table 3.
    for name, measured_data, paper_data, _ma, _pa in result.rx_rows:
        if paper_data is not None:
            assert measured_data == pytest.approx(paper_data), name
    # The expensive ACK cases: software RTT-estimator multiplies (14 µs)
    # and the WR/QP state update (9 µs).
    tcp_parse = dict((r[0], r) for r in result.rx_rows)["TCP Parse"]
    assert tcp_parse[3] == pytest.approx(14.0)
    update = dict((r[0], r) for r in result.rx_rows)["Update"]
    assert update[3] == pytest.approx(9.0)
