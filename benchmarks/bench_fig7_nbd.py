"""Figure 7: NBD client throughput and CPU effectiveness.

Sequential write then read of the paper's 409 MB working set (set
REPRO_NBD_MB to shrink for quick runs), with 'sync' between phases.
Shape checks: QPIP beats both socket stacks on throughput (paper: by
40–137%) and by a wide margin on MB per CPU-second, writes trail reads
on every system, and filesystem work keeps a hefty CPU floor everywhere.
"""

from conftest import save_report

from repro.bench import run_fig7
from repro.bench.paper import NBD_FS_FLOOR


def _run():
    return run_fig7()


def test_fig7_nbd(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("fig7_nbd", result.render())

    systems = ("IP/GigE", "IP/Myrinet", "QPIP")
    for op in ("write", "read"):
        gige, gm, qpip = (result.measured(s, op)[0] for s in systems)
        # Ordering, as in the figure.
        assert qpip > gm > gige, op
        # QPIP's gain over the socket baselines is substantial (paper:
        # "40% to 137% throughput performance improvement").
        assert qpip / gige > 1.25, op
    # Writes are slower than reads on every system (disk + flush path).
    for s in systems:
        assert result.measured(s, "write")[0] < result.measured(s, "read")[0]
    # CPU effectiveness: QPIP moves far more data per CPU-second.
    for op in ("write", "read"):
        qpip_eff = result.measured("QPIP", op)[1]
        gige_eff = result.measured("IP/GigE", op)[1]
        assert qpip_eff > 2 * gige_eff
    # "The raw CPU utilization ... is at least 26% for filesystem
    # processing."  Filesystem work scales with delivered bandwidth in
    # our model, so the full 26% floor holds at QPIP's rate; the slower
    # socket systems show a proportionally smaller (but still hefty)
    # fs share.
    for op in ("write", "read"):
        assert result.measured("QPIP", op)[2] > NBD_FS_FLOOR, op
    for (system, op), (_mbps, _eff, fs_frac) in result.rows.items():
        assert fs_frac > 0.10, (system, op)
