"""Figure 4's text series: QPIP throughput across MTUs + checksum variant.

"For the smaller MTUs, the limited CPU capacity of the interface becomes
apparent and [QPIP] performs 22% less than the gigabit Ethernet in the
1500 Byte MTU case at 35.4 MB/sec.  For the 9000 Byte MTU, QPIP
outperforms the IP over Myrinet case at 70.1 MB/sec."
"""

from conftest import save_report

from repro.bench import run_fig4, run_mtu_sweep


def _run():
    return run_mtu_sweep(), run_fig4()


def test_mtu_sweep_crossover(benchmark):
    sweep, fig4 = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("mtu_sweep", sweep.render())

    q1500 = sweep.measured(1500)
    q9000 = sweep.measured(9000)
    q16k = sweep.measured(16384)
    gige_mbps, _ = fig4.measured("IP/GigE")
    gm_mbps, _ = fig4.measured("IP/Myrinet")

    # Monotone in MTU: per-message interface occupancy amortizes.
    assert q1500 < q9000 < q16k
    # The crossover of Figure 4's discussion: QPIP loses to GigE at
    # 1500 B (interface CPU-bound) but wins at 9000 B vs IP/Myrinet.
    assert q1500 < gige_mbps
    assert q9000 > gm_mbps
    # Firmware checksumming collapses throughput (paper: 75.6 -> 26.4).
    assert sweep.fw_checksum_mbps < q16k / 2
    assert abs(sweep.fw_checksum_mbps - 26.4) / 26.4 < 0.25
