"""Collective offload: NIC-resident vs host-driven latency curves.

The architectural claim under test: moving the collective schedule into
NIC firmware (one doorbell, combine in firmware, one CQE) beats running
the identical schedule in the application (a full verbs round trip per
step) — and the gap must not cost exactness, so every point also checks
all ranks against the pure oracle and the two engines against each
other bit-for-bit.  Results merge into ``BENCH_perf.json`` under
``"collectives"``.
"""

from conftest import save_report

from repro.collectives.bench import (measure_collectives,
                                     merge_into_bench_report, render_curves)


def _run():
    return measure_collectives(worlds=(16, 32, 64), algo="allreduce",
                               vector_len=256)


def test_collective_curves(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("collectives", render_curves(curves))
    merge_into_bench_report(curves, "BENCH_perf.json")

    assert curves["all_ok"], curves
    assert curves["engines_agree"], curves
    # Same schedule, same framing: the engines move identical bytes.
    for world in map(str, curves["worlds"]):
        host = curves["curves"]["host"][world]
        nic = curves["curves"]["nic"][world]
        assert host["total_bytes_sent"] == nic["total_bytes_sent"], world
    # The acceptance bar: offload wins outright from 64 hosts up.
    assert curves["nic_speedup"]["64"] >= 1.0, curves["nic_speedup"]
    assert curves["nic_wins_at_largest"], curves
